//! Property-based tests across crate boundaries.

use proptest::prelude::*;

use splicecast_core::optimal_pool_size;
use splicecast_media::{
    ByteSplicer, ContentProfile, DurationSplicer, GopSplicer, Manifest, SceneClass, Splicer, Video,
};
use splicecast_player::Playback;
use splicecast_protocol::{decode_single, encode_to_bytes, Bitfield, Message};

fn arbitrary_video() -> impl Strategy<Value = Video> {
    (4.0f64..40.0, 0..3usize, any::<u64>(), 200_000u64..2_000_000).prop_map(
        |(secs, profile_idx, seed, bitrate)| {
            let profile = match profile_idx {
                0 => ContentProfile::paper_default(),
                1 => ContentProfile::Uniform { gop_secs: 2.0 },
                _ => ContentProfile::Mixture {
                    classes: vec![
                        SceneClass::with_scene(0.5, 0.2, 1.0, 2.0, 6.0),
                        SceneClass::new(0.5, 2.0, 8.0),
                    ],
                },
            };
            Video::builder()
                .duration_secs(secs)
                .profile(profile)
                .bitrate_bps(bitrate)
                .seed(seed)
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_splicer_tiles_every_video(video in arbitrary_video(), d in 0.5f64..12.0, b in 20_000u64..2_000_000) {
        prop_assert!(video.validate().is_ok());
        for splicer in [
            Box::new(GopSplicer) as Box<dyn Splicer>,
            Box::new(DurationSplicer::new(d)),
            Box::new(ByteSplicer::new(b)),
        ] {
            let list = splicer.splice(&video);
            prop_assert!(list.validate(&video).is_ok(), "{} failed", splicer.name());
            prop_assert!(list.total_bytes() >= video.total_bytes());
            prop_assert_eq!(list.total_duration(), video.duration());
        }
        // GOP splicing specifically is overhead-free.
        prop_assert_eq!(GopSplicer.splice(&video).total_bytes(), video.total_bytes());
    }

    #[test]
    fn manifests_round_trip_for_arbitrary_splices(video in arbitrary_video(), d in 0.5f64..12.0) {
        let list = DurationSplicer::new(d).splice(&video);
        let manifest = Manifest::from_segments("clip", &list);
        let parsed = Manifest::parse_m3u8(&manifest.to_m3u8()).unwrap();
        prop_assert_eq!(parsed.len(), list.len());
        prop_assert_eq!(parsed.total_bytes(), list.total_bytes());
    }

    #[test]
    fn playback_invariants_hold_for_random_arrival_orders(
        video in arbitrary_video(),
        d in 1.0f64..8.0,
        mut order_seed in any::<u64>(),
        gaps in prop::collection::vec(0.0f64..6.0, 1..64),
    ) {
        let list = DurationSplicer::new(d).splice(&video);
        let mut playback = Playback::new(&list);
        // A deterministic shuffle of arrival order.
        let mut indices: Vec<usize> = (0..list.len()).collect();
        for i in (1..indices.len()).rev() {
            order_seed = order_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            indices.swap(i, (order_seed % (i as u64 + 1)) as usize);
        }
        let mut now = 0.0;
        for (i, idx) in indices.iter().enumerate() {
            now += gaps[i % gaps.len()];
            playback.on_segment(*idx, now);
        }
        playback.finish(now + video.duration().as_secs_f64() + 1.0);
        let metrics = playback.metrics();
        // All segments arrived, so playback must have finished.
        prop_assert!(metrics.finished_secs.is_some());
        let startup = metrics.startup_secs.unwrap();
        // Startup happens at the arrival of segment 0 or later.
        prop_assert!(startup >= 0.0);
        // Stalls are disjoint, ordered, and sum to the reported total.
        let stalls = playback.stalls();
        let mut last = 0.0;
        let mut total = 0.0;
        for stall in stalls {
            prop_assert!(stall.start_secs >= last - 1e-9);
            prop_assert!(stall.end_secs >= stall.start_secs);
            last = stall.end_secs;
            total += stall.duration_secs();
        }
        prop_assert!((total - metrics.total_stall_secs).abs() < 1e-6);
        // Conservation: finish = startup + media + stalls.
        let expected = startup + video.duration().as_secs_f64() + total;
        prop_assert!((metrics.finished_secs.unwrap() - expected).abs() < 1e-3);
    }

    #[test]
    fn protocol_messages_survive_the_wire(
        index in any::<u32>(),
        bytes in any::<u64>(),
        peer_id in any::<u64>(),
        hash in any::<[u8; 20]>(),
        bits in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let mut bf = Bitfield::new(bits.len() as u32);
        for (i, &on) in bits.iter().enumerate() {
            if on {
                bf.set(i as u32);
            }
        }
        let messages = [
            Message::Have { index },
            Message::Request { index },
            Message::Cancel { index },
            Message::SegmentHeader { index, bytes },
            Message::Handshake { peer_id, info_hash: hash, version: 1 },
            Message::Bitfield(bf),
        ];
        for msg in messages {
            let wire = encode_to_bytes(&msg);
            prop_assert_eq!(decode_single(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn decoder_never_panics_on_noise(noise in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = splicecast_protocol::Decoder::new();
        dec.feed(&noise);
        for _ in 0..32 {
            match dec.poll() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn eq1_is_always_at_least_one_and_monotone(
        b in 1.0f64..1e8,
        t in 0.0f64..1e4,
        w in 1u64..1_000_000_000,
    ) {
        let k = optimal_pool_size(b, t, w);
        prop_assert!(k >= 1);
        prop_assert!(optimal_pool_size(b * 2.0, t, w) >= k);
        prop_assert!(optimal_pool_size(b, t + 1.0, w) >= k);
        prop_assert!(optimal_pool_size(b, t, w.saturating_mul(2)) <= k);
    }
}
