//! Full-scale figure-shape assertions: the claims EXPERIMENTS.md makes,
//! as executable checks against the paper-scale configuration.
//!
//! These run the 19-peer, 2-minute experiments (minutes of CPU in debug
//! builds), so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release -p splicecast-integration --test figure_shapes -- --ignored
//! ```

use splicecast_core::{run_averaged, ExperimentConfig, PolicyConfig, SplicingSpec};

const SEEDS: [u64; 3] = [101, 202, 303];

fn stalls(bandwidth: f64, splicing: SplicingSpec) -> f64 {
    let config = ExperimentConfig::paper_baseline()
        .with_bandwidth(bandwidth)
        .with_splicing(splicing);
    run_averaged(&config, &SEEDS).stalls.mean
}

#[test]
#[ignore = "paper-scale run: use --release -- --ignored"]
fn fig2_gop_splicing_is_worst_at_every_bandwidth() {
    for bandwidth in [128_000.0, 256_000.0, 512_000.0, 768_000.0] {
        let gop = stalls(bandwidth, SplicingSpec::Gop);
        for d in [2.0, 4.0, 8.0] {
            let duration = stalls(bandwidth, SplicingSpec::Duration(d));
            assert!(
                gop > duration,
                "at {bandwidth} B/s: gop {gop} must exceed {d}s {duration}"
            );
        }
    }
}

#[test]
#[ignore = "paper-scale run: use --release -- --ignored"]
fn fig2_two_second_splicing_converges_to_four_second() {
    let low_gap = stalls(128_000.0, SplicingSpec::Duration(2.0))
        / stalls(128_000.0, SplicingSpec::Duration(4.0));
    let high_gap = stalls(768_000.0, SplicingSpec::Duration(2.0))
        / stalls(768_000.0, SplicingSpec::Duration(4.0));
    assert!(
        low_gap > 1.3,
        "2s must clearly lose at 128 kB/s (ratio {low_gap})"
    );
    assert!(
        high_gap < low_gap,
        "the gap must shrink with bandwidth ({high_gap} vs {low_gap})"
    );
}

#[test]
#[ignore = "paper-scale run: use --release -- --ignored"]
fn fig3_gop_splicing_has_longest_stall_duration() {
    for bandwidth in [128_000.0, 256_000.0, 768_000.0] {
        let config = |s| {
            ExperimentConfig::paper_baseline()
                .with_bandwidth(bandwidth)
                .with_splicing(s)
        };
        let gop = run_averaged(&config(SplicingSpec::Gop), &SEEDS)
            .stall_secs
            .mean;
        let four = run_averaged(&config(SplicingSpec::Duration(4.0)), &SEEDS)
            .stall_secs
            .mean;
        assert!(
            gop > four,
            "at {bandwidth} B/s: gop {gop} s must exceed 4s {four} s"
        );
    }
}

#[test]
#[ignore = "paper-scale run: use --release -- --ignored"]
fn fig4_startup_orders_by_segment_size_and_bandwidth() {
    let startup = |bandwidth: f64, d: f64| {
        let mut config = ExperimentConfig::paper_baseline()
            .with_bandwidth(bandwidth)
            .with_splicing(SplicingSpec::Duration(d));
        config.swarm.seeder_one_way_latency_secs = 0.5;
        run_averaged(&config, &SEEDS).startup_secs.mean
    };
    for bandwidth in [128_000.0, 1_024_000.0] {
        assert!(startup(bandwidth, 2.0) < startup(bandwidth, 4.0));
        assert!(startup(bandwidth, 4.0) < startup(bandwidth, 8.0));
    }
    for d in [2.0, 4.0, 8.0] {
        assert!(startup(1_024_000.0, d) < startup(128_000.0, d));
    }
}

#[test]
#[ignore = "paper-scale run: use --release -- --ignored"]
fn fig5_adaptive_pooling_starts_fastest() {
    for bandwidth in [128_000.0, 768_000.0] {
        let startup = |policy| {
            let config = ExperimentConfig::paper_baseline()
                .with_bandwidth(bandwidth)
                .with_policy(policy);
            run_averaged(&config, &SEEDS).startup_secs.mean
        };
        let adaptive = startup(PolicyConfig::Adaptive);
        for k in [2, 4, 8] {
            let fixed = startup(PolicyConfig::Fixed(k));
            assert!(
                adaptive < fixed,
                "at {bandwidth} B/s: adaptive startup {adaptive} must beat pool-{k} {fixed}"
            );
        }
    }
}
