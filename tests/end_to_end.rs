//! End-to-end pipeline: synthesize video → splice → manifest → swarm →
//! playback metrics, checking cross-crate invariants on the way.

use splicecast_core::{run_once, ExperimentConfig, SplicingSpec, VideoSpec};
use splicecast_media::{Manifest, Splicer};

fn small_config(splicing: SplicingSpec) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(512_000.0)
        .with_splicing(splicing)
        .with_leechers(5);
    config.video = VideoSpec {
        duration_secs: 30.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 600.0;
    config
}

#[test]
fn full_pipeline_streams_and_accounts() {
    for splicing in [
        SplicingSpec::Gop,
        SplicingSpec::Duration(4.0),
        SplicingSpec::Bytes(250_000),
    ] {
        let config = small_config(splicing);
        let video = config.video.build();
        let segments = config.splicing.splice(&video);
        segments.validate(&video).unwrap();

        let result = run_once(&config, 1);
        let metrics = &result.metrics;
        assert_eq!(metrics.reports.len(), 5, "{splicing:?}");
        for report in &metrics.reports {
            assert!(
                report.finished,
                "{splicing:?}: peer {} unfinished",
                report.peer
            );
            assert!(report.qoe.startup_secs.unwrap() > 0.0);
            // Every viewer moved at least the whole video's bytes.
            assert!(
                report.bytes_downloaded >= segments.total_bytes(),
                "{splicing:?}: peer {} downloaded only {} of {}",
                report.peer,
                report.bytes_downloaded,
                segments.total_bytes()
            );
            // Stall intervals are well-formed, disjoint, and within the run.
            let mut last_end = 0.0;
            for stall in &report.stalls {
                assert!(stall.start_secs >= last_end - 1e-9);
                assert!(stall.end_secs >= stall.start_secs);
                assert!(stall.end_secs <= metrics.sim_end_secs + 1e-9);
                last_end = stall.end_secs;
            }
            let total: f64 = report.stalls.iter().map(|s| s.duration_secs()).sum();
            assert!((total - report.qoe.total_stall_secs).abs() < 1e-6);
            assert_eq!(report.stalls.len(), report.qoe.stall_count);
            // Wall-clock accounting: startup + media + stalls ≈ finish time.
            let expected_finish = report.qoe.startup_secs.unwrap()
                + video.duration().as_secs_f64()
                + report.qoe.total_stall_secs;
            let finish = report.qoe.finished_secs.unwrap();
            assert!(
                (finish - expected_finish).abs() < 0.5,
                "{splicing:?}: finish {finish} vs startup+media+stalls {expected_finish}"
            );
        }
        // Segment deliveries add up.
        let delivered: usize = metrics
            .reports
            .iter()
            .map(|r| r.segments_from_peers + r.segments_from_seeder + r.segments_from_cdn)
            .sum();
        assert_eq!(delivered, 5 * result.segment_count, "{splicing:?}");
        // Network accounting is sane: the swarm delivered at least one copy
        // of the video per viewer, and wire bytes exceed payload (loss +
        // retransmissions) without being absurd.
        assert!(metrics.net.payload_bytes_delivered >= 5 * segments.total_bytes());
        let expansion = metrics.wire_expansion();
        assert!(
            (1.0..2.5).contains(&expansion),
            "{splicing:?}: wire expansion {expansion}"
        );
    }
}

#[test]
fn manifest_round_trips_through_the_wire_format() {
    let config = small_config(SplicingSpec::Duration(2.0));
    let video = config.video.build();
    let segments = config.splicing.splice(&video);
    let manifest = Manifest::from_segments("clip", &segments);
    let parsed = Manifest::parse_m3u8(&manifest.to_m3u8()).unwrap();
    assert_eq!(parsed.len(), segments.len());
    assert_eq!(parsed.total_bytes(), segments.total_bytes());
}

#[test]
fn gop_splicing_transfers_fewer_bytes_than_duration_splicing() {
    let video = VideoSpec::default().build();
    let gop = SplicingSpec::Gop.splice(&video);
    for d in [1.0, 2.0, 4.0, 8.0] {
        let duration = SplicingSpec::Duration(d).splice(&video);
        assert!(
            duration.total_bytes() > gop.total_bytes(),
            "{d}s splicing should carry I-frame overhead"
        );
    }
}

#[test]
fn splicers_from_core_match_media_crate_directly() {
    let video = VideoSpec::default().build();
    let via_spec = SplicingSpec::Gop.splice(&video);
    let direct = splicecast_media::GopSplicer.splice(&video);
    assert_eq!(via_spec, direct);
}
