//! Failure injection: churn, bandwidth collapse, and degenerate swarms.

use splicecast_core::{run_once, CdnConfig, ChurnConfig, ExperimentConfig, VideoSpec};

fn base() -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(384_000.0)
        .with_leechers(6);
    config.video = VideoSpec {
        duration_secs: 30.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 900.0;
    config
}

#[test]
fn stayers_survive_heavy_churn() {
    let mut config = base();
    config.swarm.churn = Some(ChurnConfig::new(0.7, 20.0));
    let result = run_once(&config, 13);
    let metrics = &result.metrics;
    assert_eq!(metrics.reports.len(), 6);
    let departed = metrics.reports.iter().filter(|r| r.departed).count();
    assert!(departed >= 1, "seeded churn should remove somebody");
    for report in metrics.watching() {
        assert!(
            report.finished,
            "stayer {} must finish despite churn",
            report.peer
        );
    }
}

#[test]
fn departed_peers_report_partial_sessions() {
    let mut config = base();
    // Everyone volatile with very short lifetimes: most sessions truncate.
    config.swarm.churn = Some(ChurnConfig::new(1.0, 10.0));
    let result = run_once(&config, 29);
    for report in &result.metrics.reports {
        if report.departed {
            assert!(!report.finished || report.qoe.finished_secs.is_some());
            // A truncated session never reports more stall time than the run.
            assert!(report.qoe.total_stall_secs <= result.metrics.sim_end_secs);
        }
    }
}

#[test]
fn bandwidth_collapse_stalls_then_recovers() {
    let clean = run_once(&base(), 7);
    let mut choked = base();
    // Collapse every peer link to 8 kB/s between t=20s and t=50s.
    choked.swarm.bandwidth_schedule = vec![(20.0, 8_000.0), (50.0, 384_000.0)];
    let result = run_once(&choked, 7);
    assert_eq!(
        result.metrics.completion_rate(),
        1.0,
        "the swarm must recover"
    );
    assert!(
        result.metrics.mean_stall_secs() > clean.metrics.mean_stall_secs(),
        "a 30 s blackout must show up in stall time ({} vs {})",
        result.metrics.mean_stall_secs(),
        clean.metrics.mean_stall_secs()
    );
}

#[test]
fn single_leecher_swarm_works() {
    let mut config = base().with_leechers(1);
    config.swarm.join_stagger_secs = 0.1;
    let result = run_once(&config, 3);
    let report = &result.metrics.reports[0];
    assert!(report.finished);
    assert_eq!(report.segments_from_peers, 0, "nobody else to fetch from");
    assert!(report.segments_from_seeder > 0);
}

#[test]
fn cdn_only_mode_survives_total_peer_churn() {
    let mut config = base();
    config.swarm.p2p = false;
    config.swarm.cdn = Some(CdnConfig::default());
    config.swarm.churn = Some(ChurnConfig::new(0.5, 15.0));
    let result = run_once(&config, 17);
    for report in result.metrics.watching() {
        assert!(
            report.finished,
            "CDN-only stayer {} must finish",
            report.peer
        );
        assert_eq!(report.segments_from_peers, 0);
    }
}

#[test]
fn extreme_loss_still_converges() {
    let mut config = base();
    config.swarm.end_to_end_loss = 0.25;
    config.swarm.max_sim_secs = 1_800.0;
    let result = run_once(&config, 5);
    // At 25% loss the stream crawls but must still finish within the cap.
    assert!(
        result.metrics.completion_rate() > 0.9,
        "{}",
        result.metrics.completion_rate()
    );
}
