//! The §III downloading policy: Eq. 1's properties and the behaviour of
//! adaptive vs fixed pools in a live swarm.

use splicecast_core::{optimal_pool_size, run_averaged, ExperimentConfig, VideoSpec};
use splicecast_swarm::{AdaptivePooling, DownloadPolicy, FixedPool, PolicyConfig, PolicyInput};

#[test]
fn eq1_reference_values() {
    // Worked examples straight from the formula.
    assert_eq!(optimal_pool_size(128_000.0, 0.0, 512_000), 1); // start of streaming
    assert_eq!(optimal_pool_size(128_000.0, 4.0, 512_000), 1); // B·T = W
    assert_eq!(optimal_pool_size(128_000.0, 8.0, 512_000), 2);
    assert_eq!(optimal_pool_size(512_000.0, 8.0, 512_000), 8);
    assert_eq!(optimal_pool_size(64_000.0, 1.0, 512_000), 1); // B·T < W
}

#[test]
fn eq1_monotonicity_grid() {
    let bs = [32_000.0, 128_000.0, 512_000.0, 2_048_000.0];
    let ts = [0.0, 1.0, 4.0, 16.0, 64.0];
    let ws = [64_000u64, 256_000, 1_024_000];
    for w in ws {
        for t in ts {
            let mut last = 0;
            for b in bs {
                let k = optimal_pool_size(b, t, w);
                assert!(k >= 1);
                assert!(k >= last, "k must grow with B");
                last = k;
            }
        }
        for b in bs {
            let mut last = 0;
            for t in ts {
                let k = optimal_pool_size(b, t, w);
                assert!(k >= last, "k must grow with T");
                last = k;
            }
        }
    }
}

#[test]
fn policy_objects_agree_with_the_free_function() {
    let adaptive = AdaptivePooling::new();
    for (b, t, w) in [
        (128_000.0, 6.0, 256_000u64),
        (1e6, 30.0, 100_000),
        (5.0, 0.1, 10),
    ] {
        let input = PolicyInput {
            bandwidth_bytes_per_sec: b,
            buffered_secs: t,
            next_segment_bytes: w,
        };
        assert_eq!(adaptive.pool_size(&input), optimal_pool_size(b, t, w));
    }
    let fixed = FixedPool(6);
    let input = PolicyInput {
        bandwidth_bytes_per_sec: 1.0,
        buffered_secs: 0.0,
        next_segment_bytes: 1,
    };
    assert_eq!(fixed.pool_size(&input), 6);
}

fn swarm_with(policy: PolicyConfig, bandwidth: f64) -> splicecast_core::AveragedMetrics {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(bandwidth)
        .with_policy(policy)
        .with_leechers(8);
    config.video = VideoSpec {
        duration_secs: 60.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 900.0;
    run_averaged(&config, &[4, 5, 6])
}

#[test]
fn adaptive_starts_faster_than_large_fixed_pools() {
    // The robust adaptive-pooling advantage: k = 1 until the buffer grows,
    // so the first segment gets the whole pipe.
    let adaptive = swarm_with(PolicyConfig::Adaptive, 192_000.0);
    let big = swarm_with(PolicyConfig::Fixed(8), 192_000.0);
    assert!(
        adaptive.startup_secs.mean < big.startup_secs.mean,
        "adaptive startup {} should beat pool-8 startup {}",
        adaptive.startup_secs.mean,
        big.startup_secs.mean
    );
}

#[test]
fn adaptive_beats_sequential_downloading_at_high_bandwidth() {
    // "If users have sufficient bandwidth, the pool size should be large
    // to maximize the bandwidth utilization" (§VI-B): a pool stuck at 1
    // wastes a fat link; adaptive grows its pool as the buffer builds.
    let adaptive = swarm_with(PolicyConfig::Adaptive, 640_000.0);
    let sequential = swarm_with(PolicyConfig::Fixed(1), 640_000.0);
    assert!(
        adaptive.stall_secs.mean <= sequential.stall_secs.mean * 1.25 + 1.0,
        "adaptive stall time {} should not materially lose to sequential {}",
        adaptive.stall_secs.mean,
        sequential.stall_secs.mean
    );
}

#[test]
fn every_policy_still_completes_the_stream() {
    for policy in [
        PolicyConfig::Adaptive,
        PolicyConfig::Fixed(1),
        PolicyConfig::Fixed(8),
    ] {
        let avg = swarm_with(policy, 256_000.0);
        assert_eq!(avg.completion_rate, 1.0, "{policy:?}");
    }
}
