//! Qualitative reproduction checks for the paper's headline results, at a
//! reduced scale that still exhibits the effects (full scale runs in the
//! bench harnesses).

use splicecast_core::{run_averaged, AveragedMetrics, ExperimentConfig, SplicingSpec, VideoSpec};

fn averaged(bandwidth: f64, splicing: SplicingSpec) -> AveragedMetrics {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(bandwidth)
        .with_splicing(splicing)
        .with_leechers(8);
    config.video = VideoSpec {
        duration_secs: 60.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 900.0;
    run_averaged(&config, &[1, 2])
}

#[test]
fn gop_splicing_stalls_more_than_duration_splicing() {
    // The paper's main result (§VI-A, Fig. 2): at the tight operating
    // point, GOP-based splicing stalls more than 4 s duration splicing.
    let gop = averaged(192_000.0, SplicingSpec::Gop);
    let four = averaged(192_000.0, SplicingSpec::Duration(4.0));
    assert!(
        gop.stalls.mean > four.stalls.mean,
        "gop {} should exceed 4s {}",
        gop.stalls.mean,
        four.stalls.mean
    );
    assert!(
        gop.stall_secs.mean > four.stall_secs.mean,
        "gop stall time {} should exceed 4s {}",
        gop.stall_secs.mean,
        four.stall_secs.mean
    );
}

#[test]
fn two_second_segments_underperform_four_second_at_low_bandwidth() {
    // Fig. 2's low-bandwidth observation: many small transfers lose to
    // fewer medium ones when the link is tight.
    let two = averaged(160_000.0, SplicingSpec::Duration(2.0));
    let four = averaged(160_000.0, SplicingSpec::Duration(4.0));
    assert!(
        two.stalls.mean > four.stalls.mean,
        "2s {} should exceed 4s {} at 160 kB/s",
        two.stalls.mean,
        four.stalls.mean
    );
}

#[test]
fn more_bandwidth_means_fewer_stalls() {
    for splicing in [SplicingSpec::Gop, SplicingSpec::Duration(4.0)] {
        let low = averaged(160_000.0, splicing);
        let high = averaged(640_000.0, splicing);
        assert!(
            high.stalls.mean < low.stalls.mean,
            "{splicing:?}: {} at 640 kB/s should beat {} at 160 kB/s",
            high.stalls.mean,
            low.stalls.mean
        );
        assert!(high.stall_secs.mean < low.stall_secs.mean);
    }
}

#[test]
fn larger_segments_start_slower() {
    // Fig. 4's robust shape: startup grows with segment duration.
    let two = averaged(256_000.0, SplicingSpec::Duration(2.0));
    let eight = averaged(256_000.0, SplicingSpec::Duration(8.0));
    assert!(
        eight.startup_secs.mean > two.startup_secs.mean,
        "8s startup {} should exceed 2s startup {}",
        eight.startup_secs.mean,
        two.startup_secs.mean
    );
}

#[test]
fn startup_falls_with_bandwidth() {
    let low = averaged(128_000.0, SplicingSpec::Duration(4.0));
    let high = averaged(512_000.0, SplicingSpec::Duration(4.0));
    assert!(
        high.startup_secs.mean < low.startup_secs.mean,
        "startup {} at 512 kB/s should beat {} at 128 kB/s",
        high.startup_secs.mean,
        low.startup_secs.mean
    );
}

#[test]
fn splicing_overhead_orders_by_segment_duration() {
    let video = VideoSpec::default().build();
    let ratios: Vec<f64> = [1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&d| SplicingSpec::Duration(d).splice(&video).overhead_ratio())
        .collect();
    for pair in ratios.windows(2) {
        assert!(
            pair[0] > pair[1],
            "shorter segments must carry more overhead: {ratios:?}"
        );
    }
    assert_eq!(SplicingSpec::Gop.splice(&video).overhead_ratio(), 0.0);
}
