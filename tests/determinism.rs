//! Reproducibility: identical seeds give bit-identical results across the
//! whole stack, different seeds diverge.

use splicecast_core::{run_averaged, run_once, ExperimentConfig, SplicingSpec, VideoSpec};
use splicecast_swarm::{ChurnConfig, EstimatorKind, PolicyConfig};

fn config(variant: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(384_000.0)
        .with_leechers(4);
    config.video = VideoSpec {
        duration_secs: 20.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 400.0;
    match variant {
        0 => {}
        1 => {
            config.splicing = SplicingSpec::Gop;
            config.swarm.policy = PolicyConfig::Fixed(4);
        }
        2 => {
            config.swarm.churn = Some(ChurnConfig::new(0.5, 15.0));
            config.swarm.estimator = EstimatorKind::Ewma { alpha: 0.3 };
        }
        _ => {
            config.swarm.cdn = Some(splicecast_swarm::CdnConfig::default());
        }
    }
    config
}

#[test]
fn same_seed_same_everything() {
    for variant in 0..4 {
        let cfg = config(variant);
        let a = run_once(&cfg, 99);
        let b = run_once(&cfg, 99);
        assert_eq!(a, b, "variant {variant} diverged under an identical seed");
    }
}

#[test]
fn different_seeds_diverge() {
    let cfg = config(0);
    let a = run_once(&cfg, 1);
    let b = run_once(&cfg, 2);
    assert_ne!(a.metrics, b.metrics);
}

#[test]
fn averaging_is_order_independent_and_stable() {
    let cfg = config(0);
    let forward = run_averaged(&cfg, &[1, 2, 3]);
    let again = run_averaged(&cfg, &[1, 2, 3]);
    assert_eq!(forward, again);
}

#[test]
fn netsim_traces_are_reproducible() {
    use bytes::Bytes;
    use splicecast_netsim::*;

    struct Chatter {
        peers: Vec<NodeId>,
    }
    impl NodeBehavior for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, &peer) in self.peers.clone().iter().enumerate() {
                let _ = ctx.send(peer, Bytes::from(vec![i as u8; 100]));
                let _ = ctx.start_transfer(peer, 50_000, i as u64);
            }
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
    }

    fn run(seed: u64) -> Trace {
        let spec = LinkSpec::from_bytes_per_sec(100_000.0, SimDuration::from_millis(20), 0.05);
        let star = star(&[spec; 4]);
        let mut sim = Simulator::new(star.network, seed);
        sim.enable_trace();
        sim.add_node(Box::new(NullBehavior));
        sim.add_node(Box::new(Chatter {
            peers: star.leaves[1..].to_vec(),
        }));
        for _ in 1..4 {
            sim.add_node(Box::new(NullBehavior));
        }
        sim.run_until_idle(SimTime::from_secs_f64(120.0));
        sim.take_trace()
    }

    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
