//! Chaos harness: seeded random fault schedules (crash-stop churn ×
//! control-message loss/delay × CDN outages × link flaps) driven through
//! the public experiment API, with the peer-side defenses enabled.
//!
//! The property under test: as long as the CDN eventually comes back, every
//! persistent peer (neither churned nor crashed) completes the stream, the
//! simulation never deadlocks, and the fault counters reconcile with the
//! per-peer reports. Each schedule is derived deterministically from its
//! seed, so failures reproduce exactly.

use splicecast_core::{
    run_once, CdnConfig, CdnOutageConfig, ChurnConfig, ControlPlane, CrashChurnConfig,
    DefenseConfig, DiscoveryMode, DisseminationMode, ExperimentConfig, FaultPlanConfig,
    LinkFlapConfig, SchedulerMode, VideoSpec,
};

/// splitmix64: derives independent fault knobs from one chaos seed without
/// touching the simulation's own RNG streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn base() -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(384_000.0)
        .with_leechers(5)
        .with_defense(DefenseConfig::default());
    config.video = VideoSpec {
        duration_secs: 25.0,
        ..VideoSpec::default()
    };
    config.swarm.cdn = Some(CdnConfig::default());
    config.swarm.max_sim_secs = 900.0;
    config
}

/// A full random schedule: every fault class armed, knobs drawn from the
/// chaos seed.
fn chaos_config(seed: u64) -> ExperimentConfig {
    let mut s = seed.wrapping_mul(0x00C0_FFEE).wrapping_add(1);
    let crash_fraction = 0.1 + 0.3 * unit(&mut s);
    let message_loss = 0.12 * unit(&mut s);
    let message_delay_prob = 0.2 * unit(&mut s);
    let flaps = (splitmix(&mut s) % 3) as usize;
    let outages = (splitmix(&mut s) % 2) as usize;
    let mut config = base();
    config.swarm.faults = Some(FaultPlanConfig {
        crash: Some(CrashChurnConfig::new(crash_fraction, 12.0)),
        message_loss,
        message_delay_prob,
        message_delay_max_secs: 1.5,
        link_flaps: (flaps > 0).then_some(LinkFlapConfig {
            count: flaps,
            degraded_bytes_per_sec: 48_000.0,
            duration_secs: 8.0,
            window_secs: 25.0,
        }),
        cdn_outages: (outages > 0).then_some(CdnOutageConfig {
            count: outages,
            duration_secs: 8.0,
            window_secs: 25.0,
        }),
    });
    config
}

#[test]
fn seeded_chaos_schedules_all_converge() {
    for seed in 1u64..=10 {
        let config = chaos_config(seed);
        let metrics = run_once(&config, seed).metrics;
        assert_eq!(metrics.reports.len(), 5, "chaos seed {seed} lost a report");
        assert!(
            metrics.sim_end_secs < config.swarm.max_sim_secs,
            "chaos seed {seed} ran into the simulation cap ({}s)",
            metrics.sim_end_secs
        );
        assert_eq!(
            metrics.stuck_peers().count(),
            0,
            "chaos seed {seed} left persistent peers stuck:\n{}",
            metrics.stuck_report()
        );
        // Counter reconciliation: a crash in the sink report implies a
        // departure, and the roll-up equals the per-peer sum.
        for report in &metrics.reports {
            assert!(
                report.fault.crashes == 0 || report.departed,
                "chaos seed {seed}: peer {} crashed but is not departed",
                report.peer
            );
        }
        let totals = metrics.fault_totals();
        let summed: u64 = metrics.reports.iter().map(|r| r.fault.crashes).sum();
        assert_eq!(totals.crashes, summed);
    }
}

#[test]
fn chaos_runs_are_reproducible() {
    let config = chaos_config(3);
    let first = run_once(&config, 42).metrics;
    let second = run_once(&config, 42).metrics;
    assert_eq!(first, second, "same seed, same schedule, same metrics");
}

#[test]
fn full_crash_fraction_marks_every_peer_crashed() {
    let mut config = base();
    config.swarm.faults = Some(FaultPlanConfig {
        crash: Some(CrashChurnConfig::new(1.0, 5.0)),
        ..FaultPlanConfig::default()
    });
    let metrics = run_once(&config, 9).metrics;
    assert_eq!(metrics.reports.len(), 5);
    for report in &metrics.reports {
        assert_eq!(
            report.fault.crashes, 1,
            "peer {} should have crashed before finishing",
            report.peer
        );
        assert!(report.departed, "crashed peer {} not departed", report.peer);
        assert!(!report.finished, "crashed peer {} finished", report.peer);
    }
    assert_eq!(metrics.fault_totals().crashes, 5);
}

#[test]
fn cdn_outage_counters_balance() {
    let mut config = base();
    config.swarm.faults = Some(FaultPlanConfig {
        cdn_outages: Some(CdnOutageConfig {
            count: 1,
            duration_secs: 8.0,
            window_secs: 20.0,
        }),
        ..FaultPlanConfig::default()
    });
    let metrics = run_once(&config, 21).metrics;
    assert_eq!(metrics.injected.outages_started, 1);
    assert_eq!(metrics.injected.outages_ended, 1);
    assert_eq!(
        metrics.stuck_peers().count(),
        0,
        "{}",
        metrics.stuck_report()
    );
}

#[test]
fn heavy_message_loss_drops_traffic_but_converges() {
    let mut config = base();
    config.swarm.faults = Some(FaultPlanConfig {
        message_loss: 0.3,
        ..FaultPlanConfig::default()
    });
    let metrics = run_once(&config, 33).metrics;
    assert!(
        metrics.injected.messages_dropped > 0,
        "30% loss must drop something"
    );
    assert_eq!(
        metrics.stuck_peers().count(),
        0,
        "defenses must route around lost control traffic:\n{}",
        metrics.stuck_report()
    );
}

/// Combined churn (graceful departures + crash-stop) under the eventful
/// control plane with tracker discovery. In debug builds the indexed
/// scheduler's candidate auditor cross-checks the holder index against a
/// full rescan on every pass, so this doubles as the index-eviction audit;
/// the explicit Scan/Indexed comparison below catches release builds too.
#[test]
fn holder_index_survives_combined_churn_on_eventful_plane() {
    let mut config = base();
    config.swarm.discovery = DiscoveryMode::Tracker;
    config.swarm.control_plane = ControlPlane::Eventful;
    config.swarm.churn = Some(ChurnConfig::new(0.4, 15.0));
    config.swarm.faults = Some(FaultPlanConfig {
        crash: Some(CrashChurnConfig::new(0.3, 12.0)),
        message_loss: 0.05,
        ..FaultPlanConfig::default()
    });

    config.swarm.scheduler = SchedulerMode::Indexed;
    let indexed = run_once(&config, 55).metrics;
    config.swarm.scheduler = SchedulerMode::Scan;
    let scanned = run_once(&config, 55).metrics;

    // Compare the Debug rendering, which deliberately excludes the
    // per-mode scheduler counters (passes vs skips differ by design).
    assert_eq!(
        format!("{indexed:?}"),
        format!("{scanned:?}"),
        "holder index diverged from the reference rescan under churn"
    );
    assert_eq!(
        indexed.stuck_peers().count(),
        0,
        "persistent peers stuck:\n{}",
        indexed.stuck_report()
    );
    let departed = indexed.reports.iter().filter(|r| r.departed).count();
    assert!(
        departed >= 1,
        "this schedule is meant to churn somebody out"
    );
}

/// The combined-churn schedule again, under windowed dissemination: lost
/// and reordered `InterestWindow` announcements, crashed subscribers, and
/// churn-evicted holders must never strand the deferred fold. In debug
/// builds the windowed candidate auditor checks the lazy holder index
/// against a full rescan (exact below the fold horizon, empty above) on
/// every pass; the Scan/Indexed comparison catches release builds too.
#[test]
fn windowed_dissemination_survives_combined_churn() {
    let mut config = base();
    config.swarm.discovery = DiscoveryMode::Tracker;
    config.swarm.control_plane = ControlPlane::Eventful;
    config.swarm.dissemination = DisseminationMode::Windowed;
    config.swarm.churn = Some(ChurnConfig::new(0.4, 15.0));
    config.swarm.faults = Some(FaultPlanConfig {
        crash: Some(CrashChurnConfig::new(0.3, 12.0)),
        message_loss: 0.05,
        ..FaultPlanConfig::default()
    });

    config.swarm.scheduler = SchedulerMode::Indexed;
    let indexed = run_once(&config, 55).metrics;
    config.swarm.scheduler = SchedulerMode::Scan;
    let scanned = run_once(&config, 55).metrics;

    assert_eq!(
        format!("{indexed:?}"),
        format!("{scanned:?}"),
        "windowed holder index diverged from the reference rescan"
    );
    assert_eq!(
        indexed.stuck_peers().count(),
        0,
        "persistent peers stuck:\n{}",
        indexed.stuck_report()
    );
    let dissem = indexed.dissem_totals();
    assert!(dissem.windows_sent > 0, "windows must be announced");
    assert!(
        dissem.deferred_indices > 0,
        "the schedule must exercise the deferred fold"
    );
}

/// The combined-churn schedule with a swarm large enough that per-segment
/// holder sets cross the sparse→dense promotion threshold mid-run, under
/// windowed dissemination, crash-stop churn, and message loss. In debug
/// builds (CI's test profile) every pump re-runs the windowed-aware holder
/// auditor against the hybrid representation — stale dense bits, broken
/// ascending iteration, or a summarized peer left in the index all fail
/// loudly here; the Scan/Indexed comparison catches release builds too.
#[test]
fn dense_promotion_survives_combined_churn() {
    let mut config = base().with_leechers(32);
    config.swarm.discovery = DiscoveryMode::Tracker;
    config.swarm.control_plane = ControlPlane::Eventful;
    config.swarm.dissemination = DisseminationMode::Windowed;
    config.swarm.churn = Some(ChurnConfig::new(0.4, 15.0));
    config.swarm.faults = Some(FaultPlanConfig {
        crash: Some(CrashChurnConfig::new(0.3, 12.0)),
        message_loss: 0.05,
        ..FaultPlanConfig::default()
    });

    config.swarm.scheduler = SchedulerMode::Indexed;
    let indexed = run_once(&config, 55).metrics;
    config.swarm.scheduler = SchedulerMode::Scan;
    let scanned = run_once(&config, 55).metrics;

    assert_eq!(
        format!("{indexed:?}"),
        format!("{scanned:?}"),
        "hybrid holder index diverged from the reference rescan"
    );
    assert_eq!(
        indexed.stuck_peers().count(),
        0,
        "persistent peers stuck:\n{}",
        indexed.stuck_report()
    );
    let sched = indexed.sched_totals();
    assert!(
        sched.dense_promotions >= 1,
        "the schedule must actually cross the promotion threshold \
         (promotions {})",
        sched.dense_promotions
    );
    assert!(
        sched.complete_peers + sched.sparse_sets + sched.dense_sets > 0,
        "representation census must be reported"
    );
}
