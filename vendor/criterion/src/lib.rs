//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Supports the subset the bench crate uses: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Under `cargo bench` it runs
//! a calibrated multi-sample measurement and prints one machine-parseable
//! line per benchmark:
//!
//! ```text
//! bench: <name> ... <median> ns/iter (min <min>, max <max>, samples <n>)
//! ```
//!
//! Under `cargo test` (no `--bench` flag) each benchmark body runs once as
//! a smoke test and no timing line is printed.

use std::time::{Duration, Instant};

/// Target wall-clock time per measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLES: usize = 20;

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so callers may use `criterion::black_box`.
pub use std::hint::black_box;

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, quick: bool, samples: usize, mut f: F) {
    let mut sample = |iters: u64| -> Duration {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.elapsed
    };

    if quick {
        sample(1);
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample
    // takes roughly TARGET_SAMPLE.
    let mut iters: u64 = 1;
    loop {
        let t = sample(iters);
        if t >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        if t < Duration::from_micros(50) {
            iters = iters.saturating_mul(100);
        } else {
            let scale = TARGET_SAMPLE.as_secs_f64() / t.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| sample(iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "bench: {name} ... {median:.1} ns/iter (min {min:.1}, max {max:.1}, samples {samples})"
    );
}

/// Entry point for a benchmark binary.
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments: full measurement
    /// under `cargo bench` (which passes `--bench`), smoke-test mode
    /// otherwise.
    pub fn from_args() -> Self {
        let quick = !std::env::args().any(|a| a == "--bench");
        Criterion { quick }
    }

    /// Measures one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.quick, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            quick: self.quick,
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample-count override.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    quick: bool,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Measures one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.prefix, name),
            self.quick,
            self.samples,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_body_once() {
        let mut calls = 0u32;
        run_bench("t", true, DEFAULT_SAMPLES, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut total = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| total += 1);
        assert_eq!(total, 37);
    }
}
