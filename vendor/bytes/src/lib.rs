//! Minimal vendored stand-in for the `bytes` crate.
//!
//! Implements exactly the API surface this workspace uses: a cheaply
//! clonable, reference-counted immutable byte buffer ([`Bytes`]), a growable
//! buffer with a read cursor ([`BytesMut`]), and the [`Buf`]/[`BufMut`]
//! accessor traits. Written from the public API documentation; no upstream
//! code is copied.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable slice of bytes.
///
/// Backed by an `Arc<[u8]>` plus a sub-range, so `clone` is a reference
/// count bump and `slice`-style consumption never copies.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copies once into shared storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Copies `data` into a new shared buffer (a single allocation).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from_vec(data.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer with a read cursor at the front.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read offset: everything before it has been consumed.
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when all written bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.data.reserve(additional);
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Drops all content, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Splits off the first `n` unconsumed bytes into their own buffer.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the unconsumed length.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of range");
        let piece = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        self.maybe_compact();
        BytesMut {
            data: piece,
            start: 0,
        }
    }

    /// Freezes the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes::from_vec(self.data)
    }

    /// Iterates over the unconsumed bytes.
    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_slice().iter()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Reclaims consumed space once it dominates the buffer.
    fn maybe_compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.compact();
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for BytesMut {}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len())
            .finish()
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// A view of the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
        self.maybe_compact();
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_cheap_clone() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bytes_buf_reads() {
        let mut b = Bytes::from(vec![7, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 9]);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 5);
        assert_eq!(b.get_u64(), 9);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bytes_mut_write_split_freeze() {
        let mut m = BytesMut::new();
        m.put_u32(8);
        m.put_u8(1);
        m.extend_from_slice(b"abc");
        assert_eq!(m.len(), 8);
        let head = m.split_to(4);
        assert_eq!(&head[..], &[0, 0, 0, 8]);
        assert_eq!(m.len(), 4);
        m.advance(1);
        assert_eq!(&m.freeze()[..], b"abc");
    }

    #[test]
    fn compaction_preserves_content() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&vec![42u8; 10_000]);
        m.advance(9_000);
        m.extend_from_slice(&[7]);
        assert_eq!(m.len(), 1_001);
        assert_eq!(m[m.len() - 1], 7);
    }
}
