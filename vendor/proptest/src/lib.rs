//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: `Strategy`
//! with `prop_map`/`boxed`, `any::<T>()`, range and tuple strategies,
//! `prop::collection::vec`, `prop_oneof!`, and the `proptest!` test macro.
//! Cases are drawn uniformly (no shrinking) from a generator seeded by the
//! fully-qualified test name, so runs are deterministic across invocations.
//! Written from the public API documentation; no upstream code is copied.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator (SplitMix64 over an FNV-1a name hash).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: combinators are `Self: Sized`-gated so `dyn Strategy` works
/// (needed by [`BoxedStrategy`] and `prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy form of [`Arbitrary`]; produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u32>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        (start + (end - start) * rng.next_f64()).clamp(start, end)
    }
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy: `vec(any::<u8>(), 0..500)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test generates.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among heterogeneous strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// In-case assertion; maps to `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// In-case equality assertion; maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// In-case inequality assertion; maps to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn` runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$attr:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1_000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (0.5f64..0.9).generate(&mut rng);
            assert!((0.5..0.9).contains(&y));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2u32), (5u32..8).prop_map(|v| v)];
        let mut rng = crate::TestRng::for_test("oneof_covers_all_arms");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|&v| v >= 5));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strat = prop::collection::vec(any::<bool>(), 2..6);
        let mut rng = crate::TestRng::for_test("vec_strategy_respects_size");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(a in any::<u16>(), b in 1u32..5) {
            prop_assert!((1..5).contains(&b));
            prop_assert_eq!(u32::from(a) + b, b + u32::from(a));
        }
    }
}
