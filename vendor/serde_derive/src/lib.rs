//! No-op stand-ins for serde's derive macros (offline build).
//!
//! The workspace never serializes anything, so the derives only need to
//! emit marker-trait impls. We parse just enough of the item — its name and
//! generic parameter names — to emit a well-formed `impl`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generic_params)` from a struct/enum definition.
///
/// Returns e.g. `("Foo", ["T", "U"])` for `struct Foo<T, U: Clone> { .. }`.
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct`/`enum` keyword.
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    // Collect top-level generic parameter names from `<...>`, if present.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        if s != "const" {
                            generics.push(s);
                            expect_param = false;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        // Lifetime parameter: grab the following ident.
                        if let Some(TokenTree::Ident(id)) = iter.next() {
                            generics.push(format!("'{id}"));
                            expect_param = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, generics))
}

fn marker_impl(input: TokenStream, trait_path: &str, trait_generics: &str) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let params = generics.join(", ");
    let code = if generics.is_empty() {
        format!("impl{trait_generics} {trait_path} for {name} {{}}")
    } else {
        let open = trait_generics.trim_start_matches('<').trim_end_matches('>');
        let lead = if open.is_empty() {
            params.clone()
        } else {
            format!("{open}, {params}")
        };
        format!("impl<{lead}> {trait_path} for {name}<{params}> {{}}")
    };
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits only the marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", "")
}

/// No-op `Deserialize` derive: emits only the marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'de>", "<'de>")
}
