//! Minimal vendored stand-in for the `rand` crate.
//!
//! Provides the `Rng`/`SeedableRng` traits and an `rngs::StdRng` with the
//! API subset this workspace uses. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high quality, and much faster than the real
//! `StdRng`'s ChaCha12, which suits a simulator whose only requirement is
//! same-seed reproducibility *within* a build. Written from the public API
//! documentation; no upstream code is copied.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v.max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (start + (end - start) * u).clamp(start, end)
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift keeps the draw fast; bias is < 2^-64 · span.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + off as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start + off as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro requires a non-zero state; splitmix64 makes an
            // all-zero result vanishingly unlikely, but stay safe.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn float_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&b));
            let c = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&c));
        }
    }

    #[test]
    fn gen_range_hits_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 3];
        for _ in 0..1_000 {
            saw[rng.gen_range(0u64..=2) as usize] = true;
        }
        assert_eq!(saw, [true; 3]);
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
