//! Minimal vendored stand-in for the `serde` crate.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing is
//! actually serialized — so marker traits plus no-op derive macros are enough
//! to keep the annotations compiling offline.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
