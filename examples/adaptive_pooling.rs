//! The paper's Eq. 1 in action: how many segments should a peer download
//! simultaneously, and how the adaptive policy compares to fixed pools.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example adaptive_pooling
//! ```

use splicecast_core::{optimal_pool_size, run_averaged, ExperimentConfig, PolicyConfig, VideoSpec};

fn main() {
    // The formula itself: k = max(⌊B·T/W⌋, 1).
    println!("Eq. 1 — optimal simultaneous downloads (W = 512 kB segments):");
    println!("  T buffered:   0s  2s  4s  8s  16s");
    for (label, b) in [("128 kB/s", 128_000.0), ("512 kB/s", 512_000.0)] {
        let row: Vec<usize> = [0.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&t| optimal_pool_size(b, t, 512_000))
            .collect();
        println!("  B={label}: {row:?}");
    }

    // And in a live swarm.
    println!("\nstreaming a 60 s clip to 8 peers at 256 kB/s:");
    for (name, policy) in [
        ("adaptive (Eq. 1)", PolicyConfig::Adaptive),
        ("fixed pool of 2", PolicyConfig::Fixed(2)),
        ("fixed pool of 8", PolicyConfig::Fixed(8)),
    ] {
        let mut config = ExperimentConfig::paper_baseline()
            .with_bandwidth(256_000.0)
            .with_policy(policy)
            .with_leechers(8);
        config.video = VideoSpec {
            duration_secs: 60.0,
            ..VideoSpec::default()
        };
        let avg = run_averaged(&config, &[7, 8]);
        println!(
            "  {name:18} startup {:5.1} s   stalls {:5.1}   stall time {:6.1} s",
            avg.startup_secs.mean, avg.stalls.mean, avg.stall_secs.mean
        );
    }
}
