//! Bitrate adaptation (the §I industry baseline) vs full-quality
//! streaming, on the same CDN substrate.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example abr_comparison
//! ```

use splicecast_core::{run_abr, AbrAlgorithm, AbrConfig, Ladder};

fn main() {
    let ladder = Ladder::builder()
        .duration_secs(60.0)
        .bitrates(&[250_000, 500_000, 1_000_000])
        .segment_secs(4.0)
        .seed(7)
        .build();
    println!(
        "ladder: {} renditions × {} segments of ~4 s\n",
        ladder.len(),
        ladder.segment_count()
    );

    for bandwidth in [120_000.0, 200_000.0, 320_000.0] {
        println!("clients at {:.0} kB/s:", bandwidth / 1e3);
        for algorithm in [
            AbrAlgorithm::BufferBased {
                low_secs: 4.0,
                high_secs: 16.0,
            },
            AbrAlgorithm::RateBased { safety: 0.8 },
            AbrAlgorithm::FixedRendition(2),
        ] {
            let config = AbrConfig {
                n_clients: 6,
                client_bandwidth_bytes_per_sec: bandwidth,
                algorithm,
                max_sim_secs: 600.0,
                ..AbrConfig::default()
            };
            let metrics = run_abr(&ladder, &config, 42);
            println!(
                "  {:12}  stalls {:4.1}   stall time {:5.1} s   delivered {:.2} Mbps",
                algorithm.name(),
                metrics.mean_stalls(),
                metrics.mean_stall_secs(),
                metrics.mean_bitrate_bps() / 1e6,
            );
        }
        println!();
    }
    println!("the adaptive arms trade quality for smoothness; the fixed arm");
    println!("holds 1 Mbps and pays in stalls when the link is thin — the");
    println!("trade-off the paper's splicing approach is designed to escape.");
}
