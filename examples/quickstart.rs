//! Quickstart: splice a synthetic video two ways and stream each through a
//! small P2P swarm.
//!
//! ```sh
//! cargo run -p splicecast-examples --example quickstart
//! ```

use splicecast_core::{run_once, ExperimentConfig, SplicingSpec, VideoSpec};

fn main() {
    // A 1-minute, 1 Mbps synthetic MPEG-4 clip with mixed content.
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(256_000.0)
        .with_leechers(8);
    config.video = VideoSpec {
        duration_secs: 60.0,
        ..VideoSpec::default()
    };

    println!("streaming a 60 s / 1 Mbps clip to 8 peers at 256 kB/s\n");
    for splicing in [SplicingSpec::Gop, SplicingSpec::Duration(4.0)] {
        let result = run_once(&config.clone().with_splicing(splicing), 42);
        let metrics = &result.metrics;
        println!("{} splicing:", splicing.label());
        println!("  segments:        {}", result.segment_count);
        println!("  byte overhead:   {:.1}%", result.overhead_ratio * 100.0);
        println!("  mean startup:    {:.1} s", metrics.mean_startup_secs());
        println!("  mean stalls:     {:.1}", metrics.mean_stalls());
        println!("  mean stall time: {:.1} s", metrics.mean_stall_secs());
        println!(
            "  peer offload:    {:.0}%",
            metrics.peer_offload_ratio() * 100.0
        );
        println!();
    }
}
