//! Peer churn (§III's motivation): peers leave mid-stream; prefetched
//! segments keep the remaining viewers going.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example churn_resilience
//! ```

use splicecast_core::{run_once, ChurnConfig, ExperimentConfig, VideoSpec};

fn main() {
    println!("streaming a 60 s clip to 10 peers at 256 kB/s under churn:\n");
    for volatile in [0.0, 0.3, 0.6] {
        let mut config = ExperimentConfig::paper_baseline()
            .with_bandwidth(256_000.0)
            .with_leechers(10);
        config.video = VideoSpec {
            duration_secs: 60.0,
            ..VideoSpec::default()
        };
        if volatile > 0.0 {
            config.swarm.churn = Some(ChurnConfig::new(volatile, 30.0));
        }
        let result = run_once(&config, 11);
        let m = &result.metrics;
        let departed = m.reports.iter().filter(|r| r.departed).count();
        println!(
            "  volatile {:3.0}%: {departed:2} peers left early; stayers saw {:4.1} stalls / {:5.1} s stalled (completion {:3.0}%)",
            volatile * 100.0,
            m.mean_stalls(),
            m.mean_stall_secs(),
            m.completion_rate() * 100.0,
        );
    }
    println!("\nthe swarm degrades gracefully: departures remove upload capacity");
    println!("and replicas, but the seeder backstop keeps stayers streaming.");
}
