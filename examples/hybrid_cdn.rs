//! Hybrid CDN mode (§IV): a CDN joins the star and serves segments one at
//! a time per peer; the segment size must respect the B·T bound.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example hybrid_cdn
//! ```

use splicecast_core::{
    max_cdn_segment_bytes, max_cdn_segment_secs, run_once, CdnConfig, ExperimentConfig,
    SplicingSpec, VideoSpec,
};

fn main() {
    println!("§IV segment-size bound for CDN-served streaming:");
    for (label, b) in [("128 kB/s", 128_000.0), ("256 kB/s", 256_000.0)] {
        let bytes = max_cdn_segment_bytes(b, 4.0);
        let secs = max_cdn_segment_secs(b, 4.0, 1_000_000.0);
        println!(
            "  B = {label}, T = 4 s  →  W ≤ {} kB (≈ {secs:.1} s of 1 Mbps video)",
            bytes / 1000
        );
    }

    let cdn = CdnConfig {
        bandwidth_bytes_per_sec: 4_000_000.0,
        one_way_latency_secs: 0.1,
        upload_slots: 32,
    };

    println!("\nstreaming a 60 s clip to 8 peers at 192 kB/s:");
    for (label, p2p, with_cdn) in [
        ("pure P2P            ", true, false),
        ("hybrid P2P + CDN    ", true, true),
        ("CDN only (§IV mode) ", false, true),
    ] {
        let mut config = ExperimentConfig::paper_baseline()
            .with_bandwidth(192_000.0)
            .with_splicing(SplicingSpec::Duration(4.0))
            .with_leechers(8);
        config.video = VideoSpec {
            duration_secs: 60.0,
            ..VideoSpec::default()
        };
        config.swarm.p2p = p2p;
        config.swarm.cdn = with_cdn.then_some(cdn);
        let result = run_once(&config, 3);
        let m = &result.metrics;
        println!(
            "  {label} startup {:5.1} s   stalls {:5.1}   from peers {:3.0}%   from CDN {:3.0}%",
            m.mean_startup_secs(),
            m.mean_stalls(),
            m.peer_offload_ratio() * 100.0,
            100.0 * m.reports.iter().map(|r| r.segments_from_cdn).sum::<usize>() as f64
                / m.reports
                    .iter()
                    .map(|r| r.segments_from_cdn + r.segments_from_peers + r.segments_from_seeder)
                    .sum::<usize>()
                    .max(1) as f64,
        );
    }
}
