//! GOP-based vs duration-based splicing across bandwidths — a scaled-down
//! version of the paper's Figures 2 and 3.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example splicing_comparison
//! ```

use splicecast_core::{run_averaged, ExperimentConfig, SplicingSpec, Table, VideoSpec};

fn main() {
    let bandwidths = [
        ("128 kB/s", 128_000.0),
        ("256 kB/s", 256_000.0),
        ("512 kB/s", 512_000.0),
    ];
    let variants = [
        ("gop", SplicingSpec::Gop),
        ("2s", SplicingSpec::Duration(2.0)),
        ("4s", SplicingSpec::Duration(4.0)),
        ("8s", SplicingSpec::Duration(8.0)),
    ];

    let mut stall_table = Table::new(
        "Stalls per viewer (10 peers, 60 s clip)",
        "bandwidth",
        &["gop", "2s", "4s", "8s"],
    );
    let mut duration_table = Table::new(
        "Total stall seconds per viewer",
        "bandwidth",
        &["gop", "2s", "4s", "8s"],
    );

    for (label, bandwidth) in bandwidths {
        let mut stalls = Vec::new();
        let mut durations = Vec::new();
        for (_, splicing) in &variants {
            let mut config = ExperimentConfig::paper_baseline()
                .with_bandwidth(bandwidth)
                .with_splicing(*splicing)
                .with_leechers(10);
            config.video = VideoSpec {
                duration_secs: 60.0,
                ..VideoSpec::default()
            };
            let avg = run_averaged(&config, &[1, 2]);
            stalls.push(avg.stalls.mean);
            durations.push(avg.stall_secs.mean);
        }
        stall_table.push_row(label, &stalls);
        duration_table.push_row(label, &durations);
    }
    println!("{stall_table}");
    println!("{duration_table}");
    println!("expected shape: the gop column dominates, and everything");
    println!("shrinks as bandwidth grows (cf. the paper's Figs. 2-3).");
}
