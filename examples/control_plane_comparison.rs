//! Legacy vs eventful swarm control plane at a moderate swarm size — a
//! scaled-down version of the `fig_controlplane` bench.
//!
//! The legacy plane broadcasts one `Have` per completed segment to every
//! peer and polls a 2 Hz pump per leecher; the eventful plane coalesces
//! completions into `HaveBundle`s, suppresses announcements nobody needs,
//! and fires pumps only on armed deadlines. Same viewer experience, a
//! fraction of the control traffic.
//!
//! ```sh
//! cargo run --release -p splicecast-examples --example control_plane_comparison
//! ```

use std::time::Instant;

use splicecast_media::{DurationSplicer, Splicer, Video};
use splicecast_netsim::FlowModel;
use splicecast_swarm::{run_swarm, ControlPlane, SwarmConfig};

fn main() {
    // A 48 s clip cut at GoP granularity (1 s segments) on fat links: the
    // regime where moving the bytes is easy and announcing them is not.
    let video = Video::builder().duration_secs(48.0).seed(6).build();
    let segments = DurationSplicer::new(1.0).splice(&video);

    println!("50 leechers, 48 s clip, 1 s segments, 16 MB/s links\n");
    for plane in [ControlPlane::Legacy, ControlPlane::Eventful] {
        let config = SwarmConfig {
            n_leechers: 50,
            peer_bandwidth_bytes_per_sec: 16_000_000.0,
            seeder_bandwidth_bytes_per_sec: 64_000_000.0,
            seeder_upload_slots: 32,
            end_to_end_loss: 0.01,
            max_sim_secs: 600.0,
            flow_model: FlowModel::Fluid,
            control_plane: plane,
            have_coalesce_secs: Some(2.0),
            ..SwarmConfig::default()
        };
        let start = Instant::now();
        let metrics = run_swarm(&segments, &config, 5);
        let wall = start.elapsed();
        let control = metrics.control_totals();
        println!("{plane:?}:");
        println!("  wall clock:     {:.2} s", wall.as_secs_f64());
        println!("  total messages: {}", metrics.net.messages_sent);
        println!(
            "  dissemination:  {} haves + {} bundles ({} suppressed)",
            control.haves_sent, control.have_bundles_sent, control.haves_suppressed
        );
        if control.have_bundles_sent > 0 {
            println!(
                "  coalescing:     {:.1} haves per bundle",
                control.mean_bundle_size()
            );
            println!(
                "  pump fires:     {} ({} armed, {} heartbeat)",
                control.pumps(),
                control.pumps_armed,
                control.pumps_heartbeat
            );
        }
        println!(
            "  QoE:            {:.1} stalls, {:.1} s stalled, {:.0}% finished\n",
            metrics.mean_stalls(),
            metrics.mean_stall_secs(),
            metrics.completion_rate() * 100.0
        );
    }
    println!("expected shape: both planes stream to completion with the");
    println!("same stall profile, while the eventful column sends far");
    println!("fewer dissemination messages in far fewer, larger bundles.");
}
