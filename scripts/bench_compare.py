#!/usr/bin/env python3
"""Compare current perf_microbench numbers against the committed baseline.

Runs `cargo bench --offline --bench perf_microbench` (or reads a saved log
with --log), parses the `bench: <name> ... <median> ns/iter` lines, and
prints a per-benchmark speedup table against BENCH_hotpath.json. Exits
non-zero when a benchmark listed in the baseline's `speedup_gate` falls
short of the required speedup.

Usage:
    python3 scripts/bench_compare.py                # run benches and compare
    python3 scripts/bench_compare.py --log out.txt  # compare a saved log
    python3 scripts/bench_compare.py --update       # rewrite the baseline
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"
BENCH_LINE = re.compile(r"^bench: (?P<name>\S+) \.\.\. (?P<median>[0-9.]+) ns/iter")


def run_benches() -> str:
    cmd = ["cargo", "bench", "--offline", "--bench", "perf_microbench"]
    print(f"$ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(f"cargo bench failed with exit code {proc.returncode}")
    return proc.stdout


def parse_log(text: str) -> dict:
    results = {}
    for line in text.splitlines():
        m = BENCH_LINE.match(line.strip())
        if m:
            results[m.group("name")] = float(m.group("median"))
    if not results:
        sys.exit("no `bench: ... ns/iter` lines found in the bench output")
    return results


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--log", help="parse a saved bench log instead of running cargo bench")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BENCH_hotpath.json with the current numbers")
    args = ap.parse_args()

    if args.log:
        try:
            text = Path(args.log).read_text()
        except OSError as err:
            sys.exit(f"cannot read --log file: {err}")
    else:
        text = run_benches()
    current = parse_log(text)
    baseline = json.loads(BASELINE_PATH.read_text())

    if args.update:
        baseline["benches"] = {k: current.get(k, v) for k, v in baseline["benches"].items()}
        for name, median in current.items():
            baseline["benches"].setdefault(name, median)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0

    gate = baseline.get("speedup_gate", {})
    gated = set(gate.get("benches", []))
    min_speedup = float(gate.get("min_speedup", 1.0))

    width = max(len(n) for n in baseline["benches"])
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'speedup':>8}")
    failures = []
    for name, base in baseline["benches"].items():
        cur = current.get(name)
        if cur is None:
            print(f"{name:<{width}}  {base:>12.1f}  {'MISSING':>12}  {'-':>8}")
            if name in gated:
                failures.append(f"{name}: missing from bench output")
            continue
        speedup = base / cur
        marker = ""
        if name in gated:
            marker = "  [gate]"
            if speedup < min_speedup:
                failures.append(
                    f"{name}: {speedup:.2f}x < required {min_speedup:.1f}x"
                )
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  {speedup:>7.2f}x{marker}")

    for name in sorted(set(current) - set(baseline["benches"])):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>12.1f}  {'-':>8}")

    if failures:
        print("\nFAIL: hot-path speedup gate not met:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: all gated benchmarks meet the required speedup.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
