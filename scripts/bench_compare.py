#!/usr/bin/env python3
"""Compare current benchmark numbers against a committed baseline.

Runs the baseline's `command` (default: `cargo bench --offline --bench
perf_microbench`), parses the `bench: <name> ... <median> ns/iter` lines,
and prints a per-benchmark speedup table against the baseline JSON. Two
kinds of gate can be declared in the baseline file:

- `speedup_gate`: {"benches": [...], "min_speedup": X} — each listed
  benchmark's current median must be at least X times faster than the
  committed baseline median (regression gate).
- `ratio_gate`: {"pairs": [[slow, fast], ...], "min_ratio": X} — within
  the *current* run, the `slow` benchmark must be at least X times the
  `fast` one. This gates a relative property (e.g. the fluid flow model
  being >= 10x faster than the round model at scale) independently of the
  machine the benches run on. A baseline may also declare a *list* of such
  objects to gate several properties at different thresholds (e.g. message
  volume at >= 5x and wall clock at >= 2x).

Usage:
    python3 scripts/bench_compare.py                # hot-path baseline
    python3 scripts/bench_compare.py --baseline BENCH_scale.json
    python3 scripts/bench_compare.py --log out.txt  # compare a saved log
    python3 scripts/bench_compare.py --update       # rewrite the baseline
"""

import argparse
import json
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_hotpath.json"
DEFAULT_COMMAND = "cargo bench --offline --bench perf_microbench"
BENCH_LINE = re.compile(r"^bench: (?P<name>\S+) \.\.\. (?P<median>[0-9.]+) ns/iter")


def run_benches(command: str) -> str:
    cmd = shlex.split(command)
    print(f"$ {command}", file=sys.stderr)
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(f"bench command failed with exit code {proc.returncode}")
    return proc.stdout


def parse_log(text: str) -> dict:
    results = {}
    for line in text.splitlines():
        m = BENCH_LINE.match(line.strip())
        if m:
            results[m.group("name")] = float(m.group("median"))
    if not results:
        sys.exit("no `bench: ... ns/iter` lines found in the bench output")
    return results


def check_speedup_gate(baseline: dict, current: dict) -> list:
    """Prints the baseline-vs-current table; returns gate failures."""
    gate = baseline.get("speedup_gate", {})
    gated = set(gate.get("benches", []))
    min_speedup = float(gate.get("min_speedup", 1.0))

    width = max(len(n) for n in baseline["benches"])
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'speedup':>8}")
    failures = []
    for name, base in baseline["benches"].items():
        cur = current.get(name)
        if cur is None:
            print(f"{name:<{width}}  {base:>12.1f}  {'MISSING':>12}  {'-':>8}")
            if name in gated:
                failures.append(f"{name}: missing from bench output")
            continue
        speedup = base / cur
        marker = ""
        if name in gated:
            marker = "  [gate]"
            if speedup < min_speedup:
                failures.append(
                    f"{name}: {speedup:.2f}x < required {min_speedup:.1f}x"
                )
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  {speedup:>7.2f}x{marker}")

    for name in sorted(set(current) - set(baseline["benches"])):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>12.1f}  {'-':>8}")
    return failures


def check_ratio_gate(baseline: dict, current: dict) -> list:
    """Checks slow/fast pairs within the current run; returns failures.

    `ratio_gate` may be one gate object or a list of them.
    """
    gates = baseline.get("ratio_gate")
    if not gates:
        return []
    if isinstance(gates, dict):
        gates = [gates]
    failures = []
    for gate in gates:
        min_ratio = float(gate.get("min_ratio", 1.0))
        label = gate.get("label", "ratio gate")
        print(f"\n{label} (within this run, required >= {min_ratio:.1f}x):")
        for slow, fast in gate.get("pairs", []):
            missing = [n for n in (slow, fast) if n not in current]
            if missing:
                failures.append(f"{slow} / {fast}: missing {', '.join(missing)}")
                print(f"  {slow} / {fast}: MISSING")
                continue
            ratio = current[slow] / current[fast]
            ok = ratio >= min_ratio
            print(f"  {slow} / {fast}: {ratio:.2f}x {'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append(
                    f"{slow} / {fast}: {ratio:.2f}x < required {min_ratio:.1f}x"
                )
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                    help="baseline JSON file (default: BENCH_hotpath.json)")
    ap.add_argument("--log", help="parse a saved bench log instead of running cargo bench")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline file with the current numbers")
    args = ap.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = REPO_ROOT / baseline_path
    baseline = json.loads(baseline_path.read_text())

    if args.log:
        try:
            text = Path(args.log).read_text()
        except OSError as err:
            sys.exit(f"cannot read --log file: {err}")
    else:
        text = run_benches(baseline.get("command", DEFAULT_COMMAND))
    current = parse_log(text)

    if args.update:
        baseline["benches"] = {k: current.get(k, v) for k, v in baseline["benches"].items()}
        for name, median in current.items():
            baseline["benches"].setdefault(name, median)
        baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {baseline_path}")
        return 0

    failures = check_speedup_gate(baseline, current)
    failures += check_ratio_gate(baseline, current)

    if failures:
        print("\nFAIL: benchmark gate not met:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: all gated benchmarks meet their requirements.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
