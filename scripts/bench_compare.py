#!/usr/bin/env python3
"""Compare current benchmark numbers against a committed baseline.

Runs the baseline's `command` (default: `cargo bench --offline --bench
perf_microbench`), parses the `bench: <name> ... <median> ns/iter` lines,
and prints a per-benchmark speedup table against the baseline JSON. Two
kinds of gate can be declared in the baseline file:

- `speedup_gate`: {"benches": [...], "min_speedup": X} — each listed
  benchmark's current median must be at least X times faster than the
  committed baseline median (regression gate). Like `ratio_gate`, this may
  be a *list* of such objects so different benches gate at different
  thresholds (e.g. bytes/peer at >= 1.5x but wall clock at >= 1.0x).
- `ratio_gate`: {"pairs": [[slow, fast], ...], "min_ratio": X} — within
  the *current* run, the `slow` benchmark must be at least X times the
  `fast` one. This gates a relative property (e.g. the fluid flow model
  being >= 10x faster than the round model at scale) independently of the
  machine the benches run on. A baseline may also declare a *list* of such
  objects to gate several properties at different thresholds (e.g. message
  volume at >= 5x and wall clock at >= 2x).

When `$GITHUB_STEP_SUMMARY` is set (GitHub Actions), the same comparison is
appended there as a markdown table so the numbers are readable from the run
page without expanding the log.

Usage:
    python3 scripts/bench_compare.py                # hot-path baseline
    python3 scripts/bench_compare.py --baseline BENCH_scale.json
    python3 scripts/bench_compare.py --log out.txt  # compare a saved log
    python3 scripts/bench_compare.py --update       # rewrite the baseline
"""

import argparse
import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_hotpath.json"
DEFAULT_COMMAND = "cargo bench --offline --bench perf_microbench"
BENCH_LINE = re.compile(r"^bench: (?P<name>\S+) \.\.\. (?P<median>[0-9.]+) ns/iter")


def run_benches(command: str) -> str:
    cmd = shlex.split(command)
    print(f"$ {command}", file=sys.stderr)
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(f"bench command failed with exit code {proc.returncode}")
    return proc.stdout


def parse_log(text: str) -> dict:
    results = {}
    for line in text.splitlines():
        m = BENCH_LINE.match(line.strip())
        if m:
            results[m.group("name")] = float(m.group("median"))
    if not results:
        sys.exit("no `bench: ... ns/iter` lines found in the bench output")
    return results


def speedup_thresholds(baseline: dict) -> dict:
    """Flattens `speedup_gate` (one object or a list) to name -> min_speedup."""
    gates = baseline.get("speedup_gate")
    if not gates:
        return {}
    if isinstance(gates, dict):
        gates = [gates]
    thresholds = {}
    for gate in gates:
        min_speedup = float(gate.get("min_speedup", 1.0))
        for name in gate.get("benches", []):
            thresholds[name] = max(min_speedup, thresholds.get(name, 0.0))
    return thresholds


def check_speedup_gate(baseline: dict, current: dict, rows: list) -> list:
    """Prints the baseline-vs-current table; returns gate failures.

    Each printed comparison is also appended to `rows` as
    (benchmark, baseline, current, speedup-or-None, gate-label) for the
    markdown step summary.
    """
    gated = speedup_thresholds(baseline)

    width = max(len(n) for n in baseline["benches"])
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'speedup':>8}")
    failures = []
    for name, base in baseline["benches"].items():
        cur = current.get(name)
        gate_label = f">= {gated[name]:.1f}x" if name in gated else ""
        if cur is None:
            print(f"{name:<{width}}  {base:>12.1f}  {'MISSING':>12}  {'-':>8}")
            rows.append((name, base, None, None, gate_label))
            if name in gated:
                failures.append(f"{name}: missing from bench output")
            continue
        speedup = base / cur
        marker = f"  [gate {gate_label}]" if name in gated else ""
        if name in gated and speedup < gated[name]:
            failures.append(
                f"{name}: {speedup:.2f}x < required {gated[name]:.1f}x"
            )
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  {speedup:>7.2f}x{marker}")
        rows.append((name, base, cur, speedup, gate_label))

    for name in sorted(set(current) - set(baseline["benches"])):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>12.1f}  {'-':>8}")
        rows.append((name, None, current[name], None, ""))
    return failures


def check_ratio_gate(baseline: dict, current: dict, ratio_rows: list) -> list:
    """Checks slow/fast pairs within the current run; returns failures.

    `ratio_gate` may be one gate object or a list of them. Each line prints
    the absolute medians next to the ratio so a failing (or barely passing)
    gate can be read without re-running the bench; the same tuples land in
    `ratio_rows` as (label, slow, fast, slow-val, fast-val, ratio, min).
    """
    gates = baseline.get("ratio_gate")
    if not gates:
        return []
    if isinstance(gates, dict):
        gates = [gates]
    failures = []
    for gate in gates:
        min_ratio = float(gate.get("min_ratio", 1.0))
        label = gate.get("label", "ratio gate")
        print(f"\n{label} (within this run, required >= {min_ratio:.1f}x):")
        for slow, fast in gate.get("pairs", []):
            missing = [n for n in (slow, fast) if n not in current]
            if missing:
                failures.append(f"{slow} / {fast}: missing {', '.join(missing)}")
                print(f"  {slow} / {fast}: MISSING")
                ratio_rows.append((label, slow, fast, None, None, None, min_ratio))
                continue
            ratio = current[slow] / current[fast]
            ok = ratio >= min_ratio
            print(
                f"  {slow} / {fast}: {ratio:.2f}x {'ok' if ok else 'FAIL'}"
                f"  ({current[slow]:.1f} / {current[fast]:.1f})"
            )
            ratio_rows.append(
                (label, slow, fast, current[slow], current[fast], ratio, min_ratio)
            )
            if not ok:
                failures.append(
                    f"{slow} / {fast}: {ratio:.2f}x < required {min_ratio:.1f}x"
                )
    return failures


def write_step_summary(baseline_name: str, rows: list, ratio_rows: list,
                       failures: list) -> None:
    """Appends the comparison as markdown to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return

    def fmt(value, suffix=""):
        return f"{value:,.1f}{suffix}" if value is not None else "—"

    lines = [f"### Bench gate: `{baseline_name}`", ""]
    if rows:
        lines += ["| benchmark | baseline | current | speedup | gate |",
                  "|---|---:|---:|---:|---|"]
        for name, base, cur, speedup, gate_label in rows:
            lines.append(
                f"| `{name}` | {fmt(base)} | {fmt(cur)} | {fmt(speedup, 'x')} "
                f"| {gate_label or ''} |"
            )
        lines.append("")
    if ratio_rows:
        lines += ["| ratio gate | slow | fast | ratio | required |",
                  "|---|---:|---:|---:|---|"]
        for label, slow, fast, sval, fval, ratio, min_ratio in ratio_rows:
            lines.append(
                f"| {label}: `{slow}` / `{fast}` | {fmt(sval)} | {fmt(fval)} "
                f"| {fmt(ratio, 'x')} | >= {min_ratio:.1f}x |"
            )
        lines.append("")
    lines.append("**FAIL**: " + "; ".join(failures) if failures else "**OK**")
    lines.append("")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                    help="baseline JSON file (default: BENCH_hotpath.json)")
    ap.add_argument("--log", help="parse a saved bench log instead of running cargo bench")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline file with the current numbers")
    args = ap.parse_args()

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = REPO_ROOT / baseline_path
    baseline = json.loads(baseline_path.read_text())

    if args.log:
        try:
            text = Path(args.log).read_text()
        except OSError as err:
            sys.exit(f"cannot read --log file: {err}")
    else:
        text = run_benches(baseline.get("command", DEFAULT_COMMAND))
    current = parse_log(text)

    if args.update:
        baseline["benches"] = {k: current.get(k, v) for k, v in baseline["benches"].items()}
        for name, median in current.items():
            baseline["benches"].setdefault(name, median)
        baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {baseline_path}")
        return 0

    rows, ratio_rows = [], []
    failures = check_speedup_gate(baseline, current, rows)
    failures += check_ratio_gate(baseline, current, ratio_rows)
    write_step_summary(baseline_path.name, rows, ratio_rows, failures)

    if failures:
        print("\nFAIL: benchmark gate not met:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: all gated benchmarks meet their requirements.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
