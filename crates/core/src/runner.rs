//! Executing a single experiment run.

use serde::{Deserialize, Serialize};

use splicecast_swarm::{run_swarm, SwarmMetrics};

use crate::config::ExperimentConfig;

/// Result of one seeded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The seed the swarm ran with.
    pub seed: u64,
    /// Per-peer and aggregate streaming metrics.
    pub metrics: SwarmMetrics,
    /// How many segments the splice produced.
    pub segment_count: usize,
    /// Total bytes a full download transfers (media + splicing overhead).
    pub total_transfer_bytes: u64,
    /// Splicing overhead as a fraction of media bytes.
    pub overhead_ratio: f64,
}

/// Builds the video, splices it, runs the swarm once.
///
/// Deterministic for a given `(config, seed)`.
///
/// # Panics
///
/// Panics on invalid configuration.
///
/// # Examples
///
/// ```no_run
/// use splicecast_core::{run_once, ExperimentConfig};
///
/// let result = run_once(&ExperimentConfig::paper_baseline(), 1);
/// println!("{} stalls", result.metrics.mean_stalls());
/// ```
pub fn run_once(config: &ExperimentConfig, seed: u64) -> RunResult {
    let video = config.video.build();
    let segments = config.splicing.splice(&video);
    debug_assert!(segments.validate(&video).is_ok());
    let metrics = run_swarm(&segments, &config.swarm, seed);
    RunResult {
        seed,
        segment_count: segments.len(),
        total_transfer_bytes: segments.total_bytes(),
        overhead_ratio: segments.overhead_ratio(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VideoSpec;
    use crate::splicing::SplicingSpec;

    fn quick_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(512_000.0)
            .with_leechers(3);
        cfg.video = VideoSpec {
            duration_secs: 16.0,
            ..VideoSpec::default()
        };
        cfg.swarm.max_sim_secs = 300.0;
        cfg
    }

    #[test]
    fn run_once_produces_consistent_result() {
        let cfg = quick_config();
        let result = run_once(&cfg, 5);
        assert_eq!(result.seed, 5);
        assert_eq!(result.metrics.reports.len(), 3);
        assert_eq!(result.segment_count, 4); // 16 s / 4 s
        assert!(
            result.overhead_ratio > 0.0,
            "duration splicing has overhead"
        );
        assert!(result.total_transfer_bytes > 16.0 as u64 * 125_000 / 8);
    }

    #[test]
    fn run_once_is_deterministic() {
        let cfg = quick_config();
        assert_eq!(run_once(&cfg, 9), run_once(&cfg, 9));
    }

    #[test]
    fn gop_splicing_has_no_overhead() {
        let cfg = quick_config().with_splicing(SplicingSpec::Gop);
        let result = run_once(&cfg, 1);
        assert_eq!(result.overhead_ratio, 0.0);
    }
}
