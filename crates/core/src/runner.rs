//! Executing a single experiment run.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use splicecast_media::SegmentList;
use splicecast_swarm::{run_swarm_shared, SwarmMetrics};

use crate::config::ExperimentConfig;

/// Result of one seeded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The seed the swarm ran with.
    pub seed: u64,
    /// Per-peer and aggregate streaming metrics.
    pub metrics: SwarmMetrics,
    /// How many segments the splice produced.
    pub segment_count: usize,
    /// Total bytes a full download transfers (media + splicing overhead).
    pub total_transfer_bytes: u64,
    /// Splicing overhead as a fraction of media bytes.
    pub overhead_ratio: f64,
}

/// Builds the video, splices it, runs the swarm once.
///
/// Deterministic for a given `(config, seed)`.
///
/// # Panics
///
/// Panics on invalid configuration.
///
/// # Examples
///
/// ```no_run
/// use splicecast_core::{run_once, ExperimentConfig};
///
/// let result = run_once(&ExperimentConfig::paper_baseline(), 1);
/// println!("{} stalls", result.metrics.mean_stalls());
/// ```
pub fn run_once(config: &ExperimentConfig, seed: u64) -> RunResult {
    PreparedExperiment::new(config).run(seed)
}

/// An experiment with its media already built: encoding the synthetic
/// video and splicing it are deterministic in the config, so averaging
/// over seeds (or sweeping swarm parameters over the same clip) only needs
/// to do that work once. The segment list is shared with every swarm run
/// through an [`Arc`].
#[derive(Debug, Clone)]
pub struct PreparedExperiment {
    config: ExperimentConfig,
    segments: Arc<SegmentList>,
}

impl PreparedExperiment {
    /// Builds and splices the configured video.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration.
    pub fn new(config: &ExperimentConfig) -> Self {
        let video = config.video.build();
        let segments = config.splicing.splice(&video);
        debug_assert!(segments.validate(&video).is_ok());
        PreparedExperiment {
            config: config.clone(),
            segments: Arc::new(segments),
        }
    }

    /// The configuration this experiment was prepared for.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Re-uses this experiment's built media for another configuration,
    /// when that configuration encodes and splices the identical video
    /// (only swarm parameters differ). Returns `None` otherwise.
    pub fn try_share(&self, config: &ExperimentConfig) -> Option<Self> {
        if self.config.video == config.video && self.config.splicing == config.splicing {
            Some(PreparedExperiment {
                config: config.clone(),
                segments: Arc::clone(&self.segments),
            })
        } else {
            None
        }
    }

    /// Runs the swarm once over the prepared media. Deterministic for a
    /// given `(config, seed)` and identical to [`run_once`] on the same
    /// inputs.
    pub fn run(&self, seed: u64) -> RunResult {
        let metrics = run_swarm_shared(&self.segments, &self.config.swarm, seed);
        RunResult {
            seed,
            segment_count: self.segments.len(),
            total_transfer_bytes: self.segments.total_bytes(),
            overhead_ratio: self.segments.overhead_ratio(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VideoSpec;
    use crate::splicing::SplicingSpec;

    fn quick_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(512_000.0)
            .with_leechers(3);
        cfg.video = VideoSpec {
            duration_secs: 16.0,
            ..VideoSpec::default()
        };
        cfg.swarm.max_sim_secs = 300.0;
        cfg
    }

    #[test]
    fn run_once_produces_consistent_result() {
        let cfg = quick_config();
        let result = run_once(&cfg, 5);
        assert_eq!(result.seed, 5);
        assert_eq!(result.metrics.reports.len(), 3);
        assert_eq!(result.segment_count, 4); // 16 s / 4 s
        assert!(
            result.overhead_ratio > 0.0,
            "duration splicing has overhead"
        );
        assert!(result.total_transfer_bytes > 16.0 as u64 * 125_000 / 8);
    }

    #[test]
    fn run_once_is_deterministic() {
        let cfg = quick_config();
        assert_eq!(run_once(&cfg, 9), run_once(&cfg, 9));
    }

    #[test]
    fn gop_splicing_has_no_overhead() {
        let cfg = quick_config().with_splicing(SplicingSpec::Gop);
        let result = run_once(&cfg, 1);
        assert_eq!(result.overhead_ratio, 0.0);
    }

    #[test]
    fn prepared_run_matches_run_once() {
        let cfg = quick_config();
        let prepared = PreparedExperiment::new(&cfg);
        assert_eq!(prepared.run(5), run_once(&cfg, 5));
    }

    #[test]
    fn fluid_model_tracks_round_model_on_the_paper_baseline() {
        // The fluid model is an approximation, not a re-derivation: on the
        // paper's baseline swarm it must land in the same regime as the
        // round model (peers finish, playback works, stall counts are of
        // the same order), not match it bit for bit.
        let rounds_cfg = ExperimentConfig::paper_baseline();
        let fluid_cfg =
            ExperimentConfig::paper_baseline().with_flow_model(splicecast_netsim::FlowModel::Fluid);
        let rounds = run_once(&rounds_cfg, 101);
        let fluid = run_once(&fluid_cfg, 101);
        assert_eq!(
            rounds.metrics.reports.len(),
            fluid.metrics.reports.len(),
            "both models must field the full swarm"
        );
        for report in &fluid.metrics.reports {
            assert!(report.finished, "fluid peer failed to finish the stream");
        }
        let (rs, fs) = (rounds.metrics.mean_stalls(), fluid.metrics.mean_stalls());
        assert!(
            (fs - rs).abs() <= (rs * 0.5).max(3.0),
            "mean stalls diverged: rounds {rs:.1} vs fluid {fs:.1}"
        );
        let (ru, fu) = (
            rounds.metrics.mean_startup_secs(),
            fluid.metrics.mean_startup_secs(),
        );
        assert!(
            (fu - ru).abs() <= (ru * 0.5).max(2.0),
            "startup diverged: rounds {ru:.2} s vs fluid {fu:.2} s"
        );
    }

    #[test]
    fn prepared_media_is_shared_across_same_video_configs() {
        let cfg = quick_config();
        let prepared = PreparedExperiment::new(&cfg);
        let other = cfg.clone().with_bandwidth(256_000.0);
        let shared = prepared
            .try_share(&other)
            .expect("same video + splice should share");
        assert!(Arc::ptr_eq(&prepared.segments, &shared.segments));
        assert_eq!(shared.run(5), run_once(&other, 5));
        // Different splicing must not share.
        assert!(prepared
            .try_share(&cfg.with_splicing(SplicingSpec::Gop))
            .is_none());
    }
}
