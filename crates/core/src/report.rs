//! Plain-text tables in the shape of the paper's figures.

use std::fmt;

/// A series-by-x table, printed with aligned columns — one row per x-axis
/// value (e.g. bandwidth), one column per series (e.g. splicing scheme),
/// mirroring how the paper's figures are read.
///
/// # Examples
///
/// ```
/// use splicecast_core::Table;
///
/// let mut t = Table::new("Fig. 2: stalls", "bandwidth", &["gop", "4s"]);
/// t.push_row("128 kB/s", &[9.0, 3.0]);
/// t.push_row("256 kB/s", &[5.0, 1.0]);
/// let text = t.to_string();
/// assert!(text.contains("gop"));
/// assert!(text.contains("128 kB/s"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    x_label: String,
    series: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str, series: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            series: series.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            precision: 1,
        }
    }

    /// Sets decimal places for values (default 1).
    pub fn precision(&mut self, digits: usize) -> &mut Self {
        self.precision = digits;
        self
    }

    /// Appends one x-axis row.
    ///
    /// # Panics
    ///
    /// Panics when the value count differs from the series count.
    pub fn push_row(&mut self, x: &str, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push((x.to_owned(), values.to_vec()));
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at (row, series), if present.
    pub fn value(&self, row: usize, series: usize) -> Option<f64> {
        self.rows.get(row).and_then(|(_, v)| v.get(series)).copied()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The series (column) names.
    pub fn series_names(&self) -> &[String] {
        &self.series
    }

    /// The x label of one row.
    pub fn row_label(&self, row: usize) -> Option<String> {
        self.rows.get(row).map(|(x, _)| x.clone())
    }

    /// Renders as comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(x);
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.prec$}", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(x, _)| x.len())
                .chain(std::iter::once(self.x_label.len()))
                .max()
                .unwrap_or(0),
        );
        for (i, s) in self.series.iter().enumerate() {
            let data_width = self
                .rows
                .iter()
                .map(|(_, v)| format!("{:.prec$}", v[i], prec = self.precision).len())
                .max()
                .unwrap_or(0);
            widths.push(s.len().max(data_width));
        }
        write!(f, "  {:<width$}", self.x_label, width = widths[0])?;
        for (i, s) in self.series.iter().enumerate() {
            write!(f, "  {:>width$}", s, width = widths[i + 1])?;
        }
        writeln!(f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len()) + 2;
        writeln!(f, "  {}", "-".repeat(total.saturating_sub(2)))?;
        for (x, values) in &self.rows {
            write!(f, "  {:<width$}", x, width = widths[0])?;
            for (i, v) in values.iter().enumerate() {
                write!(
                    f,
                    "  {:>width$.prec$}",
                    v,
                    width = widths[i + 1],
                    prec = self.precision
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Stalls", "bandwidth", &["gop", "2s", "4s"]);
        t.push_row("128", &[9.0, 5.0, 3.25]);
        t.push_row("256", &[5.0, 2.0, 2.0]);
        t
    }

    #[test]
    fn display_aligns_and_contains_everything() {
        let text = sample().to_string();
        assert!(text.contains("Stalls"));
        assert!(text.contains("bandwidth"));
        for needle in ["gop", "2s", "4s", "128", "256", "9.0", "3.2"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Every data line has the same width.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "bandwidth,gop,2s,4s");
        assert_eq!(lines[1], "128,9.0,5.0,3.2");
    }

    #[test]
    fn precision_is_respected() {
        let mut t = sample();
        t.precision(3);
        assert!(t.to_csv().contains("3.250"));
    }

    #[test]
    fn value_accessor() {
        let t = sample();
        assert_eq!(t.value(0, 2), Some(3.25));
        assert_eq!(t.value(5, 0), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", "x", &["a"]);
        t.push_row("r", &[1.0, 2.0]);
    }
}
