//! Serializable splicing selector.

use serde::{Deserialize, Serialize};

use splicecast_media::{
    ByteSplicer, DurationSplicer, GopSplicer, RampSplicer, SegmentList, Splicer, Video,
};

/// Which splicing strategy an experiment uses (§II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplicingSpec {
    /// One segment per closed GOP (§II-A).
    Gop,
    /// Frame-accurate cuts every given number of seconds (§II-B).
    Duration(f64),
    /// PPLive-style fixed-byte blocks.
    Bytes(u64),
    /// Ramped durations from `initial` to `max` seconds (growth 1.5×) —
    /// the §VIII "adaptive splicing" future work.
    Ramp {
        /// First segment's target duration, seconds.
        initial: f64,
        /// Steady-state target duration, seconds.
        max: f64,
    },
}

impl SplicingSpec {
    /// Instantiates the splicer.
    pub fn build(&self) -> Box<dyn Splicer> {
        match self {
            SplicingSpec::Gop => Box::new(GopSplicer),
            SplicingSpec::Duration(secs) => Box::new(DurationSplicer::new(*secs)),
            SplicingSpec::Bytes(bytes) => Box::new(ByteSplicer::new(*bytes)),
            SplicingSpec::Ramp { initial, max } => Box::new(RampSplicer::new(*initial, *max, 1.5)),
        }
    }

    /// Cuts the video.
    pub fn splice(&self, video: &Video) -> SegmentList {
        self.build().splice(video)
    }

    /// Short label for reports ("gop", "4s", ...).
    pub fn label(&self) -> String {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_and_label() {
        assert_eq!(SplicingSpec::Gop.label(), "gop");
        assert_eq!(SplicingSpec::Duration(2.0).label(), "2s");
        assert_eq!(SplicingSpec::Bytes(1024).label(), "1024B");
    }

    #[test]
    fn ramp_spec_builds() {
        assert_eq!(
            SplicingSpec::Ramp {
                initial: 1.0,
                max: 8.0
            }
            .label(),
            "ramp(1→8s)"
        );
    }

    #[test]
    fn specs_splice_consistently() {
        let video = Video::builder().duration_secs(20.0).seed(1).build();
        for spec in [
            SplicingSpec::Gop,
            SplicingSpec::Duration(4.0),
            SplicingSpec::Bytes(200_000),
            SplicingSpec::Ramp {
                initial: 1.0,
                max: 8.0,
            },
        ] {
            let list = spec.splice(&video);
            list.validate(&video).unwrap();
            assert!(!list.is_empty());
        }
    }
}
