//! Multi-seed experiments and parameter sweeps.
//!
//! The paper "ran the application three times for each bandwidth and took
//! the rounded average" (§VI-A); [`run_averaged`] reproduces exactly that
//! methodology, and [`sweep`] fans a list of labelled configurations out
//! over worker threads.

use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::runner::{run_once, RunResult};
use crate::stats::{rounded_mean, Summary};

/// Seeds used when the caller does not supply their own (three runs, like
/// the paper).
pub const DEFAULT_SEEDS: [u64; 3] = [101, 202, 303];

/// Averages over seeded runs of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragedMetrics {
    /// Number of runs.
    pub runs: usize,
    /// Mean (over runs) of the per-viewer mean stall count.
    pub stalls: Summary,
    /// The paper's headline number: the rounded average stall count.
    pub rounded_stalls: i64,
    /// Mean of per-viewer total stall duration, seconds.
    pub stall_secs: Summary,
    /// Mean of per-viewer startup time, seconds.
    pub startup_secs: Summary,
    /// Mean fraction of viewers that finished the video.
    pub completion_rate: f64,
    /// Mean fraction of segment deliveries served by other peers.
    pub peer_offload: f64,
    /// Splicing overhead ratio (identical across runs).
    pub overhead_ratio: f64,
    /// Number of segments (identical across runs).
    pub segment_count: usize,
}

impl AveragedMetrics {
    /// Folds per-run results into averages.
    ///
    /// # Panics
    ///
    /// Panics on an empty result list.
    pub fn from_runs(results: &[RunResult]) -> Self {
        assert!(!results.is_empty(), "no runs to average");
        let stalls: Vec<f64> = results.iter().map(|r| r.metrics.mean_stalls()).collect();
        let stall_secs: Vec<f64> = results
            .iter()
            .map(|r| r.metrics.mean_stall_secs())
            .collect();
        let startup: Vec<f64> = results
            .iter()
            .map(|r| r.metrics.mean_startup_secs())
            .collect();
        AveragedMetrics {
            runs: results.len(),
            rounded_stalls: rounded_mean(&stalls),
            stalls: Summary::of(&stalls),
            stall_secs: Summary::of(&stall_secs),
            startup_secs: Summary::of(&startup),
            completion_rate: Summary::of(
                &results
                    .iter()
                    .map(|r| r.metrics.completion_rate())
                    .collect::<Vec<_>>(),
            )
            .mean,
            peer_offload: Summary::of(
                &results
                    .iter()
                    .map(|r| r.metrics.peer_offload_ratio())
                    .collect::<Vec<_>>(),
            )
            .mean,
            overhead_ratio: results[0].overhead_ratio,
            segment_count: results[0].segment_count,
        }
    }
}

/// Runs `config` once per seed and averages, exactly like the paper's
/// three-run methodology.
///
/// # Panics
///
/// Panics when `seeds` is empty.
pub fn run_averaged(config: &ExperimentConfig, seeds: &[u64]) -> AveragedMetrics {
    assert!(!seeds.is_empty(), "need at least one seed");
    let results: Vec<RunResult> = seeds.iter().map(|&s| run_once(config, s)).collect();
    AveragedMetrics::from_runs(&results)
}

/// A labelled configuration for a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label shown in reports (e.g. "gop @ 128 kB/s").
    pub label: String,
    /// The configuration to run.
    pub config: ExperimentConfig,
}

/// Runs every sweep point (each averaged over `seeds`) in parallel across
/// worker threads, preserving input order in the output.
///
/// # Panics
///
/// Panics when `seeds` is empty or any worker run panics.
pub fn sweep(points: &[SweepPoint], seeds: &[u64]) -> Vec<(String, AveragedMetrics)> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<(String, AveragedMetrics)>> = Vec::new();
    slots.resize_with(points.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(points.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let point = &points[i];
                let averaged = run_averaged(&point.config, seeds);
                let mut guard = slots_mutex.lock().expect("sweep slot lock");
                guard[i] = Some((point.label.clone(), averaged));
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every sweep point filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VideoSpec;
    use crate::splicing::SplicingSpec;

    fn quick_config(bandwidth: f64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(bandwidth)
            .with_leechers(3);
        cfg.video = VideoSpec {
            duration_secs: 12.0,
            ..VideoSpec::default()
        };
        cfg.swarm.max_sim_secs = 300.0;
        cfg
    }

    #[test]
    fn averaging_matches_manual_fold() {
        let cfg = quick_config(512_000.0);
        let seeds = [1, 2];
        let avg = run_averaged(&cfg, &seeds);
        assert_eq!(avg.runs, 2);
        let manual: Vec<f64> = seeds
            .iter()
            .map(|&s| run_once(&cfg, s).metrics.mean_stalls())
            .collect();
        assert!((avg.stalls.mean - Summary::of(&manual).mean).abs() < 1e-12);
        assert_eq!(avg.rounded_stalls, rounded_mean(&manual));
        assert_eq!(avg.segment_count, 3);
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let points: Vec<SweepPoint> = [512_000.0, 768_000.0]
            .iter()
            .map(|&bw| SweepPoint {
                label: format!("{bw}"),
                config: quick_config(bw),
            })
            .collect();
        let seeds = [3];
        let parallel = sweep(&points, &seeds);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].0, "512000");
        assert_eq!(parallel[1].0, "768000");
        for (point, (_, metrics)) in points.iter().zip(&parallel) {
            let serial = run_averaged(&point.config, &seeds);
            assert_eq!(*metrics, serial, "parallel and serial disagree");
        }
    }

    #[test]
    fn gop_vs_duration_overhead_shows_up_in_averages() {
        let gop = run_averaged(
            &quick_config(512_000.0).with_splicing(SplicingSpec::Gop),
            &[1],
        );
        let dur = run_averaged(
            &quick_config(512_000.0).with_splicing(SplicingSpec::Duration(2.0)),
            &[1],
        );
        assert_eq!(gop.overhead_ratio, 0.0);
        assert!(dur.overhead_ratio > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let _ = run_averaged(&quick_config(512_000.0), &[]);
    }
}
