//! Multi-seed experiments and parameter sweeps.
//!
//! The paper "ran the application three times for each bandwidth and took
//! the rounded average" (§VI-A); [`run_averaged`] reproduces exactly that
//! methodology, and [`sweep`] fans a list of labelled configurations out
//! over worker threads.

use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::runner::{PreparedExperiment, RunResult};
use crate::stats::{rounded_mean, Summary};

/// Seeds used when the caller does not supply their own (three runs, like
/// the paper).
pub const DEFAULT_SEEDS: [u64; 3] = [101, 202, 303];

/// Averages over seeded runs of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragedMetrics {
    /// Number of runs.
    pub runs: usize,
    /// Mean (over runs) of the per-viewer mean stall count.
    pub stalls: Summary,
    /// The paper's headline number: the rounded average stall count.
    pub rounded_stalls: i64,
    /// Mean of per-viewer total stall duration, seconds.
    pub stall_secs: Summary,
    /// Mean of per-viewer startup time, seconds.
    pub startup_secs: Summary,
    /// Mean fraction of viewers that finished the video.
    pub completion_rate: f64,
    /// Mean fraction of segment deliveries served by other peers.
    pub peer_offload: f64,
    /// Splicing overhead ratio (identical across runs).
    pub overhead_ratio: f64,
    /// Number of segments (identical across runs).
    pub segment_count: usize,
    /// Control-plane counters summed over every run (divide by `runs` for
    /// a per-run view).
    #[serde(default)]
    pub control: splicecast_swarm::ControlPlaneStats,
    /// Scheduler counters summed over every run.
    #[serde(default)]
    pub sched: splicecast_swarm::SchedulerStats,
    /// Windowed-dissemination counters summed over every run (all zero in
    /// full mode).
    #[serde(default)]
    pub dissem: splicecast_swarm::DisseminationStats,
    /// Peer-side fault/defense counters summed over every run.
    #[serde(default)]
    pub fault: splicecast_swarm::PeerFaultStats,
    /// Netsim-level injected-fault counters summed over every run.
    #[serde(default)]
    pub injected: splicecast_netsim::InjectedFaults,
    /// Peer memory accounting summed over every run (divide by `runs` ×
    /// leechers for bytes per peer).
    #[serde(default)]
    pub mem: splicecast_swarm::PeerMemStats,
}

impl AveragedMetrics {
    /// Folds per-run results into averages.
    ///
    /// # Panics
    ///
    /// Panics on an empty result list.
    pub fn from_runs(results: &[RunResult]) -> Self {
        assert!(!results.is_empty(), "no runs to average");
        let stalls: Vec<f64> = results.iter().map(|r| r.metrics.mean_stalls()).collect();
        let stall_secs: Vec<f64> = results
            .iter()
            .map(|r| r.metrics.mean_stall_secs())
            .collect();
        let startup: Vec<f64> = results
            .iter()
            .map(|r| r.metrics.mean_startup_secs())
            .collect();
        let mut control = splicecast_swarm::ControlPlaneStats::default();
        let mut sched = splicecast_swarm::SchedulerStats::default();
        let mut dissem = splicecast_swarm::DisseminationStats::default();
        let mut fault = splicecast_swarm::PeerFaultStats::default();
        let mut injected = splicecast_netsim::InjectedFaults::default();
        let mut mem = splicecast_swarm::PeerMemStats::default();
        for r in results {
            control.absorb(&r.metrics.control_totals());
            sched.absorb(&r.metrics.sched_totals());
            dissem.absorb(&r.metrics.dissem_totals());
            fault.absorb(&r.metrics.fault_totals());
            injected.absorb(&r.metrics.injected);
            mem.absorb(&r.metrics.mem_totals());
        }
        AveragedMetrics {
            runs: results.len(),
            rounded_stalls: rounded_mean(&stalls),
            stalls: Summary::of(&stalls),
            stall_secs: Summary::of(&stall_secs),
            startup_secs: Summary::of(&startup),
            completion_rate: Summary::of(
                &results
                    .iter()
                    .map(|r| r.metrics.completion_rate())
                    .collect::<Vec<_>>(),
            )
            .mean,
            peer_offload: Summary::of(
                &results
                    .iter()
                    .map(|r| r.metrics.peer_offload_ratio())
                    .collect::<Vec<_>>(),
            )
            .mean,
            overhead_ratio: results[0].overhead_ratio,
            segment_count: results[0].segment_count,
            control,
            sched,
            dissem,
            fault,
            injected,
            mem,
        }
    }

    /// Mean measured bytes of swarm state per leecher: the summed memory
    /// accounting divided over `leechers_per_run` peers in each run.
    pub fn mem_bytes_per_peer(&self, leechers_per_run: usize) -> f64 {
        let peers = (self.runs * leechers_per_run) as f64;
        if peers == 0.0 {
            0.0
        } else {
            self.mem.total_bytes() as f64 / peers
        }
    }

    /// Mean modeled pre-diet bytes per leecher (same denominator as
    /// [`AveragedMetrics::mem_bytes_per_peer`]).
    pub fn prediet_bytes_per_peer(&self, leechers_per_run: usize) -> f64 {
        let peers = (self.runs * leechers_per_run) as f64;
        if peers == 0.0 {
            0.0
        } else {
            self.mem.prediet_bytes as f64 / peers
        }
    }
}

/// Runs `config` once per seed and averages, exactly like the paper's
/// three-run methodology.
///
/// # Panics
///
/// Panics when `seeds` is empty.
pub fn run_averaged(config: &ExperimentConfig, seeds: &[u64]) -> AveragedMetrics {
    run_prepared_averaged(&PreparedExperiment::new(config), seeds)
}

/// [`run_averaged`] over an experiment whose media is already built —
/// the video is encoded and spliced once, not once per seed.
///
/// # Panics
///
/// Panics when `seeds` is empty.
pub fn run_prepared_averaged(prepared: &PreparedExperiment, seeds: &[u64]) -> AveragedMetrics {
    assert!(!seeds.is_empty(), "need at least one seed");
    let results: Vec<RunResult> = seeds.iter().map(|&s| prepared.run(s)).collect();
    AveragedMetrics::from_runs(&results)
}

/// A labelled configuration for a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label shown in reports (e.g. "gop @ 128 kB/s").
    pub label: String,
    /// The configuration to run.
    pub config: ExperimentConfig,
}

/// Runs every sweep point (each averaged over `seeds`) in parallel across
/// worker threads, preserving input order in the output.
///
/// # Panics
///
/// Panics when `seeds` is empty or any worker run panics.
pub fn sweep(points: &[SweepPoint], seeds: &[u64]) -> Vec<(String, AveragedMetrics)> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    sweep_with_workers(points, seeds, workers)
}

/// [`sweep`] with an explicit worker-thread count. Results are identical
/// for any count ≥ 1 (every point is an independent deterministic run).
///
/// # Panics
///
/// Panics when `seeds` is empty, `workers` is zero, or any worker run
/// panics (the worker's panic message is propagated).
pub fn sweep_with_workers(
    points: &[SweepPoint],
    seeds: &[u64],
    workers: usize,
) -> Vec<(String, AveragedMetrics)> {
    assert!(!seeds.is_empty(), "need at least one seed");
    assert!(workers >= 1, "need at least one worker");

    // Build each point's media up front, serially: points that stream the
    // identical video with the identical splicing (a bandwidth or policy
    // sweep) share one built segment list instead of re-encoding per point.
    let prepared: Vec<PreparedExperiment> =
        points
            .iter()
            .fold(Vec::with_capacity(points.len()), |mut done, point| {
                let p = done
                    .iter()
                    .find_map(|q: &PreparedExperiment| q.try_share(&point.config))
                    .unwrap_or_else(|| PreparedExperiment::new(&point.config));
                done.push(p);
                done
            });

    let next = std::sync::atomic::AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let mut slots: Vec<Option<(String, AveragedMetrics)>> = Vec::new();
    slots.resize_with(points.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    let failure_msg = std::sync::Mutex::new(None::<String>);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(points.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() || failed.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                // Clone the label before taking the slot lock: the lock
                // guards only the brief writes into `slots`.
                let label = points[i].label.clone();
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_prepared_averaged(&prepared[i], seeds)
                })) {
                    Ok(averaged) => {
                        let mut guard = slots_mutex.lock().unwrap_or_else(|e| e.into_inner());
                        guard[i] = Some((label, averaged));
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        *failure_msg.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(format!("sweep point '{label}' panicked: {msg}"));
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(msg) = failure_msg.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("{msg}");
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep point filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VideoSpec;
    use crate::runner::run_once;
    use crate::splicing::SplicingSpec;

    fn quick_config(bandwidth: f64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(bandwidth)
            .with_leechers(3);
        cfg.video = VideoSpec {
            duration_secs: 12.0,
            ..VideoSpec::default()
        };
        cfg.swarm.max_sim_secs = 300.0;
        cfg
    }

    #[test]
    fn averaging_matches_manual_fold() {
        let cfg = quick_config(512_000.0);
        let seeds = [1, 2];
        let avg = run_averaged(&cfg, &seeds);
        assert_eq!(avg.runs, 2);
        let manual: Vec<f64> = seeds
            .iter()
            .map(|&s| run_once(&cfg, s).metrics.mean_stalls())
            .collect();
        assert!((avg.stalls.mean - Summary::of(&manual).mean).abs() < 1e-12);
        assert_eq!(avg.rounded_stalls, rounded_mean(&manual));
        assert_eq!(avg.segment_count, 3);
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let points: Vec<SweepPoint> = [512_000.0, 768_000.0]
            .iter()
            .map(|&bw| SweepPoint {
                label: format!("{bw}"),
                config: quick_config(bw),
            })
            .collect();
        let seeds = [3];
        let parallel = sweep(&points, &seeds);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].0, "512000");
        assert_eq!(parallel[1].0, "768000");
        for (point, (_, metrics)) in points.iter().zip(&parallel) {
            let serial = run_averaged(&point.config, &seeds);
            assert_eq!(*metrics, serial, "parallel and serial disagree");
        }
    }

    #[test]
    fn gop_vs_duration_overhead_shows_up_in_averages() {
        let gop = run_averaged(
            &quick_config(512_000.0).with_splicing(SplicingSpec::Gop),
            &[1],
        );
        let dur = run_averaged(
            &quick_config(512_000.0).with_splicing(SplicingSpec::Duration(2.0)),
            &[1],
        );
        assert_eq!(gop.overhead_ratio, 0.0);
        assert!(dur.overhead_ratio > 0.0);
    }

    #[test]
    fn eventful_control_plane_preserves_qoe_on_the_paper_baseline() {
        // The eventful control plane is a transport optimisation, not a
        // policy change: on the paper's baseline swarm it must deliver the
        // same viewer experience as the legacy plane — equal rounded stall
        // counts, stall time within a fifth — while replacing per-segment
        // `Have` floods with coalesced bundles.
        let legacy_cfg = ExperimentConfig::paper_baseline();
        let eventful_cfg = ExperimentConfig::paper_baseline()
            .with_control_plane(splicecast_swarm::ControlPlane::Eventful);
        let legacy = run_averaged(&legacy_cfg, &DEFAULT_SEEDS);
        let eventful = run_averaged(&eventful_cfg, &DEFAULT_SEEDS);

        assert_eq!(legacy.completion_rate, 1.0);
        assert_eq!(eventful.completion_rate, 1.0);
        assert_eq!(
            legacy.rounded_stalls, eventful.rounded_stalls,
            "stall counts diverged: legacy {:.2} vs eventful {:.2}",
            legacy.stalls.mean, eventful.stalls.mean
        );
        let (lt, et) = (legacy.stall_secs.mean, eventful.stall_secs.mean);
        assert!(
            (et - lt).abs() <= (lt * 0.2).max(1.0),
            "stall time diverged: legacy {lt:.1} s vs eventful {et:.1} s"
        );

        // The equivalence is not vacuous: the eventful plane really did
        // swap the dissemination mechanism and shrink the message volume.
        assert_eq!(eventful.control.haves_sent, 0);
        assert!(eventful.control.have_bundles_sent > 0);
        assert!(eventful.control.pumps() > 0);
        assert!(legacy.control.haves_sent > eventful.control.have_bundles_sent);
    }

    #[test]
    fn windowed_dissemination_preserves_qoe_on_the_paper_baseline() {
        // Windowed interest dissemination only changes *who hears which
        // announcement when*, never what gets scheduled inside the window:
        // on the paper's baseline swarm (where the adaptive pool is far
        // smaller than the 64-segment window, so the window edge never
        // binds) it must deliver the same viewer experience as full
        // dissemination on the same eventful plane.
        let full_cfg = ExperimentConfig::paper_baseline()
            .with_control_plane(splicecast_swarm::ControlPlane::Eventful);
        let windowed_cfg = ExperimentConfig::paper_baseline()
            .with_control_plane(splicecast_swarm::ControlPlane::Eventful)
            .with_dissemination(splicecast_swarm::DisseminationMode::Windowed);
        let full = run_averaged(&full_cfg, &DEFAULT_SEEDS);
        let windowed = run_averaged(&windowed_cfg, &DEFAULT_SEEDS);

        assert_eq!(full.completion_rate, 1.0);
        assert_eq!(windowed.completion_rate, 1.0);
        assert_eq!(
            full.rounded_stalls, windowed.rounded_stalls,
            "stall counts diverged: full {:.2} vs windowed {:.2}",
            full.stalls.mean, windowed.stalls.mean
        );
        let (ft, wt) = (full.stall_secs.mean, windowed.stall_secs.mean);
        assert!(
            (wt - ft).abs() <= (ft * 0.2).max(1.0),
            "stall time diverged: full {ft:.1} s vs windowed {wt:.1} s"
        );

        // The equivalence is not vacuous: windows were announced and
        // announcements really were deferred past the fold horizon.
        assert_eq!(full.dissem, splicecast_swarm::DisseminationStats::default());
        assert!(windowed.dissem.windows_sent > 0);
        assert!(windowed.dissem.deferred_indices > 0);
        assert!(
            windowed.sched.holder_adds < full.sched.holder_adds,
            "deferral must cut holder-index inserts: windowed {} vs full {}",
            windowed.sched.holder_adds,
            full.sched.holder_adds
        );
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let _ = run_averaged(&quick_config(512_000.0), &[]);
    }

    #[test]
    fn sweep_is_identical_across_worker_counts() {
        let points: Vec<SweepPoint> = [512_000.0, 640_000.0, 768_000.0]
            .iter()
            .map(|&bw| SweepPoint {
                label: format!("{bw}"),
                config: quick_config(bw),
            })
            .collect();
        let seeds = [3, 4];
        let one = sweep_with_workers(&points, &seeds, 1);
        let four = sweep_with_workers(&points, &seeds, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn sweep_propagates_worker_panics() {
        // An invalid configuration makes the worker panic inside the run;
        // the sweep must report it instead of dying on a poisoned lock.
        let mut bad = quick_config(512_000.0);
        bad.swarm.n_leechers = 0;
        let points = vec![SweepPoint {
            label: "bad".into(),
            config: bad,
        }];
        let result = std::panic::catch_unwind(|| sweep_with_workers(&points, &[1], 2));
        let payload = result.expect_err("sweep should propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("sweep point 'bad' panicked"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn fluid_sweep_is_identical_across_worker_counts() {
        let make = |bw: f64| {
            let mut cfg = quick_config(bw);
            cfg.swarm.flow_model = splicecast_netsim::FlowModel::Fluid;
            cfg
        };
        let points: Vec<SweepPoint> = [512_000.0, 640_000.0]
            .iter()
            .map(|&bw| SweepPoint {
                label: format!("{bw}"),
                config: make(bw),
            })
            .collect();
        let seeds = [7];
        let serial = sweep_with_workers(&points, &seeds, 1);
        let parallel = sweep_with_workers(&points, &seeds, 3);
        assert_eq!(serial, parallel);
        for (point, (_, metrics)) in points.iter().zip(&serial) {
            assert_eq!(*metrics, run_averaged(&point.config, &seeds));
        }
    }
}
