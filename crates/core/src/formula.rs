//! The paper's closed-form contributions, standalone.
//!
//! Both formulas are also wired into the swarm (the adaptive policy and the
//! CDN mode); they are re-exposed here so downstream users can apply them
//! without running a simulation.

/// Eq. 1 (§III): the number of segments a peer should download
/// simultaneously.
///
/// With per-peer bandwidth `B` (bytes/s), `T` seconds of playback already
/// buffered, and `W`-byte segments:
///
/// ```text
/// k = max( ⌊B·T / W⌋, 1 )
/// ```
///
/// All `k` in-flight segments must finish within `T` seconds (their order
/// of completion is unknowable, so each must be assumed last); the pipe
/// moves `B·T` bytes in that window, hence at most `B·T/W` segments. At
/// stream start, right after a stall, or with a drained buffer (`T = 0`)
/// the peer downloads exactly one segment.
///
/// # Examples
///
/// ```
/// use splicecast_core::optimal_pool_size;
///
/// // 128 kB/s, 8 s buffered, 256 kB segments → 4 parallel downloads.
/// assert_eq!(optimal_pool_size(128_000.0, 8.0, 256_000), 4);
/// // Nothing buffered → sequential.
/// assert_eq!(optimal_pool_size(128_000.0, 0.0, 256_000), 1);
/// ```
pub fn optimal_pool_size(
    bandwidth_bytes_per_sec: f64,
    buffered_secs: f64,
    segment_bytes: u64,
) -> usize {
    splicecast_swarm::optimal_pool_size(bandwidth_bytes_per_sec, buffered_secs, segment_bytes)
}

/// §IV: the largest segment a CDN-served peer can afford.
///
/// When a CDN serves the stream, peers fetch one segment at a time; the
/// next segment must arrive within the `T` seconds of buffered playback,
/// so its size is bounded by `B·T` bytes.
///
/// # Examples
///
/// ```
/// use splicecast_core::max_cdn_segment_bytes;
///
/// assert_eq!(max_cdn_segment_bytes(128_000.0, 4.0), 512_000);
/// ```
pub fn max_cdn_segment_bytes(bandwidth_bytes_per_sec: f64, buffered_secs: f64) -> u64 {
    splicecast_swarm::max_cdn_segment_bytes(bandwidth_bytes_per_sec, buffered_secs)
}

/// Inverts §IV for planning: the largest segment *duration* (seconds) that
/// stays under the `B·T` byte bound for a video of the given bitrate,
/// assuming the steady state where `T` equals one segment duration `d`
/// (the buffer holds the previous segment while the next downloads):
/// `d · bitrate/8 ≤ B·d` holds for any `d` iff `bitrate/8 ≤ B`, so the
/// constraint binds through the startup condition `T = d₀` instead:
/// `d · bitrate/8 ≤ B·T` ⇒ `d ≤ 8·B·T / bitrate`.
pub fn max_cdn_segment_secs(
    bandwidth_bytes_per_sec: f64,
    buffered_secs: f64,
    video_bitrate_bps: f64,
) -> f64 {
    // NaN bitrates fall into the guard like non-positive ones.
    if video_bitrate_bps.is_nan() || video_bitrate_bps <= 0.0 {
        return 0.0;
    }
    (8.0 * bandwidth_bytes_per_sec * buffered_secs / video_bitrate_bps).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_matches_swarm_impl() {
        for (b, t, w) in [
            (128_000.0, 8.0, 256_000u64),
            (64_000.0, 2.0, 512_000),
            (1e6, 30.0, 100),
        ] {
            assert_eq!(
                optimal_pool_size(b, t, w),
                splicecast_swarm::optimal_pool_size(b, t, w)
            );
        }
    }

    #[test]
    fn cdn_duration_bound() {
        // 1 Mbps video, 128 kB/s link, 4 s buffered → ≈ 4.1 s segments max.
        let d = max_cdn_segment_secs(128_000.0, 4.0, 1_000_000.0);
        assert!((d - 4.096).abs() < 1e-9, "{d}");
        assert_eq!(max_cdn_segment_secs(128_000.0, 4.0, 0.0), 0.0);
    }

    #[test]
    fn cdn_byte_bound_consistency() {
        // The byte bound at (B, T) divided by the byte-rate of the video
        // equals the duration bound.
        let bytes = max_cdn_segment_bytes(128_000.0, 4.0) as f64;
        let secs = max_cdn_segment_secs(128_000.0, 4.0, 1_000_000.0);
        assert!((bytes / 125_000.0 - secs).abs() < 1e-3);
    }
}
