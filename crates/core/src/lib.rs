//! # splicecast-core
//!
//! The experiment layer and public façade of **splicecast**, a from-scratch
//! Rust reproduction of *"Video Splicing Techniques for P2P Video
//! Streaming"* (Islam & Khan, ICDCS 2015).
//!
//! The paper studies how the way a video is cut into segments (GOP-based vs
//! duration-based splicing) affects stalls in TCP-based P2P streaming, and
//! proposes Eq. 1 — `k = max(⌊B·T/W⌋, 1)` — for how many segments a peer
//! should download simultaneously. This crate bundles the substrate crates
//! and exposes the experiment workflow:
//!
//! - [`ExperimentConfig`] / [`VideoSpec`] / [`SplicingSpec`]: describe an
//!   experiment (defaults = the paper's GENI setup);
//! - [`run_once`] → [`RunResult`]: one seeded, deterministic swarm run;
//! - [`run_averaged`] / [`sweep`]: the paper's three-run rounded-average
//!   methodology and parallel parameter sweeps;
//! - [`optimal_pool_size`] / [`max_cdn_segment_bytes`]: the paper's
//!   formulas, standalone;
//! - [`Table`]: figure-shaped text reports.
//!
//! ## Quickstart
//!
//! ```no_run
//! use splicecast_core::{run_averaged, ExperimentConfig, SplicingSpec, DEFAULT_SEEDS};
//!
//! let gop = ExperimentConfig::paper_baseline().with_splicing(SplicingSpec::Gop);
//! let four = ExperimentConfig::paper_baseline().with_splicing(SplicingSpec::Duration(4.0));
//! let (g, f) = (run_averaged(&gop, &DEFAULT_SEEDS), run_averaged(&four, &DEFAULT_SEEDS));
//! println!("gop: {} stalls, 4s: {} stalls", g.rounded_stalls, f.rounded_stalls);
//! ```
//!
//! The substrate crates are re-exported as modules for direct access:
//! [`media`], [`netsim`], [`player`], [`protocol`], [`swarm`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chart;
mod config;
mod experiment;
mod formula;
mod report;
mod runner;
mod sharded;
mod splicing;
mod stats;

pub use config::{ExperimentConfig, VideoSpec};
pub use experiment::{
    run_averaged, run_prepared_averaged, sweep, sweep_with_workers, AveragedMetrics, SweepPoint,
    DEFAULT_SEEDS,
};
pub use formula::{max_cdn_segment_bytes, max_cdn_segment_secs, optimal_pool_size};
pub use report::Table;
pub use runner::{run_once, PreparedExperiment, RunResult};
pub use sharded::{channel_seed, fnv1a, ChannelResult, ShardedOutcome, ShardedWorkload};
pub use splicing::SplicingSpec;
pub use stats::{rounded_mean, Summary};

pub use splicecast_media as media;
pub use splicecast_netsim as netsim;
pub use splicecast_player as player;
pub use splicecast_protocol as protocol;
pub use splicecast_swarm as swarm;

// Commonly-used types, re-exported flat for convenience.
pub use splicecast_media::{ContentProfile, Ladder, SegmentList, Video};
pub use splicecast_swarm::{
    run_abr, AbrAlgorithm, AbrConfig, AbrMetrics, CdnConfig, CdnOutageConfig, ChurnConfig,
    ControlPlane, ControlPlaneStats, CrashChurnConfig, DefenseConfig, DiscoveryMode,
    DisseminationMode, DisseminationStats, EstimatorKind, FaultPlanConfig, LinkFlapConfig,
    PeerFaultStats, PeerMemStats, PolicyConfig, SchedulerMode, SchedulerStats, SwarmConfig,
    SwarmMetrics,
};
