//! Small statistics helpers for experiment summaries.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (mean of middle two for even n).
    pub median: f64,
}

impl Summary {
    /// Summarises a sample. Returns the zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// The paper's "rounded average": round half away from zero to an integer.
pub fn rounded_mean(values: &[f64]) -> i64 {
    Summary::of(values).mean.round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let single = Summary::of(&[3.5]);
        assert_eq!(single.n, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.median, 3.5);
        assert_eq!(single.ci95_half_width(), 0.0);
    }

    #[test]
    fn odd_median() {
        assert_eq!(Summary::of(&[3.0, 1.0, 2.0]).median, 2.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let big_values: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::of(&big_values);
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn rounded_mean_matches_paper_convention() {
        assert_eq!(rounded_mean(&[1.0, 2.0]), 2); // 1.5 rounds up
        assert_eq!(rounded_mean(&[1.0, 1.0, 2.0]), 1);
        assert_eq!(rounded_mean(&[]), 0);
    }
}
