//! ASCII charts: draw a [`Table`]'s series the way the
//! paper's figures are drawn, straight into the terminal.

use crate::report::Table;

/// Symbols assigned to series, in order.
const MARKS: [char; 8] = ['o', '*', '+', 'x', '#', '@', '%', '&'];

/// Renders the table as an ASCII scatter/line chart: x-axis = rows,
/// y-axis = value, one mark per series.
///
/// # Examples
///
/// ```
/// use splicecast_core::{chart, Table};
///
/// let mut t = Table::new("Stalls", "bandwidth", &["gop", "4s"]);
/// t.push_row("128", &[9.0, 3.0]);
/// t.push_row("256", &[5.0, 1.0]);
/// let plot = chart::render(&t, 40, 10);
/// assert!(plot.contains("o = gop"));
/// assert!(plot.contains('|'));
/// ```
pub fn render(table: &Table, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let rows = table.len();
    let series = table.series_names();
    if rows == 0 || series.is_empty() {
        return String::from("(empty chart)\n");
    }

    let mut max_value = f64::MIN;
    let mut min_value: f64 = 0.0; // charts anchor at zero like the paper's
    for r in 0..rows {
        for s in 0..series.len() {
            let v = table.value(r, s).unwrap_or(0.0);
            max_value = max_value.max(v);
            min_value = min_value.min(v);
        }
    }
    if max_value <= min_value {
        max_value = min_value + 1.0;
    }
    let span = max_value - min_value;

    // Grid of (height) value rows; column position per x row.
    let mut grid = vec![vec![' '; width]; height];
    let x_of = |row: usize| -> usize {
        if rows == 1 {
            width / 2
        } else {
            row * (width - 1) / (rows - 1)
        }
    };
    let y_of = |value: f64| -> usize {
        let frac = (value - min_value) / span;
        let level = (frac * (height - 1) as f64).round() as usize;
        (height - 1).saturating_sub(level.min(height - 1))
    };
    for (s, _) in series.iter().enumerate() {
        let mark = MARKS[s % MARKS.len()];
        for r in 0..rows {
            if let Some(v) = table.value(r, s) {
                let (x, y) = (x_of(r), y_of(v));
                // Stacked marks shift right rather than overwrite.
                let mut x_draw = x;
                while x_draw < width && grid[y][x_draw] != ' ' {
                    x_draw += 1;
                }
                if x_draw < width {
                    grid[y][x_draw] = mark;
                }
            }
        }
    }

    let label_width = 8;
    let mut out = String::new();
    out.push_str(&format!("{}\n", table.title()));
    for (level, line) in grid.iter().enumerate() {
        let axis_value = max_value - span * level as f64 / (height - 1) as f64;
        let label = if level == 0 || level == height - 1 || level == (height - 1) / 2 {
            format!("{axis_value:>label_width$.1}")
        } else {
            " ".repeat(label_width)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_width));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');

    // X labels, left-aligned at their column, with room for the last one
    // to spill past the axis.
    let last_label_len = table.row_label(rows - 1).map(|l| l.len()).unwrap_or(0);
    let mut x_line = vec![' '; width + label_width + 2 + last_label_len];
    for r in 0..rows {
        let label = table.row_label(r).unwrap_or_default();
        let start = label_width + 2 + x_of(r);
        for (i, ch) in label.chars().enumerate() {
            if start + i < x_line.len() {
                x_line[start + i] = ch;
            }
        }
    }
    out.push_str(&x_line.into_iter().collect::<String>());
    out.push('\n');

    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(s, name)| format!("{} = {name}", MARKS[s % MARKS.len()]))
        .collect();
    out.push_str(&format!(
        "{}{}\n",
        " ".repeat(label_width + 2),
        legend.join("   ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Stalls", "bandwidth", &["gop", "2s", "4s"]);
        t.push_row("128", &[136.0, 58.0, 28.0]);
        t.push_row("256", &[40.0, 24.0, 16.0]);
        t.push_row("512", &[14.0, 5.0, 3.0]);
        t.push_row("768", &[10.0, 3.0, 2.0]);
        t
    }

    #[test]
    fn renders_axes_labels_and_legend() {
        let plot = render(&sample(), 48, 12);
        assert!(plot.contains("Stalls"));
        assert!(plot.contains("136.0"), "{plot}");
        assert!(plot.contains("0.0"));
        assert!(plot.contains("o = gop"));
        assert!(plot.contains("+ = 4s"));
        assert!(plot.contains("128"));
        assert!(plot.contains("768"));
        // All four gop points are drawn (plus the legend's mark and the
        // 'o' inside the word "gop" itself).
        assert_eq!(plot.matches('o').count(), 4 + 2, "{plot}");
    }

    #[test]
    fn monotone_series_descends_visually() {
        let plot = render(&sample(), 48, 12);
        // The first 'o' (highest value) appears on an earlier line than the
        // last one.
        let lines: Vec<&str> = plot.lines().collect();
        let first = lines.iter().position(|l| l.contains('o')).unwrap();
        let last = lines
            .iter()
            .rposition(|l| l.contains('o') && !l.contains("o = "))
            .unwrap();
        assert!(last > first, "{plot}");
    }

    #[test]
    fn degenerate_tables_do_not_panic() {
        let empty = Table::new("t", "x", &["a"]);
        assert!(render(&empty, 40, 8).contains("empty"));

        let mut flat = Table::new("t", "x", &["a"]);
        flat.push_row("only", &[0.0]);
        let plot = render(&flat, 40, 8);
        assert!(plot.contains('a'));

        let mut one = Table::new("t", "x", &["a", "b"]);
        one.push_row("r", &[5.0, 5.0]);
        let _ = render(&one, 16, 4); // collision path: marks shift right
    }
}
