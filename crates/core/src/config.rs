//! Experiment configuration: video, splicing, and swarm in one bundle.

use serde::{Deserialize, Serialize};

use splicecast_media::{ContentProfile, EncoderConfig, Video};
use splicecast_swarm::SwarmConfig;

use crate::splicing::SplicingSpec;

/// Describes the synthetic test video.
///
/// Defaults reproduce the paper's clip: 2 minutes of 1 Mbps, 30 fps MPEG-4
/// with mixed content. The content seed is fixed so every run streams the
/// *same* video, as in the paper (run-to-run randomness comes from the
/// swarm seed instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Clip length in seconds.
    pub duration_secs: f64,
    /// Target bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Frame rate.
    pub fps: u32,
    /// GOP-duration model.
    pub profile: ContentProfile,
    /// Seed for content sampling and frame-size jitter.
    pub content_seed: u64,
}

impl Default for VideoSpec {
    fn default() -> Self {
        VideoSpec {
            duration_secs: 120.0,
            bitrate_bps: 1_000_000,
            fps: 30,
            profile: ContentProfile::paper_default(),
            content_seed: 2015, // the venue year; any fixed value works
        }
    }
}

impl VideoSpec {
    /// Encodes the video.
    pub fn build(&self) -> Video {
        let encoder = EncoderConfig {
            fps: self.fps,
            bitrate_bps: self.bitrate_bps,
            ..EncoderConfig::default()
        };
        Video::builder()
            .duration_secs(self.duration_secs)
            .profile(self.profile.clone())
            .encoder(encoder)
            .seed(self.content_seed)
            .build()
    }
}

/// One complete experiment: what video, how it is spliced, and what swarm
/// streams it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The test video.
    pub video: VideoSpec,
    /// The splicing strategy under test.
    pub splicing: SplicingSpec,
    /// The swarm and network configuration.
    pub swarm: SwarmConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            video: VideoSpec::default(),
            splicing: SplicingSpec::Duration(4.0),
            swarm: SwarmConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// The paper's baseline setup (Fig. 2 operating point with 4 s
    /// splicing).
    pub fn paper_baseline() -> Self {
        ExperimentConfig::default()
    }

    /// Sets both peer and seeder access bandwidth, bytes per second (the
    /// figures' x-axis variable).
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.swarm.peer_bandwidth_bytes_per_sec = bytes_per_sec;
        self.swarm.seeder_bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the splicing strategy.
    pub fn with_splicing(mut self, splicing: SplicingSpec) -> Self {
        self.splicing = splicing;
        self
    }

    /// Sets the download policy.
    pub fn with_policy(mut self, policy: splicecast_swarm::PolicyConfig) -> Self {
        self.swarm.policy = policy;
        self
    }

    /// Sets the number of leechers.
    pub fn with_leechers(mut self, n: usize) -> Self {
        self.swarm.n_leechers = n;
        self
    }

    /// Selects the network flow model: per-RTT rounds (default) or the
    /// event-driven fluid rate model for large swarms.
    pub fn with_flow_model(mut self, model: splicecast_netsim::FlowModel) -> Self {
        self.swarm.flow_model = model;
        self
    }

    /// Selects the swarm control plane: per-segment `Have` broadcasts with
    /// a fixed-rate pump (default), or coalesced `HaveBundle` dissemination
    /// with demand-driven pumps for large swarms.
    pub fn with_control_plane(mut self, plane: splicecast_swarm::ControlPlane) -> Self {
        self.swarm.control_plane = plane;
        self
    }

    /// Selects the download scheduler: the incremental holder index
    /// (default) or the reference full-rescan implementation.
    pub fn with_scheduler(mut self, scheduler: splicecast_swarm::SchedulerMode) -> Self {
        self.swarm.scheduler = scheduler;
        self
    }

    /// Selects the availability dissemination mode: full announcements to
    /// every subscriber (default) or frontier-keyed interest windows with
    /// deferred holder-index folding (requires the eventful control plane).
    pub fn with_dissemination(mut self, mode: splicecast_swarm::DisseminationMode) -> Self {
        self.swarm.dissemination = mode;
        self
    }

    /// The blessed big-swarm preset: every scalability optimisation at
    /// once — the fluid flow model, the eventful control plane, windowed
    /// interest dissemination, and the incremental holder index. This is
    /// what `--profile scale` selects on the CLI; individual knobs can
    /// still be overridden afterwards.
    pub fn with_scale_profile(self) -> Self {
        self.with_flow_model(splicecast_netsim::FlowModel::Fluid)
            .with_control_plane(splicecast_swarm::ControlPlane::Eventful)
            .with_dissemination(splicecast_swarm::DisseminationMode::Windowed)
            .with_scheduler(splicecast_swarm::SchedulerMode::Indexed)
    }

    /// Installs a deterministic fault-injection plan (crash-stop churn,
    /// control-message loss/delay, link flaps, CDN outages).
    pub fn with_faults(mut self, faults: splicecast_swarm::FaultPlanConfig) -> Self {
        self.swarm.faults = Some(faults);
        self
    }

    /// Enables the peer-side failure defenses (inactivity eviction,
    /// keepalives, source backoff, CDN fallback, watchdog).
    pub fn with_defense(mut self, defense: splicecast_swarm::DefenseConfig) -> Self {
        self.swarm.defense = Some(defense);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_video_matches_paper() {
        let v = VideoSpec::default().build();
        assert!((v.duration().as_secs_f64() - 120.0).abs() < 0.2);
        assert!((v.bitrate_bps() - 1e6).abs() < 2e4);
    }

    #[test]
    fn video_build_is_deterministic() {
        assert_eq!(VideoSpec::default().build(), VideoSpec::default().build());
    }

    #[test]
    fn builders_chain() {
        let cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(256_000.0)
            .with_splicing(SplicingSpec::Gop)
            .with_policy(splicecast_swarm::PolicyConfig::Fixed(2))
            .with_leechers(5)
            .with_control_plane(splicecast_swarm::ControlPlane::Eventful)
            .with_scheduler(splicecast_swarm::SchedulerMode::Scan)
            .with_dissemination(splicecast_swarm::DisseminationMode::Windowed);
        assert_eq!(cfg.swarm.peer_bandwidth_bytes_per_sec, 256_000.0);
        assert_eq!(cfg.swarm.seeder_bandwidth_bytes_per_sec, 256_000.0);
        assert_eq!(cfg.splicing, SplicingSpec::Gop);
        assert_eq!(cfg.swarm.n_leechers, 5);
        assert_eq!(
            cfg.swarm.control_plane,
            splicecast_swarm::ControlPlane::Eventful
        );
        assert_eq!(cfg.swarm.scheduler, splicecast_swarm::SchedulerMode::Scan);
        assert_eq!(
            cfg.swarm.dissemination,
            splicecast_swarm::DisseminationMode::Windowed
        );
    }

    #[test]
    fn config_serializes() {
        let cfg = ExperimentConfig::default();
        let json = serde_json_like(&cfg);
        assert!(json.contains("Duration"));
    }

    // serde_json is not a dependency; use the debug form as a stand-in for
    // "it derives Serialize without blowing up" (compile-time check) and
    // check Debug formatting here.
    fn serde_json_like(cfg: &ExperimentConfig) -> String {
        format!("{cfg:?}")
    }
}
