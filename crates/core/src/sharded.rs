//! Multi-channel sharded simulation.
//!
//! A live-streaming service runs many independent channel swarms at once —
//! same software, same tuning, different audiences. [`ShardedWorkload`]
//! models exactly that: C channels of the same [`ExperimentConfig`], each
//! with a per-channel seed derived as `base_seed ^ fnv1a(channel_id)`,
//! fanned across worker threads and merged into per-channel plus
//! cross-channel [`AveragedMetrics`].
//!
//! Determinism contract: like [`sweep_with_workers`], results are
//! bit-identical for any worker count ≥ 1 — each channel is an independent
//! deterministic simulation, workers only claim whole channels, and the
//! output slots preserve channel order.
//!
//! [`sweep_with_workers`]: crate::sweep_with_workers

use crate::config::ExperimentConfig;
use crate::experiment::AveragedMetrics;
use crate::runner::{PreparedExperiment, RunResult};

/// FNV-1a over `bytes` — the channel-id hash feeding seed derivation.
/// Stable across platforms and Rust versions (unlike `DefaultHasher`), so
/// sharded runs reproduce everywhere.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The seed channel `channel_id` runs with for `base_seed`: independent
/// channels must not replay each other's randomness, so each base seed is
/// XOR-folded with the channel id's hash.
pub fn channel_seed(base_seed: u64, channel_id: &str) -> u64 {
    base_seed ^ fnv1a(channel_id.as_bytes())
}

/// One channel's share of a sharded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelResult {
    /// The channel id the seeds were derived from.
    pub channel: String,
    /// This channel's averaged metrics over its seeded runs.
    pub averaged: AveragedMetrics,
}

/// Everything a sharded run produces: per-channel averages plus the
/// cross-channel aggregate (an [`AveragedMetrics`] folded over every run
/// of every channel, in channel order).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Per-channel results, in the order the channels were given.
    pub channels: Vec<ChannelResult>,
    /// All channels' runs folded together.
    pub aggregate: AveragedMetrics,
}

/// C independent channel swarms of one configuration, ready to fan out
/// over worker threads.
///
/// # Examples
///
/// ```no_run
/// use splicecast_core::{ExperimentConfig, ShardedWorkload};
///
/// let config = ExperimentConfig::paper_baseline().with_scale_profile();
/// let workload = ShardedWorkload::with_channel_count(&config, 8, &[101]);
/// let outcome = workload.run(4);
/// println!("{} stalls across 8 channels", outcome.aggregate.rounded_stalls);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedWorkload {
    prepared: PreparedExperiment,
    channels: Vec<String>,
    seeds: Vec<u64>,
}

impl ShardedWorkload {
    /// A workload over explicitly named channels. The media is encoded and
    /// spliced once here and shared by every channel's runs.
    ///
    /// # Panics
    ///
    /// Panics when `channels` or `seeds` is empty, or on an invalid
    /// configuration.
    pub fn new(config: &ExperimentConfig, channels: &[String], seeds: &[u64]) -> Self {
        assert!(!channels.is_empty(), "need at least one channel");
        assert!(!seeds.is_empty(), "need at least one seed");
        ShardedWorkload {
            prepared: PreparedExperiment::new(config),
            channels: channels.to_vec(),
            seeds: seeds.to_vec(),
        }
    }

    /// A workload over `count` generated channel ids (`ch0`, `ch1`, …).
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero or `seeds` is empty.
    pub fn with_channel_count(config: &ExperimentConfig, count: usize, seeds: &[u64]) -> Self {
        let channels: Vec<String> = (0..count).map(|i| format!("ch{i}")).collect();
        Self::new(config, &channels, seeds)
    }

    /// The channel ids this workload fans out over.
    pub fn channels(&self) -> &[String] {
        &self.channels
    }

    /// Runs every channel (each averaged over the derived per-channel
    /// seeds) across `workers` threads and merges the results. Bit-identical
    /// for any `workers` ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or any channel run panics (the
    /// channel's panic message is propagated).
    pub fn run(&self, workers: usize) -> ShardedOutcome {
        assert!(workers >= 1, "need at least one worker");

        let next = std::sync::atomic::AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let mut slots: Vec<Option<Vec<RunResult>>> = Vec::new();
        slots.resize_with(self.channels.len(), || None);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        let failure_msg = std::sync::Mutex::new(None::<String>);

        std::thread::scope(|scope| {
            for _ in 0..workers.min(self.channels.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= self.channels.len() || failed.load(std::sync::atomic::Ordering::Relaxed)
                    {
                        break;
                    }
                    let channel = &self.channels[i];
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.seeds
                            .iter()
                            .map(|&s| self.prepared.run(channel_seed(s, channel)))
                            .collect::<Vec<RunResult>>()
                    })) {
                        Ok(runs) => {
                            let mut guard = slots_mutex.lock().unwrap_or_else(|e| e.into_inner());
                            guard[i] = Some(runs);
                        }
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            *failure_msg.lock().unwrap_or_else(|e| e.into_inner()) =
                                Some(format!("channel '{channel}' panicked: {msg}"));
                            failed.store(true, std::sync::atomic::Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });

        if let Some(msg) = failure_msg.into_inner().unwrap_or_else(|e| e.into_inner()) {
            panic!("{msg}");
        }

        let per_channel: Vec<Vec<RunResult>> = slots
            .into_iter()
            .map(|s| s.expect("every channel filled"))
            .collect();
        let all_runs: Vec<RunResult> = per_channel.iter().flatten().cloned().collect();
        let channels = self
            .channels
            .iter()
            .zip(&per_channel)
            .map(|(channel, runs)| ChannelResult {
                channel: channel.clone(),
                averaged: AveragedMetrics::from_runs(runs),
            })
            .collect();
        ShardedOutcome {
            channels,
            aggregate: AveragedMetrics::from_runs(&all_runs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VideoSpec;
    use crate::experiment::run_averaged;

    fn quick_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline()
            .with_bandwidth(512_000.0)
            .with_leechers(3);
        cfg.video = VideoSpec {
            duration_secs: 12.0,
            ..VideoSpec::default()
        };
        cfg.swarm.max_sim_secs = 300.0;
        cfg
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn channel_seeds_differ_between_channels() {
        let base = 101;
        let a = channel_seed(base, "ch0");
        let b = channel_seed(base, "ch1");
        assert_ne!(a, b);
        // ... and re-derive identically.
        assert_eq!(a, channel_seed(base, "ch0"));
    }

    #[test]
    fn sharded_run_is_identical_across_worker_counts() {
        let workload = ShardedWorkload::with_channel_count(&quick_config(), 4, &[3]);
        let one = workload.run(1);
        let two = workload.run(2);
        let eight = workload.run(8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn channels_match_standalone_runs_on_derived_seeds() {
        let cfg = quick_config();
        let workload = ShardedWorkload::with_channel_count(&cfg, 2, &[3, 4]);
        let outcome = workload.run(2);
        assert_eq!(outcome.channels.len(), 2);
        for result in &outcome.channels {
            let derived: Vec<u64> = [3u64, 4]
                .iter()
                .map(|&s| channel_seed(s, &result.channel))
                .collect();
            let standalone = run_averaged(&cfg, &derived);
            assert_eq!(result.averaged, standalone, "channel {}", result.channel);
        }
        // The aggregate folds all channels' runs: 2 channels × 2 seeds.
        assert_eq!(outcome.aggregate.runs, 4);
    }

    #[test]
    fn sharded_propagates_channel_panics() {
        let mut bad = quick_config();
        bad.swarm.n_leechers = 0;
        let workload = ShardedWorkload::with_channel_count(&bad, 1, &[1]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| workload.run(2)));
        let payload = result.expect_err("sharded run should propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("channel 'ch0' panicked"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channels_panic() {
        let _ = ShardedWorkload::with_channel_count(&quick_config(), 0, &[1]);
    }
}
