//! See crate-level docs in the workspace README.
