//! Scenario tests for swarm behaviour paths that the figure experiments
//! only exercise indirectly.

use splicecast_media::{DurationSplicer, SegmentList, Splicer, Video};
use splicecast_swarm::{
    run_swarm, ChurnConfig, DiscoveryMode, EstimatorKind, PolicyConfig, SwarmConfig, WEstimate,
};

fn segments(secs: f64) -> SegmentList {
    let video = Video::builder().duration_secs(secs).seed(5).build();
    DurationSplicer::new(4.0).splice(&video)
}

fn config() -> SwarmConfig {
    SwarmConfig {
        n_leechers: 4,
        peer_bandwidth_bytes_per_sec: 400_000.0,
        seeder_bandwidth_bytes_per_sec: 400_000.0,
        end_to_end_loss: 0.02,
        max_sim_secs: 600.0,
        ..SwarmConfig::default()
    }
}

#[test]
fn starved_seeder_slots_still_serve_everyone() {
    // One upload slot at the seeder: every queued request must eventually
    // be served or re-routed to a replica.
    let config = SwarmConfig {
        seeder_upload_slots: 1,
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 3);
    assert_eq!(metrics.completion_rate(), 1.0);
}

#[test]
fn leechers_upload_while_watching() {
    let metrics = run_swarm(&segments(24.0), &config(), 9);
    let uploaders = metrics
        .reports
        .iter()
        .filter(|r| r.bytes_uploaded > 0)
        .count();
    assert!(
        uploaders >= 2,
        "P2P exchange implies leechers upload, got {uploaders}"
    );
    // Upload and download ledgers are mutually consistent: what leechers
    // and the seeder uploaded is what leechers downloaded.
    let downloaded: u64 = metrics.reports.iter().map(|r| r.bytes_downloaded).sum();
    let uploaded_by_peers: u64 = metrics.reports.iter().map(|r| r.bytes_uploaded).sum();
    assert!(uploaded_by_peers <= downloaded);
}

#[test]
fn ewma_estimator_mode_completes() {
    let config = SwarmConfig {
        estimator: EstimatorKind::Ewma { alpha: 0.3 },
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 4);
    assert_eq!(metrics.completion_rate(), 1.0);
}

#[test]
fn next_segment_w_estimate_mode_completes() {
    let config = SwarmConfig {
        w_estimate: WEstimate::NextSegment,
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 4);
    assert_eq!(metrics.completion_rate(), 1.0);
}

#[test]
fn w_estimates_differ_on_variable_segments() {
    // With GOP splicing the mean-W and next-W policies schedule
    // differently; both must still complete.
    let video = Video::builder().duration_secs(24.0).seed(5).build();
    let gop = splicecast_media::GopSplicer.splice(&video);
    let mean = run_swarm(&gop, &config(), 4);
    let next = run_swarm(
        &gop,
        &SwarmConfig {
            w_estimate: WEstimate::NextSegment,
            ..config()
        },
        4,
    );
    assert_eq!(mean.completion_rate(), 1.0);
    assert_eq!(next.completion_rate(), 1.0);
    assert_ne!(mean, next, "the W estimate changes scheduling");
}

#[test]
fn zero_resume_threshold_counts_more_stalls_than_large() {
    let segments = segments(40.0);
    let tight = SwarmConfig {
        peer_bandwidth_bytes_per_sec: 140_000.0,
        seeder_bandwidth_bytes_per_sec: 140_000.0,
        resume_buffer_secs: 0.0,
        ..config()
    };
    let relaxed = SwarmConfig {
        resume_buffer_secs: 4.0,
        ..tight.clone()
    };
    let a = run_swarm(&segments, &tight, 6);
    let b = run_swarm(&segments, &relaxed, 6);
    assert!(
        a.mean_stalls() >= b.mean_stalls(),
        "re-buffering threshold merges stalls: {} vs {}",
        a.mean_stalls(),
        b.mean_stalls()
    );
}

#[test]
fn tracker_discovery_with_churn_survives() {
    let config = SwarmConfig {
        discovery: DiscoveryMode::Tracker,
        churn: Some(ChurnConfig::new(0.5, 20.0)),
        n_leechers: 6,
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 12);
    for report in metrics.watching() {
        assert!(report.finished, "stayer {} must finish", report.peer);
    }
}

#[test]
fn competing_flows_degrade_but_do_not_break_streaming() {
    use splicecast_swarm::CrossTrafficConfig;
    let clean = run_swarm(&segments(24.0), &config(), 8);
    let loaded = run_swarm(
        &segments(24.0),
        &SwarmConfig {
            cross_traffic: Some(CrossTrafficConfig {
                flows_per_peer: 2,
                duration_secs: 120.0,
                ..CrossTrafficConfig::default()
            }),
            ..config()
        },
        8,
    );
    assert_eq!(
        loaded.completion_rate(),
        1.0,
        "the stream must survive congestion"
    );
    assert!(
        loaded.mean_stall_secs() > clean.mean_stall_secs(),
        "background load must cost stall time ({} vs {})",
        loaded.mean_stall_secs(),
        clean.mean_stall_secs()
    );
}

#[test]
fn hybrid_cdn_supplements_the_swarm() {
    let config = SwarmConfig {
        cdn: Some(splicecast_swarm::CdnConfig::default()),
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 5);
    assert_eq!(metrics.completion_rate(), 1.0);
    let from_cdn: usize = metrics.reports.iter().map(|r| r.segments_from_cdn).sum();
    let from_p2p: usize = metrics.reports.iter().map(|r| r.segments_from_peers).sum();
    assert!(
        from_cdn > 0,
        "the CDN should serve some segments in hybrid mode"
    );
    assert!(from_p2p > 0, "peers should still exchange in hybrid mode");
}

#[test]
fn fixed_pool_one_is_strictly_sequential() {
    // Pool-1 never holds more than one segment in flight, so per-peer
    // delivery order is exactly sequential: the completion times (proxied
    // by stall structure) must still produce a full video.
    let config = SwarmConfig {
        policy: PolicyConfig::Fixed(1),
        ..config()
    };
    let metrics = run_swarm(&segments(24.0), &config, 2);
    assert_eq!(metrics.completion_rate(), 1.0);
}

#[test]
fn swarm_scales_down_to_two_and_up_to_thirty_leechers() {
    for n in [2usize, 30] {
        let config = SwarmConfig {
            n_leechers: n,
            ..config()
        };
        let metrics = run_swarm(&segments(16.0), &config, 1);
        assert_eq!(metrics.reports.len(), n);
        assert_eq!(metrics.completion_rate(), 1.0, "n = {n}");
    }
}

#[test]
fn network_counters_track_swarm_size() {
    let small = run_swarm(
        &segments(16.0),
        &SwarmConfig {
            n_leechers: 2,
            ..config()
        },
        1,
    );
    let large = run_swarm(
        &segments(16.0),
        &SwarmConfig {
            n_leechers: 8,
            ..config()
        },
        1,
    );
    assert!(large.net.payload_bytes_delivered > small.net.payload_bytes_delivered);
    assert!(large.net.messages_sent > small.net.messages_sent);
    assert!(large.wire_expansion() >= 1.0);
}
