//! Per-peer bookkeeping shared by seeders and leechers.

use std::collections::VecDeque;

use splicecast_netsim::NodeId;
use splicecast_protocol::Bitfield;

/// What this node knows about one remote peer.
///
/// Swarms keep one view per (node, peer) pair — O(peers²) instances — so
/// the struct is packed for the 10k-peer regime: the four lifecycle
/// booleans share a single flags byte behind accessor methods, the
/// defense-only liveness clocks live in a side table the leecher
/// allocates only when defenses are on (see `PeerClock`), and the field
/// order leaves no interior padding. 40 bytes, down from the 64-byte
/// pre-diet layout.
#[derive(Debug, Clone)]
pub struct PeerView {
    /// Last availability map the peer sent, updated by `Have`s.
    pub holdings: Bitfield,
    /// First segment of the peer's announced interest window (windowed
    /// dissemination). Defaults to 0 — the whole stream — so full-mode
    /// peers and peers that never announce a window hear everything.
    pub win_lo: u32,
    /// One past the last segment of the peer's announced interest window.
    /// Defaults to `segment_count`.
    pub win_hi: u32,
    /// Requests we have sent them that have not completed or failed.
    pub outstanding: u32,
    /// The packed lifecycle booleans; see the `FLAG_*` constants.
    flags: u8,
}

/// Bytes one peer view cost in the pre-diet layout: a 64-byte struct
/// (32-byte `Vec`-backed bitfield, four one-byte bools, two inline 8-byte
/// defense clocks, padding). The fixed reference for the memory-diet
/// accounting — shared by the probe, its test, and the complete-peer
/// model so the baseline cannot silently drift.
pub const PRE_DIET_VIEW_BYTES: usize = 64;

/// We have sent them our handshake.
const FLAG_GREETED: u8 = 1 << 0;
/// They have sent us their handshake.
const FLAG_HANDSHAKEN: u8 = 1 << 1;
/// We have told them we are interested.
const FLAG_INTERESTED_SENT: u8 = 1 << 2;
/// The peer wants our availability announcements. Set by default; a
/// `NotInterested` from them (the eventful control plane's unsubscribe)
/// clears it, an `Interested` restores it.
const FLAG_PEER_INTERESTED: u8 = 1 << 3;

impl PeerView {
    /// A fresh view with nothing known.
    pub fn new(segment_count: u32) -> Self {
        PeerView {
            holdings: Bitfield::new(segment_count),
            win_lo: 0,
            win_hi: segment_count,
            outstanding: 0,
            flags: FLAG_PEER_INTERESTED,
        }
    }

    #[inline]
    fn flag(&self, mask: u8) -> bool {
        self.flags & mask != 0
    }

    #[inline]
    fn set_flag(&mut self, mask: u8, value: bool) {
        if value {
            self.flags |= mask;
        } else {
            self.flags &= !mask;
        }
    }

    /// Whether we have sent them our handshake.
    #[inline]
    pub fn greeted(&self) -> bool {
        self.flag(FLAG_GREETED)
    }

    /// Records whether we have sent them our handshake.
    #[inline]
    pub fn set_greeted(&mut self, value: bool) {
        self.set_flag(FLAG_GREETED, value);
    }

    /// Whether they have sent us their handshake.
    #[inline]
    pub fn handshaken(&self) -> bool {
        self.flag(FLAG_HANDSHAKEN)
    }

    /// Records whether they have sent us their handshake.
    #[inline]
    pub fn set_handshaken(&mut self, value: bool) {
        self.set_flag(FLAG_HANDSHAKEN, value);
    }

    /// Whether we have told them we are interested.
    #[inline]
    pub fn interested_sent(&self) -> bool {
        self.flag(FLAG_INTERESTED_SENT)
    }

    /// Records whether we have told them we are interested.
    #[inline]
    pub fn set_interested_sent(&mut self, value: bool) {
        self.set_flag(FLAG_INTERESTED_SENT, value);
    }

    /// Whether the peer wants our availability announcements.
    #[inline]
    pub fn peer_interested(&self) -> bool {
        self.flag(FLAG_PEER_INTERESTED)
    }

    /// Records whether the peer wants our availability announcements.
    #[inline]
    pub fn set_peer_interested(&mut self, value: bool) {
        self.set_flag(FLAG_PEER_INTERESTED, value);
    }

    /// Bytes this view costs: the struct itself plus the holdings
    /// bitfield's heap. Excludes the map overhead of whatever container
    /// holds the view (the pre-diet model excludes it identically).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.holdings.heap_bytes()
    }

    /// Bytes the same view cost in the pre-diet layout
    /// ([`PRE_DIET_VIEW_BYTES`]) plus the same eagerly allocated holdings
    /// heap. Kept as the fixed reference for the memory-diet accounting
    /// so the saving is measurable against real state.
    pub fn prediet_mem_bytes(&self) -> usize {
        PRE_DIET_VIEW_BYTES + self.holdings.heap_bytes()
    }

    /// Collapses this view into a compact [`CompleteView`] record. The
    /// holdings bitfield is dropped — a complete peer's holdings are, by
    /// definition, the shared interned full field.
    pub fn summarize_complete(&self) -> CompleteView {
        CompleteView {
            win_lo: self.win_lo,
            win_hi: self.win_hi,
            outstanding: self.outstanding,
            flags: self.flags,
        }
    }
}

/// Compact record of a peer whose holdings are known to be complete.
///
/// Late in a run nearly every neighbour is complete, so the per-pair
/// state for them collapses from a 40-byte [`PeerView`] plus a boxed
/// bitfield to these 13 payload bytes: the holdings are implicit (the
/// shared interned full `Bitfield`), and the peer's per-segment holder
/// index entries are purged — it is folded back in at pick time as an
/// implicit holder of everything.
#[derive(Debug, Clone, Copy)]
pub struct CompleteView {
    /// The peer's announced interest window (kept so a stale non-full
    /// `Bitfield` can demote back to a [`PeerView`] with the window
    /// intact, and window monotonicity checks stay identical).
    pub win_lo: u32,
    /// One past the last segment of the peer's announced window.
    pub win_hi: u32,
    /// Requests we have sent them that have not completed or failed —
    /// complete peers are exactly the ones still serving us.
    pub outstanding: u32,
    /// The packed lifecycle booleans, carried over from the view.
    flags: u8,
}

impl CompleteView {
    /// Rebuilds a full [`PeerView`] around `holdings` (demotion: a stale,
    /// less-complete `Bitfield` arrived after the peer was summarized).
    pub fn expand(&self, holdings: Bitfield) -> PeerView {
        PeerView {
            holdings,
            win_lo: self.win_lo,
            win_hi: self.win_hi,
            outstanding: self.outstanding,
            flags: self.flags,
        }
    }

    /// Whether we have sent them our handshake.
    #[inline]
    pub fn greeted(&self) -> bool {
        self.flags & FLAG_GREETED != 0
    }

    /// Records whether we have sent them our handshake.
    #[inline]
    pub fn set_greeted(&mut self, value: bool) {
        if value {
            self.flags |= FLAG_GREETED;
        } else {
            self.flags &= !FLAG_GREETED;
        }
    }

    /// Whether they have sent us their handshake (always true in
    /// practice: only handshaken views are summarized).
    #[inline]
    pub fn handshaken(&self) -> bool {
        self.flags & FLAG_HANDSHAKEN != 0
    }

    /// Whether we have told them we are interested.
    #[inline]
    pub fn interested_sent(&self) -> bool {
        self.flags & FLAG_INTERESTED_SENT != 0
    }

    /// Records whether we have told them we are interested.
    #[inline]
    pub fn set_interested_sent(&mut self, value: bool) {
        if value {
            self.flags |= FLAG_INTERESTED_SENT;
        } else {
            self.flags &= !FLAG_INTERESTED_SENT;
        }
    }

    /// Whether the peer wants our availability announcements.
    #[inline]
    pub fn peer_interested(&self) -> bool {
        self.flags & FLAG_PEER_INTERESTED != 0
    }

    /// Records whether the peer wants our availability announcements.
    #[inline]
    pub fn set_peer_interested(&mut self, value: bool) {
        if value {
            self.flags |= FLAG_PEER_INTERESTED;
        } else {
            self.flags &= !FLAG_PEER_INTERESTED;
        }
    }

    /// Bytes this record costs (the struct itself; the holdings are the
    /// shared interned field, amortized across every complete peer).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// A read-only look at one peer, whichever store it lives in: a borrowed
/// [`PeerView`], or a [`CompleteView`] presented with the shared full
/// bitfield as its holdings. Broadcast filters and defense sweeps take
/// this, so their logic is written once and computes identically for
/// both representations.
#[derive(Clone, Copy)]
pub struct PeerLook<'a> {
    /// The peer's holdings (the interned full field for complete peers).
    pub holdings: &'a Bitfield,
    /// First segment of the peer's announced interest window.
    pub win_lo: u32,
    /// One past the last segment of the peer's announced window.
    pub win_hi: u32,
    /// Requests we have sent them that have not completed or failed.
    pub outstanding: u32,
    flags: u8,
}

impl<'a> PeerLook<'a> {
    /// Looks at a regular view.
    pub fn view(view: &'a PeerView) -> Self {
        PeerLook {
            holdings: &view.holdings,
            win_lo: view.win_lo,
            win_hi: view.win_hi,
            outstanding: view.outstanding,
            flags: view.flags,
        }
    }

    /// Looks at a complete-peer record; `full` is the node's shared
    /// all-set bitfield.
    pub fn complete(record: &CompleteView, full: &'a Bitfield) -> Self {
        PeerLook {
            holdings: full,
            win_lo: record.win_lo,
            win_hi: record.win_hi,
            outstanding: record.outstanding,
            flags: record.flags,
        }
    }

    /// Whether we have sent them our handshake.
    #[cfg(test)]
    #[inline]
    pub fn greeted(&self) -> bool {
        self.flags & FLAG_GREETED != 0
    }

    /// Whether they have sent us their handshake.
    #[inline]
    pub fn handshaken(&self) -> bool {
        self.flags & FLAG_HANDSHAKEN != 0
    }

    /// Whether we have told them we are interested.
    #[cfg(test)]
    #[inline]
    pub fn interested_sent(&self) -> bool {
        self.flags & FLAG_INTERESTED_SENT != 0
    }

    /// Whether the peer wants our availability announcements.
    #[inline]
    pub fn peer_interested(&self) -> bool {
        self.flags & FLAG_PEER_INTERESTED != 0
    }
}

/// Defense-only liveness clocks for one peer. Pre-diet these sat inline
/// in every [`PeerView`] (16 bytes each) even though they are only read
/// when `--defend` is on; the leecher now keeps them in a side map that
/// stays empty otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeerClock {
    /// When we last received anything from this peer (the inactivity
    /// detector's input).
    pub last_heard: splicecast_netsim::SimTime,
    /// When we last sent this peer anything (drives the keepalive
    /// cadence).
    pub last_spoke: splicecast_netsim::SimTime,
}

/// An accepted upload: who asked for which segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadRequest {
    /// The requesting peer.
    pub peer: NodeId,
    /// The requested segment.
    pub segment: u32,
}

/// Manages a node's upload side: a bounded number of concurrent uploads
/// plus a FIFO queue of waiting requests, like the per-peer service slots
/// of a BitTorrent client.
#[derive(Debug)]
pub struct UploadManager {
    max_active: usize,
    active: usize,
    queue: VecDeque<UploadRequest>,
}

impl UploadManager {
    /// Creates a manager with the given concurrency limit.
    ///
    /// # Panics
    ///
    /// Panics when `max_active` is zero.
    pub fn new(max_active: usize) -> Self {
        assert!(max_active > 0, "upload slots must be positive");
        UploadManager {
            max_active,
            active: 0,
            queue: VecDeque::new(),
        }
    }

    /// Number of uploads currently running.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Number of requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Offers a request. Returns `true` when it can start right away (a
    /// slot was claimed and `can_serve` allowed it); otherwise it is
    /// queued. `can_serve` lets the caller veto requests that must wait
    /// even though a slot is free — e.g. super-seeding style deduplication
    /// (don't push the same segment to two peers at once).
    pub fn offer<F>(&mut self, request: UploadRequest, mut can_serve: F) -> bool
    where
        F: FnMut(&UploadRequest) -> bool,
    {
        if self.active < self.max_active && can_serve(&request) {
            self.active += 1;
            true
        } else {
            self.queue.push_back(request);
            false
        }
    }

    /// Releases a slot after an upload ends (complete or failed) and pops
    /// the first queued request `can_serve` allows, which immediately
    /// occupies the slot. Skipped requests keep their queue order.
    ///
    /// # Panics
    ///
    /// Panics when no upload is active.
    pub fn release<F>(&mut self, can_serve: F) -> Option<UploadRequest>
    where
        F: FnMut(&UploadRequest) -> bool,
    {
        self.release_preferring(can_serve, |_| false)
    }

    /// Like [`UploadManager::release`], but with a two-level preference:
    /// the first queued request matching `primary` wins; if none matches,
    /// the first matching `fallback` is taken instead.
    ///
    /// # Panics
    ///
    /// Panics when no upload is active.
    pub fn release_preferring<F, G>(&mut self, primary: F, fallback: G) -> Option<UploadRequest>
    where
        F: FnMut(&UploadRequest) -> bool,
        G: FnMut(&UploadRequest) -> bool,
    {
        assert!(self.active > 0, "release without an active upload");
        self.active -= 1;
        let idx = self
            .queue
            .iter()
            .position(primary)
            .or_else(|| self.queue.iter().position(fallback))?;
        let next = self.queue.remove(idx).expect("index in range");
        self.active += 1;
        Some(next)
    }

    /// A copy of the queued requests, in order (for load-aware policies).
    pub fn queue_snapshot(&self) -> Vec<UploadRequest> {
        self.queue.iter().copied().collect()
    }

    /// Drops queued requests matching the predicate (used for `Cancel` and
    /// for peers that went offline).
    pub fn drop_queued<F: FnMut(&UploadRequest) -> bool>(&mut self, mut drop_if: F) {
        self.queue.retain(|r| !drop_if(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(peer: usize, seg: u32) -> UploadRequest {
        UploadRequest {
            peer: NodeId::from_index(peer),
            segment: seg,
        }
    }

    fn any(_: &UploadRequest) -> bool {
        true
    }

    #[test]
    fn slots_then_queue() {
        let mut m = UploadManager::new(2);
        assert!(m.offer(req(1, 0), any));
        assert!(m.offer(req(2, 1), any));
        assert!(!m.offer(req(3, 2), any));
        assert_eq!(m.active(), 2);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_pops_fifo() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        assert!(!m.offer(req(2, 1), any));
        assert!(!m.offer(req(3, 2), any));
        assert_eq!(m.release(any), Some(req(2, 1)));
        assert_eq!(m.active(), 1, "popped request re-occupies the slot");
        assert_eq!(m.release(any), Some(req(3, 2)));
        assert_eq!(m.release(any), None);
        assert_eq!(m.active(), 0);
    }

    #[test]
    fn offer_veto_queues_despite_free_slot() {
        let mut m = UploadManager::new(4);
        assert!(!m.offer(req(1, 7), |_| false));
        assert_eq!(m.active(), 0);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_skips_vetoed_requests_in_order() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        m.offer(req(2, 5), any);
        m.offer(req(3, 6), any);
        // Veto segment 5: release should pop segment 6 and keep 5 queued.
        assert_eq!(m.release(|r| r.segment != 5), Some(req(3, 6)));
        assert_eq!(m.queued(), 1);
        assert_eq!(m.release(any), Some(req(2, 5)));
    }

    #[test]
    fn release_with_all_vetoed_frees_the_slot() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        m.offer(req(2, 5), any);
        assert_eq!(m.release(|_| false), None);
        assert_eq!(m.active(), 0);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn drop_queued_filters() {
        let mut m = UploadManager::new(1);
        m.offer(req(1, 0), any);
        m.offer(req(2, 1), any);
        m.offer(req(2, 2), any);
        m.offer(req(3, 3), any);
        m.drop_queued(|r| r.peer == NodeId::from_index(2));
        assert_eq!(m.queued(), 1);
        assert_eq!(m.release(any), Some(req(3, 3)));
    }

    #[test]
    #[should_panic(expected = "release without an active upload")]
    fn release_when_idle_panics() {
        UploadManager::new(1).release(any);
    }

    #[test]
    fn peer_view_defaults() {
        let v = PeerView::new(10);
        assert!(!v.greeted());
        assert!(!v.handshaken());
        assert!(!v.interested_sent());
        assert!(
            v.peer_interested(),
            "peers are subscribed until they opt out"
        );
        assert_eq!((v.win_lo, v.win_hi), (0, 10), "default window spans all");
        assert_eq!(v.outstanding, 0);
        assert_eq!(v.holdings.count_ones(), 0);
    }

    #[test]
    fn peer_view_flags_are_independent() {
        let mut v = PeerView::new(4);
        v.set_greeted(true);
        v.set_handshaken(true);
        v.set_interested_sent(true);
        v.set_peer_interested(false);
        assert!(v.greeted() && v.handshaken() && v.interested_sent());
        assert!(!v.peer_interested());
        v.set_handshaken(false);
        assert!(!v.handshaken());
        assert!(
            v.greeted() && v.interested_sent(),
            "clearing one flag must not disturb the others"
        );
    }

    /// The memory diet's whole point: the packed struct must stay at 40
    /// bytes (24-byte boxed-slice bitfield + window pair + outstanding +
    /// flags byte + padding), 37% under the 64-byte pre-diet layout.
    #[test]
    fn peer_view_is_packed() {
        assert_eq!(std::mem::size_of::<PeerView>(), 40);
        let v = PeerView::new(80);
        assert_eq!(v.mem_bytes(), 40 + 10, "struct plus 80 bits of heap");
        assert_eq!(v.prediet_mem_bytes(), PRE_DIET_VIEW_BYTES + 10);
    }

    /// The complete-peer record must stay within one 16-byte line —
    /// that's the whole point of summarizing — and round-trip the
    /// lifecycle flags, window, and outstanding count through
    /// summarize/expand unchanged.
    #[test]
    fn complete_view_is_compact_and_round_trips() {
        assert_eq!(std::mem::size_of::<CompleteView>(), 16);
        let mut v = PeerView::new(12);
        v.holdings = Bitfield::full(12);
        v.win_lo = 3;
        v.win_hi = 9;
        v.outstanding = 2;
        v.set_greeted(true);
        v.set_handshaken(true);
        v.set_interested_sent(true);
        v.set_peer_interested(false);

        let record = v.summarize_complete();
        assert_eq!(record.mem_bytes(), 16);
        assert!(record.greeted() && record.handshaken() && record.interested_sent());
        assert!(!record.peer_interested());
        assert_eq!((record.win_lo, record.win_hi), (3, 9));
        assert_eq!(record.outstanding, 2);

        // Demotion path: a stale bitfield expands back to a view with
        // every non-holdings field intact.
        let mut stale = Bitfield::full(12);
        stale.clear(7);
        let back = record.expand(stale.clone());
        assert_eq!(back.holdings, stale);
        assert_eq!((back.win_lo, back.win_hi), (3, 9));
        assert_eq!(back.outstanding, 2);
        assert!(back.greeted() && back.handshaken() && back.interested_sent());
        assert!(!back.peer_interested());
    }

    /// `PeerLook` must present identical fields whichever store the peer
    /// lives in.
    #[test]
    fn peer_look_is_uniform_across_representations() {
        let mut v = PeerView::new(8);
        v.holdings = Bitfield::full(8);
        v.win_lo = 1;
        v.win_hi = 6;
        v.outstanding = 3;
        v.set_greeted(true);
        v.set_handshaken(true);

        let full = Bitfield::full(8);
        let as_view = PeerLook::view(&v);
        let record = v.summarize_complete();
        let as_complete = PeerLook::complete(&record, &full);
        for look in [as_view, as_complete] {
            assert_eq!(look.holdings, &full);
            assert_eq!((look.win_lo, look.win_hi), (1, 6));
            assert_eq!(look.outstanding, 3);
            assert!(look.greeted() && look.handshaken());
            assert!(!look.interested_sent() && look.peer_interested());
        }
    }
}
