//! Per-peer bookkeeping shared by seeders and leechers.

use std::collections::VecDeque;

use splicecast_netsim::NodeId;
use splicecast_protocol::Bitfield;

/// What this node knows about one remote peer.
#[derive(Debug, Clone)]
pub struct PeerView {
    /// Last availability map the peer sent, updated by `Have`s.
    pub holdings: Bitfield,
    /// Whether we have sent them our handshake.
    pub greeted: bool,
    /// Whether they have sent us their handshake.
    pub handshaken: bool,
    /// Whether we have told them we are interested.
    pub interested_sent: bool,
    /// Whether the peer wants our availability announcements. Peers are
    /// subscribed by default; a `NotInterested` from them (the eventful
    /// control plane's unsubscribe) clears it, an `Interested` restores it.
    pub peer_interested: bool,
    /// First segment of the peer's announced interest window (windowed
    /// dissemination). Defaults to 0 — the whole stream — so full-mode
    /// peers and peers that never announce a window hear everything.
    pub win_lo: u32,
    /// One past the last segment of the peer's announced interest window.
    /// Defaults to `segment_count`.
    pub win_hi: u32,
    /// Requests we have sent them that have not completed or failed.
    pub outstanding: u32,
    /// When we last received anything from this peer. Only maintained when
    /// failure defenses are enabled (the inactivity detector's input);
    /// stays at zero otherwise.
    pub last_heard: splicecast_netsim::SimTime,
    /// When we last sent this peer anything. Only maintained when failure
    /// defenses are enabled (drives the keepalive cadence).
    pub last_spoke: splicecast_netsim::SimTime,
}

impl PeerView {
    /// A fresh view with nothing known.
    pub fn new(segment_count: u32) -> Self {
        PeerView {
            holdings: Bitfield::new(segment_count),
            greeted: false,
            handshaken: false,
            interested_sent: false,
            peer_interested: true,
            win_lo: 0,
            win_hi: segment_count,
            outstanding: 0,
            last_heard: splicecast_netsim::SimTime::ZERO,
            last_spoke: splicecast_netsim::SimTime::ZERO,
        }
    }
}

/// An accepted upload: who asked for which segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadRequest {
    /// The requesting peer.
    pub peer: NodeId,
    /// The requested segment.
    pub segment: u32,
}

/// Manages a node's upload side: a bounded number of concurrent uploads
/// plus a FIFO queue of waiting requests, like the per-peer service slots
/// of a BitTorrent client.
#[derive(Debug)]
pub struct UploadManager {
    max_active: usize,
    active: usize,
    queue: VecDeque<UploadRequest>,
}

impl UploadManager {
    /// Creates a manager with the given concurrency limit.
    ///
    /// # Panics
    ///
    /// Panics when `max_active` is zero.
    pub fn new(max_active: usize) -> Self {
        assert!(max_active > 0, "upload slots must be positive");
        UploadManager {
            max_active,
            active: 0,
            queue: VecDeque::new(),
        }
    }

    /// Number of uploads currently running.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Number of requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Offers a request. Returns `true` when it can start right away (a
    /// slot was claimed and `can_serve` allowed it); otherwise it is
    /// queued. `can_serve` lets the caller veto requests that must wait
    /// even though a slot is free — e.g. super-seeding style deduplication
    /// (don't push the same segment to two peers at once).
    pub fn offer<F>(&mut self, request: UploadRequest, mut can_serve: F) -> bool
    where
        F: FnMut(&UploadRequest) -> bool,
    {
        if self.active < self.max_active && can_serve(&request) {
            self.active += 1;
            true
        } else {
            self.queue.push_back(request);
            false
        }
    }

    /// Releases a slot after an upload ends (complete or failed) and pops
    /// the first queued request `can_serve` allows, which immediately
    /// occupies the slot. Skipped requests keep their queue order.
    ///
    /// # Panics
    ///
    /// Panics when no upload is active.
    pub fn release<F>(&mut self, can_serve: F) -> Option<UploadRequest>
    where
        F: FnMut(&UploadRequest) -> bool,
    {
        self.release_preferring(can_serve, |_| false)
    }

    /// Like [`UploadManager::release`], but with a two-level preference:
    /// the first queued request matching `primary` wins; if none matches,
    /// the first matching `fallback` is taken instead.
    ///
    /// # Panics
    ///
    /// Panics when no upload is active.
    pub fn release_preferring<F, G>(&mut self, primary: F, fallback: G) -> Option<UploadRequest>
    where
        F: FnMut(&UploadRequest) -> bool,
        G: FnMut(&UploadRequest) -> bool,
    {
        assert!(self.active > 0, "release without an active upload");
        self.active -= 1;
        let idx = self
            .queue
            .iter()
            .position(primary)
            .or_else(|| self.queue.iter().position(fallback))?;
        let next = self.queue.remove(idx).expect("index in range");
        self.active += 1;
        Some(next)
    }

    /// A copy of the queued requests, in order (for load-aware policies).
    pub fn queue_snapshot(&self) -> Vec<UploadRequest> {
        self.queue.iter().copied().collect()
    }

    /// Drops queued requests matching the predicate (used for `Cancel` and
    /// for peers that went offline).
    pub fn drop_queued<F: FnMut(&UploadRequest) -> bool>(&mut self, mut drop_if: F) {
        self.queue.retain(|r| !drop_if(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(peer: usize, seg: u32) -> UploadRequest {
        UploadRequest {
            peer: NodeId::from_index(peer),
            segment: seg,
        }
    }

    fn any(_: &UploadRequest) -> bool {
        true
    }

    #[test]
    fn slots_then_queue() {
        let mut m = UploadManager::new(2);
        assert!(m.offer(req(1, 0), any));
        assert!(m.offer(req(2, 1), any));
        assert!(!m.offer(req(3, 2), any));
        assert_eq!(m.active(), 2);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_pops_fifo() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        assert!(!m.offer(req(2, 1), any));
        assert!(!m.offer(req(3, 2), any));
        assert_eq!(m.release(any), Some(req(2, 1)));
        assert_eq!(m.active(), 1, "popped request re-occupies the slot");
        assert_eq!(m.release(any), Some(req(3, 2)));
        assert_eq!(m.release(any), None);
        assert_eq!(m.active(), 0);
    }

    #[test]
    fn offer_veto_queues_despite_free_slot() {
        let mut m = UploadManager::new(4);
        assert!(!m.offer(req(1, 7), |_| false));
        assert_eq!(m.active(), 0);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn release_skips_vetoed_requests_in_order() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        m.offer(req(2, 5), any);
        m.offer(req(3, 6), any);
        // Veto segment 5: release should pop segment 6 and keep 5 queued.
        assert_eq!(m.release(|r| r.segment != 5), Some(req(3, 6)));
        assert_eq!(m.queued(), 1);
        assert_eq!(m.release(any), Some(req(2, 5)));
    }

    #[test]
    fn release_with_all_vetoed_frees_the_slot() {
        let mut m = UploadManager::new(1);
        assert!(m.offer(req(1, 0), any));
        m.offer(req(2, 5), any);
        assert_eq!(m.release(|_| false), None);
        assert_eq!(m.active(), 0);
        assert_eq!(m.queued(), 1);
    }

    #[test]
    fn drop_queued_filters() {
        let mut m = UploadManager::new(1);
        m.offer(req(1, 0), any);
        m.offer(req(2, 1), any);
        m.offer(req(2, 2), any);
        m.offer(req(3, 3), any);
        m.drop_queued(|r| r.peer == NodeId::from_index(2));
        assert_eq!(m.queued(), 1);
        assert_eq!(m.release(any), Some(req(3, 3)));
    }

    #[test]
    #[should_panic(expected = "release without an active upload")]
    fn release_when_idle_panics() {
        UploadManager::new(1).release(any);
    }

    #[test]
    fn peer_view_defaults() {
        let v = PeerView::new(10);
        assert!(!v.handshaken);
        assert!(!v.interested_sent);
        assert!(v.peer_interested, "peers are subscribed until they opt out");
        assert_eq!((v.win_lo, v.win_hi), (0, 10), "default window spans all");
        assert_eq!(v.outstanding, 0);
        assert_eq!(v.holdings.count_ones(), 0);
    }
}
