//! The leecher: joins the swarm, downloads segments under a pooling
//! policy, plays the video, and serves other peers.

use std::collections::BTreeMap;
use std::sync::Arc;

use splicecast_media::{Manifest, SegmentList};
use splicecast_netsim::{Ctx, NodeBehavior, NodeEvent, NodeId, SimDuration, SimTime};
use splicecast_player::{Playback, PlaybackState};
use splicecast_protocol::{decode_single, Bitfield, EncodeBuf, Message, PROTOCOL_VERSION};

use crate::fault::DefenseConfig;
use crate::metrics::{MetricsSink, PeerMemStats, PeerReport};
use crate::peer::{CompleteView, PeerClock, PeerLook, PeerView, PRE_DIET_VIEW_BYTES};
use crate::policy::{BandwidthEstimator, DownloadPolicy, PolicyInput};
use crate::scheduler::{next_wanted_from, pick_source, HolderIndex, SourceCandidate};
use crate::swarm::{ControlPlane, DisseminationMode, SchedulerMode};
use crate::upload::UploadSide;

const TOKEN_BOOT: u64 = 1;
const TOKEN_PUMP: u64 = 2;
const TOKEN_DEPART: u64 = 3;
const TOKEN_CRASH: u64 = 4;

/// Fallback-heartbeat cadence of the eventful control plane, in pump
/// intervals: with nothing armed, a pump still fires this often to keep
/// playback accounting alive and catch sources that vanished silently.
const HEARTBEAT_PUMPS: f64 = 8.0;

/// Tracker re-announce cadence, in pump intervals. The legacy pump
/// re-announces every 10th fire; the eventful plane schedules the same
/// cadence on absolute time so it is independent of pump activity.
const ANNOUNCE_PUMPS: f64 = 10.0;

/// Width of the announced interest window, in segments (windowed
/// dissemination). Availability is only wanted for `[frontier, frontier +
/// INTEREST_WINDOW_SEGS)`, and the scheduler never requests beyond that
/// edge, so announcing — and indexing — anything further is pure waste.
const INTEREST_WINDOW_SEGS: u32 = 64;

/// How far the frontier must advance past the last broadcast window start
/// before a fresh `InterestWindow` goes out. The hysteresis bounds the
/// announcement rate at one broadcast per δ segments of progress instead
/// of one per delivery; the checks ride the existing pump/delivery paths.
const WINDOW_ADVANCE_SEGS: u32 = INTEREST_WINDOW_SEGS / 4;

/// Everything a leecher needs to operate.
pub struct LeecherConfig {
    /// Leecher index (for reports), 0-based.
    pub index: usize,
    /// The seeder's node id.
    pub seeder: NodeId,
    /// The CDN node, in hybrid mode.
    pub cdn: Option<NodeId>,
    /// The other leechers.
    pub others: Vec<NodeId>,
    /// The splice being streamed, shared across the whole swarm (segment
    /// metadata is immutable, so every node holds the same `Arc`).
    pub segments: Arc<SegmentList>,
    /// Pool-size policy (§III).
    pub policy: Box<dyn DownloadPolicy>,
    /// Bandwidth estimator feeding the policy's `B`.
    pub estimator: BandwidthEstimator,
    /// Concurrent uploads served to other peers.
    pub upload_slots: usize,
    /// Delay before this peer joins the swarm.
    pub join_delay: SimDuration,
    /// If set, the peer departs this long after joining (churn).
    pub depart_after: Option<SimDuration>,
    /// If set, the peer crash-stops this long after joining: it goes
    /// offline without a `Goodbye`, leaving the swarm to detect the
    /// silence (fault injection).
    pub crash_after: Option<SimDuration>,
    /// Failure defenses (inactivity eviction, keepalives, source backoff,
    /// CDN fallback, watchdog). `None` disables them all and keeps the
    /// leecher byte-identical to the pre-defense behaviour.
    pub defense: Option<DefenseConfig>,
    /// Cadence of the maintenance timer.
    pub pump_interval: SimDuration,
    /// How long a request may sit unserved before re-requesting.
    pub request_timeout: SimDuration,
    /// Media that must be buffered before resuming from a stall, seconds.
    pub resume_buffer_secs: f64,
    /// How the policy's `W` is estimated.
    pub w_estimate: crate::policy::WEstimate,
    /// When false, segments are fetched from the CDN only (§IV's
    /// CDN-served scenario); peer-to-peer exchange is disabled.
    pub p2p: bool,
    /// How this leecher learns about other peers.
    pub discovery: crate::swarm::DiscoveryMode,
    /// Which control plane disseminates availability and schedules pumps.
    pub control_plane: ControlPlane,
    /// How upload sources are found (full rescan vs. incremental index).
    pub scheduler: SchedulerMode,
    /// How availability is disseminated: full flooding, or frontier-keyed
    /// interest windows with deferred receiver-side indexing.
    pub dissemination: DisseminationMode,
    /// How long completions may wait before a coalesced `HaveBundle`
    /// flush (eventful mode only).
    pub coalesce_window: SimDuration,
    /// Pins every holder set to the sparse representation (differential-
    /// testing knob; the hybrid default must be bit-identical).
    pub sparse_holders: bool,
    /// Where the final [`PeerReport`] is written.
    pub sink: MetricsSink,
}

impl std::fmt::Debug for LeecherConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeecherConfig")
            .field("index", &self.index)
            .field("policy", &self.policy)
            .field("p2p", &self.p2p)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    source: NodeId,
    requested_at: SimTime,
    /// Whether the source has started serving (we saw its SegmentHeader).
    serving: bool,
}

/// Outcome of the last scheduling pass, driving the dirty-flag skip.
///
/// A pass that issues no request consumes no RNG and sends nothing
/// (`pick_source` only draws on a non-empty candidate set, and a non-empty
/// set always yields a request), so skipping its re-run is bit-identical to
/// running it — as long as nothing that could change its outcome happened
/// in between. Every such change marks the state [`SchedState::Dirty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedState {
    /// Something relevant changed; the next pass must run.
    Dirty,
    /// The last pass found every segment held or in flight. Only freeing a
    /// segment (`drop_in_flight`) can change that, and it marks dirty.
    Exhausted,
    /// The last pass stopped at this wanted segment with no eligible
    /// source for it. The pass walks segments in order and stops at the
    /// *first* want it cannot fill, so only events that could fill exactly
    /// that segment re-dirty the state: a new holder *of that segment*, a
    /// fresh handshake (may fold in held bits or enable the CDN), a freed
    /// in-flight slot, or the leecher's own holdings growing (moves the
    /// frontier). Holder news for other segments cannot change the
    /// outcome — the pass would stop at the same segment again. (Peers
    /// going offline only *shrink* the candidate set, so they need no
    /// mark.)
    NoSource(u32),
    /// The last pass stopped at the interest-window edge (windowed
    /// dissemination): the next wanted segment lies at or beyond
    /// `next_needed + INTEREST_WINDOW_SEGS`, which the window protocol
    /// neither announces nor requests. Every want below the edge was held,
    /// in flight, or just requested, so only the frontier advancing can
    /// change the outcome — and every delivery marks dirty.
    WindowEdge,
    /// The last pass stopped at the pool-size cap. Skippable even though
    /// the adaptive pool size is time-varying: between deliveries the
    /// buffered lead `T` only *shrinks* (the play head advances, the
    /// buffer is fixed), so the pool `⌊B·T/W⌋` only shrinks and a full
    /// pool stays full. Everything that can grow it — a fresh bandwidth
    /// sample `B`, a freed in-flight slot, a new holding extending the
    /// buffer — happens inside a delivery or drop, and those mark dirty.
    PoolFull,
}

/// Rolling health record for one download source (defense plane only).
/// Failures grow an exponential-backoff ban window; each success pays one
/// failure back and lifts any active ban.
#[derive(Debug, Clone, Copy)]
struct SourceHealth {
    /// Consecutive-ish failure score (successes decrement it).
    failures: u32,
    /// The source is skipped by the picker until this instant — unless it
    /// is the only provider left (a ban must never starve a segment).
    banned_until: SimTime,
}

/// The leecher node behaviour.
#[derive(Debug)]
pub struct LeecherNode {
    cfg: LeecherConfig,
    playback: Playback,
    holdings: Bitfield,
    views: BTreeMap<NodeId, PeerView>,
    /// Peers whose holdings are known complete, summarized out of
    /// `views`: each costs a compact [`CompleteView`] instead of a view
    /// plus bitfield, its holder-index entries are purged, and pick-time
    /// candidate collection folds it back in as an implicit holder of
    /// everything (the same sorted-position merge the CDN uses). The CDN
    /// itself is never summarized — its special casing throughout wants
    /// the real view.
    complete: BTreeMap<NodeId, CompleteView>,
    /// The shared all-set bitfield standing in for every complete peer's
    /// holdings (interned per thread; see `Bitfield::full_interned`).
    full_field: Arc<Bitfield>,
    /// Defense-only liveness clocks, keyed like `views`. Empty (no heap)
    /// unless defenses are on: the clocks moved out of `PeerView` so the
    /// common undefended swarm does not pay 16 bytes per view for state
    /// nothing reads.
    clocks: BTreeMap<NodeId, PeerClock>,
    /// Per-segment holder index: for each segment, the sorted handshaken
    /// peers known to hold it (CDN excluded — its eligibility does not
    /// depend on holdings). Mirrors the views' bitfields incrementally.
    holders: HolderIndex,
    /// Outcome of the last scheduling pass (dirty-flag scheduling).
    sched_state: SchedState,
    in_flight: BTreeMap<u32, InFlight>,
    /// One-shot re-pick bans: segment → the source whose request just
    /// timed out there. Consulted (and consumed) by the next successful
    /// pick of that segment, so a re-request "moves to a *different*
    /// source when one exists" instead of letting the random tie-break
    /// land back on the stale one. Kept out of the pick itself so the
    /// candidate set — and therefore the RNG draw sequence — is unchanged
    /// whenever the tie-break behaves.
    timeout_bans: BTreeMap<u32, NodeId>,
    uploads: UploadSide,
    /// Set once the manifest has arrived; downloads start then.
    streaming: bool,
    /// Low-water mark for the sequential scheduler: every segment below it
    /// is held, so scans for the next wanted segment start here instead of
    /// re-walking the played-out prefix.
    next_needed: u32,
    /// [`SegmentList::mean_segment_bytes`] is O(segments); the list is
    /// immutable, so the mean is computed once.
    mean_segment_bytes: u64,
    pumping: bool,
    pumps: u64,
    /// Completions awaiting a coalesced flush (eventful mode).
    pending_haves: Vec<u32>,
    /// Deadline of the pending flush, if one is open.
    flush_at: Option<SimTime>,
    /// Absolute time of the next tracker re-announce (eventful mode).
    next_announce_at: SimTime,
    /// Earliest deadline a pump timer is already set for. Timers cannot be
    /// cancelled, so arming only sets a timer when it beats this mark;
    /// stale fires are harmless no-op pumps.
    earliest_armed: SimTime,
    /// Whether peers were told we are complete (`NotInterested`).
    complete_notified: bool,
    /// Start of the last `InterestWindow` broadcast (windowed mode);
    /// `None` until the first announcement goes out.
    window_sent_from: Option<u32>,
    /// Receiver-side fold horizon (windowed mode): announcements for
    /// segments below it are live-mirrored into the holder index, while
    /// everything at or beyond it is parked in the per-peer bitfields only
    /// and folded in lazily as the scheduler's wanted frontier reaches it.
    fold_horizon: u32,
    report: PeerReport,
    reported: bool,
    /// Scratch buffer for outgoing frames (reused across sends).
    wire_buf: EncodeBuf,
    /// Scratch storage reused by the steady-state paths below, so the
    /// request/deliver cycle allocates nothing per event.
    scratch_candidates: Vec<SourceCandidate>,
    scratch_peers: Vec<NodeId>,
    scratch_stale: Vec<(u32, InFlight)>,
    /// Per-source failure scores with backoff bans (defense plane only;
    /// empty when defenses are off).
    health: BTreeMap<NodeId, SourceHealth>,
    /// Defense-pump cadence, precomputed from the config (zero = off).
    defense_tick: SimDuration,
    /// Holdings count at the last watchdog check.
    progress_mark: u32,
    /// When the watchdog last saw progress (or last tripped).
    last_progress_at: SimTime,
    /// First wanted segment at the last CDN-fallback check.
    frontier: u32,
    /// Since when the frontier has not advanced.
    frontier_since: SimTime,
    /// When the manifest was last requested (retry throttle).
    manifest_asked_at: SimTime,
}

impl LeecherNode {
    /// Creates a leecher. It stays idle until `join_delay` elapses.
    pub fn new(cfg: LeecherConfig) -> Self {
        let segment_count = cfg.segments.len() as u32;
        let mut playback = Playback::new(&cfg.segments);
        playback.set_resume_threshold(cfg.resume_buffer_secs);
        let mut views = BTreeMap::new();
        views.insert(cfg.seeder, PeerView::new(segment_count));
        if let Some(cdn) = cfg.cdn {
            views.insert(cdn, PeerView::new(segment_count));
        }
        if cfg.discovery == crate::swarm::DiscoveryMode::Full {
            for &other in &cfg.others {
                views.insert(other, PeerView::new(segment_count));
            }
        }
        let uploads = UploadSide::new(cfg.upload_slots);
        let report = PeerReport {
            peer: cfg.index,
            ..PeerReport::default()
        };
        // Universe hint for the dense-promotion threshold: every peer this
        // leecher could ever index (the other leechers plus seeder, CDN,
        // hub, and itself occupy the low node indices).
        let universe = cfg.others.len() + 4;
        let mut holders = HolderIndex::with_universe(segment_count, universe);
        if cfg.sparse_holders {
            holders = holders.sparse_only();
        }
        LeecherNode {
            playback,
            holdings: Bitfield::new(segment_count),
            views,
            complete: BTreeMap::new(),
            full_field: Bitfield::full_interned(segment_count),
            clocks: BTreeMap::new(),
            holders,
            sched_state: SchedState::Dirty,
            in_flight: BTreeMap::new(),
            timeout_bans: BTreeMap::new(),
            uploads,
            streaming: false,
            next_needed: 0,
            mean_segment_bytes: cfg.segments.mean_segment_bytes().round() as u64,
            pumping: false,
            pumps: 0,
            pending_haves: Vec::new(),
            flush_at: None,
            next_announce_at: SimTime::MAX,
            earliest_armed: SimTime::MAX,
            complete_notified: false,
            window_sent_from: None,
            fold_horizon: 0,
            report,
            reported: false,
            wire_buf: EncodeBuf::new(),
            scratch_candidates: Vec::new(),
            scratch_peers: Vec::new(),
            scratch_stale: Vec::new(),
            health: BTreeMap::new(),
            defense_tick: cfg
                .defense
                .map(|d| SimDuration::from_secs_f64(d.tick_secs()))
                .unwrap_or(SimDuration::ZERO),
            progress_mark: 0,
            last_progress_at: SimTime::ZERO,
            frontier: 0,
            frontier_since: SimTime::ZERO,
            manifest_asked_at: SimTime::ZERO,
            cfg,
        }
    }

    /// This leecher's final report (also written to the sink at sim end).
    pub fn report(&self) -> &PeerReport {
        &self.report
    }

    fn is_origin(&self, node: NodeId) -> bool {
        node == self.cfg.seeder || self.cfg.cdn == Some(node)
    }

    /// The defense clocks for `peer` (zeros when none were stamped yet —
    /// exactly the value the pre-diet inline fields started at).
    fn clock(&self, peer: NodeId) -> PeerClock {
        self.clocks.get(&peer).copied().unwrap_or_default()
    }

    /// Whether `peer` is known — it has a live view or a complete-peer
    /// record.
    fn knows_peer(&self, peer: NodeId) -> bool {
        self.views.contains_key(&peer) || self.complete.contains_key(&peer)
    }

    /// Iterates every known peer in ascending `NodeId` order, presenting
    /// live views and complete-peer records uniformly as [`PeerLook`]s.
    /// The two maps are disjoint by invariant; this is the same
    /// sorted-position merge the candidate collector uses, so iteration
    /// order — and therefore wire order of anything broadcast — matches
    /// the pre-summary single-map walk exactly. A free function over the
    /// fields so callers can hold other `&mut self` borrows.
    fn peers_merged<'a>(
        views: &'a BTreeMap<NodeId, PeerView>,
        complete: &'a BTreeMap<NodeId, CompleteView>,
        full: &'a Bitfield,
    ) -> impl Iterator<Item = (NodeId, PeerLook<'a>)> {
        let mut live = views.iter().peekable();
        let mut done = complete.iter().peekable();
        std::iter::from_fn(move || {
            let take_live = match (live.peek(), done.peek()) {
                (Some((a, _)), Some((b, _))) => a < b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            Some(if take_live {
                let (&peer, view) = live.next().expect("peeked");
                (peer, PeerLook::view(view))
            } else {
                let (&peer, record) = done.next().expect("peeked");
                (peer, PeerLook::complete(record, full))
            })
        })
    }

    /// Folds a peer whose holdings just became full into the compact
    /// complete-peer map: its view and holder-index entries are dropped
    /// and pick-time merging treats it as an implicit holder of
    /// everything. The purge is deliberately not counted as holder
    /// removes — nothing was forgotten, the entries became implicit. The
    /// CDN keeps its real view (its special casing reads it), and
    /// un-handshaken views stay put (they are not indexed yet, and the
    /// handshake handler needs the real view to fold).
    fn maybe_summarize_complete(&mut self, peer: NodeId) {
        if Some(peer) == self.cfg.cdn {
            return;
        }
        let complete = self
            .views
            .get(&peer)
            .is_some_and(|v| v.handshaken() && v.holdings.is_complete());
        if !complete {
            return;
        }
        let view = self.views.remove(&peer).expect("checked above");
        self.holders.remove_peer(peer);
        self.complete.insert(peer, view.summarize_complete());
    }

    /// The outstanding-request counter for `peer`, wherever its record
    /// lives.
    fn outstanding_mut(&mut self, peer: NodeId) -> Option<&mut u32> {
        if let Some(view) = self.views.get_mut(&peer) {
            return Some(&mut view.outstanding);
        }
        self.complete
            .get_mut(&peer)
            .map(|record| &mut record.outstanding)
    }

    /// Drops a peer's view and its holder-index entries. Evictions only
    /// shrink the candidate sets, so they never mark the scheduler dirty.
    fn forget_view(&mut self, peer: NodeId) {
        if let Some(view) = self.views.remove(&peer) {
            self.clocks.remove(&peer);
            if view.handshaken() && Some(peer) != self.cfg.cdn {
                self.report.sched.holder_removes += self.holders.remove_peer(peer);
            }
        } else if self.complete.remove(&peer).is_some() {
            // Complete peers have no holder-index entries to purge.
            self.clocks.remove(&peer);
        }
        // A one-shot ban names the peer whose request timed out on that
        // segment; once the peer is evicted the ban must not survive, or a
        // later redraw's `unwrap_or(banned)` fallback could point a request
        // at a source that no longer exists.
        self.timeout_bans.retain(|_, &mut banned| banned != peer);
    }

    /// Whether the injected fault plane may drop or delay this message:
    /// periodic availability traffic (a later announcement supersedes a
    /// lost one) and requests (they carry their own timeout). Everything
    /// that shapes connection state — handshakes, goodbyes, manifest
    /// exchange, cancels, keepalives — stays reliable.
    fn droppable(message: &Message) -> bool {
        matches!(
            message,
            Message::Have { .. }
                | Message::HaveBundle { .. }
                | Message::Bitfield(_)
                | Message::InterestWindow { .. }
                | Message::Request { .. }
        )
    }

    fn say(&mut self, ctx: &mut Ctx<'_>, to: NodeId, message: &Message) -> bool {
        let wire = self.wire_buf.wire(message);
        let result = if Self::droppable(message) {
            ctx.send_faulty(to, wire)
        } else {
            ctx.send(to, wire)
        };
        match result {
            Ok(()) => {
                if self.cfg.defense.is_some() && self.knows_peer(to) {
                    self.clocks.entry(to).or_default().last_spoke = ctx.now();
                }
                true
            }
            Err(_) => {
                // Unreachable peer (churned out): forget it entirely.
                self.forget_view(to);
                self.uploads.forget_peer(to);
                false
            }
        }
    }

    fn greet(&mut self, ctx: &mut Ctx<'_>, peer: NodeId) {
        if self.views.get(&peer).is_some_and(|v| v.greeted())
            || self.complete.get(&peer).is_some_and(|c| c.greeted())
        {
            return;
        }
        let hs = Message::Handshake {
            peer_id: self.cfg.index as u64 + 1,
            info_hash: crate::seeder::info_hash_of(""),
            version: PROTOCOL_VERSION,
        };
        if self.say(ctx, peer, &hs) {
            if let Some(view) = self.views.get_mut(&peer) {
                view.set_greeted(true);
            } else if let Some(record) = self.complete.get_mut(&peer) {
                record.set_greeted(true);
            }
        }
    }

    fn boot(&mut self, ctx: &mut Ctx<'_>) {
        // Handshake the origins and (in P2P mode) every known peer, then
        // ask the seeder for the manifest — and, under tracker discovery,
        // for the member list.
        self.greet(ctx, self.cfg.seeder);
        if let Some(cdn) = self.cfg.cdn {
            self.greet(ctx, cdn);
        }
        if self.cfg.p2p {
            match self.cfg.discovery {
                crate::swarm::DiscoveryMode::Full => {
                    for other in self.cfg.others.clone() {
                        self.greet(ctx, other);
                    }
                }
                crate::swarm::DiscoveryMode::Tracker => {
                    self.say(ctx, self.cfg.seeder, &Message::PeerListRequest);
                }
            }
        }
        self.say(ctx, self.cfg.seeder, &Message::ManifestRequest);
        self.manifest_asked_at = ctx.now();
        self.last_progress_at = ctx.now();
        self.frontier_since = ctx.now();
        if let Some(depart) = self.cfg.depart_after {
            ctx.set_timer(depart, TOKEN_DEPART);
        }
        if let Some(crash) = self.cfg.crash_after {
            ctx.set_timer(crash, TOKEN_CRASH);
        }
        self.pumping = true;
        match self.cfg.control_plane {
            ControlPlane::Legacy => ctx.set_timer(self.cfg.pump_interval, TOKEN_PUMP),
            ControlPlane::Eventful => {
                self.next_announce_at = ctx.now() + self.cfg.pump_interval.mul_f64(ANNOUNCE_PUMPS);
                let first = ctx.now() + self.cfg.pump_interval;
                self.arm_pump(ctx, first);
            }
        }
    }

    /// Sets a pump timer for `at` unless one at least as early is already
    /// pending. The simulator cannot cancel timers, so over-arming is the
    /// failure mode to avoid; a pump that fires with nothing due simply
    /// re-arms.
    fn arm_pump(&mut self, ctx: &mut Ctx<'_>, at: SimTime) {
        if at < self.earliest_armed {
            self.earliest_armed = at;
            ctx.set_timer(at.saturating_since(ctx.now()), TOKEN_PUMP);
        }
    }

    /// Whether this leecher still re-announces to the tracker.
    fn announces(&self) -> bool {
        self.cfg.p2p
            && self.cfg.discovery == crate::swarm::DiscoveryMode::Tracker
            && !self.holdings.is_complete()
    }

    /// Encodes `message` once and sends it to every view `include` admits,
    /// evicting peers that became unreachable. Returns the number of
    /// successful sends.
    fn broadcast(
        &mut self,
        ctx: &mut Ctx<'_>,
        message: &Message,
        mut include: impl FnMut(NodeId, PeerLook<'_>) -> bool,
    ) -> u64 {
        let mut peers = std::mem::take(&mut self.scratch_peers);
        peers.clear();
        peers.extend(
            Self::peers_merged(&self.views, &self.complete, &self.full_field)
                .filter(|&(peer, look)| include(peer, look))
                .map(|(peer, _)| peer),
        );
        // One encode for the whole broadcast: a `Bytes` clone is a
        // reference-count bump, not a copy.
        let wire = self.wire_buf.wire(message);
        let faulty = Self::droppable(message);
        let mut sent = 0;
        for &peer in &peers {
            let result = if faulty {
                ctx.send_faulty(peer, wire.clone())
            } else {
                ctx.send(peer, wire.clone())
            };
            if result.is_ok() {
                sent += 1;
                if self.cfg.defense.is_some() && self.knows_peer(peer) {
                    self.clocks.entry(peer).or_default().last_spoke = ctx.now();
                }
            } else {
                self.forget_view(peer);
                self.uploads.forget_peer(peer);
            }
        }
        self.scratch_peers = peers;
        sent
    }

    /// The heart of §III: keep the download pool filled to the policy's
    /// size. The pool is a sliding window over the sequential segment
    /// order: whenever a download completes (or the policy's `k` grows
    /// because `T` grew), the next wanted segments are requested. An
    /// oversized pool is counterproductive on a thin link: the next-needed
    /// segment gets `1/k` of the bandwidth while `k` parallel connections
    /// overload the access link (§VI-B).
    fn schedule(&mut self, ctx: &mut Ctx<'_>) {
        let start = std::time::Instant::now();
        self.schedule_pass(ctx);
        crate::scheduler::sched_wall_add(start.elapsed());
    }

    /// One scheduling pass; only entered via [`Self::schedule`], which
    /// accounts its wall clock to the process-wide probe.
    fn schedule_pass(&mut self, ctx: &mut Ctx<'_>) {
        if !self.streaming {
            return;
        }
        if self.cfg.scheduler == SchedulerMode::Indexed && self.sched_state != SchedState::Dirty {
            // Dirty-flag skip: the last pass proved no request could be
            // issued, nothing relevant changed since (see `SchedState`),
            // and a pass issuing no request touches neither the RNG nor
            // the wire — so not running it is bit-identical.
            self.report.sched.skips += 1;
            return;
        }
        self.report.sched.passes += 1;
        let now = ctx.now().as_secs_f64();
        while self.next_needed < self.holdings.len() && self.holdings.get(self.next_needed) {
            self.next_needed += 1;
        }
        loop {
            let Some(want) = next_wanted_from(
                self.next_needed,
                self.holdings.len(),
                |i| self.holdings.get(i),
                |i| self.in_flight.contains_key(&i),
            ) else {
                self.sched_state = SchedState::Exhausted;
                self.report.sched.exhausted += 1;
                return; // everything held or requested
            };
            if self.windowed() && want >= self.next_needed.saturating_add(INTEREST_WINDOW_SEGS) {
                // The want lies beyond the announced interest window, where
                // peer availability is neither announced nor indexed; the
                // edge moves with the frontier, i.e. with deliveries.
                self.sched_state = SchedState::WindowEdge;
                self.report.dissem.window_capped += 1;
                return;
            }
            self.ensure_folded(want.saturating_add(1));
            let w = match self.cfg.w_estimate {
                crate::policy::WEstimate::MeanSegment => self.mean_segment_bytes,
                crate::policy::WEstimate::NextSegment => self.cfg.segments[want as usize].bytes,
            };
            let input = PolicyInput {
                bandwidth_bytes_per_sec: self.cfg.estimator.bytes_per_sec(),
                buffered_secs: self.playback.buffered_ahead(now).as_secs_f64(),
                next_segment_bytes: w,
            };
            if self.in_flight.len() >= self.cfg.policy.pool_size(&input) {
                self.sched_state = SchedState::PoolFull;
                self.report.sched.full_pool += 1;
                return;
            }
            let Some(mut source) = self.pick_source_for(ctx, want, None) else {
                self.sched_state = SchedState::NoSource(want);
                self.report.sched.no_source += 1;
                return;
            };
            if let Some(banned) = self.timeout_bans.remove(&want) {
                if source == banned {
                    // The tie-break landed back on the source that just
                    // timed out here; redraw without it. Falling back to
                    // the banned source is correct when it is the only
                    // provider left.
                    source = self
                        .pick_source_for(ctx, want, Some(banned))
                        .unwrap_or(banned);
                }
            }
            self.request_from(ctx, source, want);
        }
    }

    /// Picks the least-loaded eligible source for `index`, skipping
    /// `exclude` (the timed-out source on a re-request). Both scheduler
    /// modes build the identical candidate list — ascending `NodeId`
    /// order, same membership — so the RNG tie-break picks the same peer.
    fn pick_source_for(
        &mut self,
        ctx: &mut Ctx<'_>,
        index: u32,
        exclude: Option<NodeId>,
    ) -> Option<NodeId> {
        let cdn_busy = self
            .cfg
            .cdn
            .map(|cdn| self.in_flight.values().filter(|f| f.source == cdn).count() >= 1)
            .unwrap_or(true);
        let seeder = self.cfg.seeder;
        let cdn = self.cfg.cdn;
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        match self.cfg.scheduler {
            SchedulerMode::Scan => {
                self.collect_candidates_scan(ctx, index, exclude, cdn_busy, &mut candidates);
            }
            SchedulerMode::Indexed => {
                self.collect_candidates_indexed(ctx, index, exclude, cdn_busy, &mut candidates);
                #[cfg(debug_assertions)]
                {
                    let mut rescan = Vec::new();
                    self.collect_candidates_scan(ctx, index, exclude, cdn_busy, &mut rescan);
                    debug_assert_eq!(
                        candidates, rescan,
                        "holder-index candidates diverged from a full rescan \
                         for segment {index}"
                    );
                }
            }
        }
        // Backoff bans (defense plane): skip sources inside their ban
        // window — unless every candidate is banned, because a ban must
        // degrade preference, never starve the segment.
        if self.cfg.defense.is_some() && !self.health.is_empty() {
            let now = ctx.now();
            let health = &self.health;
            let banned =
                |c: &SourceCandidate| health.get(&c.peer).is_some_and(|h| now < h.banned_until);
            if candidates.iter().any(|c| !banned(c)) {
                candidates.retain(|c| !banned(c));
            }
        }
        // Prefer fellow leechers whenever one holds the segment: the origin
        // is the last resort, so its uplink stays free to push *fresh*
        // segments into the swarm (classic BitTorrent etiquette, and what
        // keeps a bandwidth-tight swarm feasible).
        let is_origin = |c: &SourceCandidate| c.peer == seeder || cdn == Some(c.peer);
        if candidates.iter().any(|c| !is_origin(c)) {
            candidates.retain(|c| !is_origin(c));
        }
        let picked = pick_source(&candidates, ctx.rng());
        self.scratch_candidates = candidates;
        picked
    }

    /// Reference candidate collection: a full scan of every known peer —
    /// live views and complete-peer records merged in ascending `NodeId`
    /// order (both maps are `BTreeMap`s), so the pool needs no sort for
    /// determinism. Complete peers are handshaken by construction and
    /// hold every segment, so the uniform [`PeerLook`] checks compute for
    /// them exactly what the full view computed before summarization.
    fn collect_candidates_scan(
        &self,
        ctx: &Ctx<'_>,
        index: u32,
        exclude: Option<NodeId>,
        cdn_busy: bool,
        out: &mut Vec<SourceCandidate>,
    ) {
        let cdn = self.cfg.cdn;
        for (peer, look) in Self::peers_merged(&self.views, &self.complete, &self.full_field) {
            if Some(peer) == exclude || !look.handshaken() || !ctx.is_online(peer) {
                continue;
            }
            if cdn == Some(peer) {
                // §IV: downloads from the CDN happen one segment at a time.
                if !cdn_busy {
                    out.push(SourceCandidate {
                        peer,
                        outstanding: look.outstanding,
                    });
                }
                continue;
            }
            if !self.cfg.p2p {
                continue; // CDN-only mode: neither seeder nor peers serve data
            }
            if look.holdings.get(index) {
                out.push(SourceCandidate {
                    peer,
                    outstanding: look.outstanding,
                });
            }
        }
    }

    /// Indexed candidate collection: walks the holders of one segment
    /// instead of every view. The index already folds in handshaken-ness
    /// and excludes the CDN and complete peers; online-ness stays a live
    /// probe (a peer can go offline before its departure is observed).
    /// The complete peers — implicit holders of everything — and the CDN
    /// candidate are merged at their sorted `NodeId` positions, so the
    /// order matches the scan exactly.
    fn collect_candidates_indexed(
        &self,
        ctx: &Ctx<'_>,
        index: u32,
        exclude: Option<NodeId>,
        cdn_busy: bool,
        out: &mut Vec<SourceCandidate>,
    ) {
        let cdn_candidate = self.cfg.cdn.filter(|&cdn| {
            !cdn_busy
                && Some(cdn) != exclude
                && self.views.get(&cdn).is_some_and(|v| v.handshaken())
                && ctx.is_online(cdn)
        });
        let mut cdn_pending = cdn_candidate;
        if self.cfg.p2p {
            // Three-way sorted merge: the segment's indexed holders, the
            // complete peers, and the CDN. The index and the complete map
            // are disjoint by invariant (summarizing purges the entries).
            let mut indexed = self.holders.of(index).peekable();
            let mut done = self.complete.iter().peekable();
            loop {
                let next_indexed = indexed.peek().copied();
                let next_done = done.peek().map(|(&p, _)| p);
                let (peer, complete_outstanding) = match (next_indexed, next_done) {
                    (Some(a), Some(b)) if a < b => {
                        indexed.next();
                        (a, None)
                    }
                    (_, Some(b)) => {
                        let (_, record) = done.next().expect("peeked");
                        (b, Some(record.outstanding))
                    }
                    (Some(a), None) => {
                        indexed.next();
                        (a, None)
                    }
                    (None, None) => break,
                };
                if let Some(cdn) = cdn_pending {
                    if cdn < peer {
                        out.push(SourceCandidate {
                            peer: cdn,
                            outstanding: self.views[&cdn].outstanding,
                        });
                        cdn_pending = None;
                    }
                }
                if Some(peer) == exclude || !ctx.is_online(peer) {
                    continue;
                }
                let outstanding = match complete_outstanding {
                    Some(outstanding) => outstanding,
                    None => match self.views.get(&peer) {
                        Some(view) => view.outstanding,
                        // Evicted concurrently; the scan skips it too.
                        None => continue,
                    },
                };
                out.push(SourceCandidate { peer, outstanding });
            }
        }
        if let Some(cdn) = cdn_pending {
            out.push(SourceCandidate {
                peer: cdn,
                outstanding: self.views[&cdn].outstanding,
            });
        }
    }

    fn request_from(&mut self, ctx: &mut Ctx<'_>, source: NodeId, index: u32) {
        if self.say(ctx, source, &Message::Request { index }) {
            self.in_flight.insert(
                index,
                InFlight {
                    source,
                    requested_at: ctx.now(),
                    serving: false,
                },
            );
            if let Some(outstanding) = self.outstanding_mut(source) {
                *outstanding += 1;
            }
            if self.cfg.control_plane == ControlPlane::Eventful {
                // A pump must run when this request's timeout expires.
                let deadline = ctx.now() + self.cfg.request_timeout;
                self.arm_pump(ctx, deadline);
            }
        }
    }

    fn drop_in_flight(&mut self, index: u32) -> Option<InFlight> {
        let entry = self.in_flight.remove(&index)?;
        if let Some(outstanding) = self.outstanding_mut(entry.source) {
            *outstanding = outstanding.saturating_sub(1);
        }
        // Freeing a segment can turn an exhausted schedule fillable again,
        // and freeing a CDN slot can give a source-less segment a source.
        self.sched_state = SchedState::Dirty;
        if self.holdings.get(index) {
            // A held segment losing its last in-flight entry (a raced
            // duplicate resolving) will never be picked again.
            self.purge_dead_holders(index);
        }
        Some(entry)
    }

    /// Frees the holder set of a segment the scheduler can never pick
    /// again: held, with no raced in-flight entry left that a timeout
    /// redraw could still consult. Memory-only — the scheduler never reads
    /// these sets, so the pick sequence (and every RNG draw) is unchanged;
    /// the counters stay untouched for the same reason.
    fn purge_dead_holders(&mut self, index: u32) {
        if !self.in_flight.contains_key(&index) {
            self.holders.purge_segment(index);
        }
    }

    /// Records a request timeout or failed transfer against `source`
    /// (defense plane): the failure score grows an exponential-backoff ban
    /// window, so a flaky source is sidelined for progressively longer
    /// instead of being re-picked every round.
    fn record_source_failure(&mut self, now: SimTime, source: NodeId) {
        let Some(defense) = self.cfg.defense else {
            return;
        };
        if self.is_origin(source) {
            // The seeder and CDN are the swarm's safety net; banning them
            // could starve segments no leecher holds yet.
            return;
        }
        let entry = self.health.entry(source).or_insert(SourceHealth {
            failures: 0,
            banned_until: SimTime::ZERO,
        });
        entry.failures = entry.failures.saturating_add(1);
        let exponent = entry.failures.saturating_sub(1).min(8);
        let window =
            (defense.backoff_base_secs * f64::from(1u32 << exponent)).min(defense.backoff_max_secs);
        entry.banned_until = now + SimDuration::from_secs_f64(window);
        self.report.fault.backoff_bans += 1;
    }

    /// Pays one failure back after a successful delivery from `source` and
    /// lifts any active ban (the source proved itself again).
    fn record_source_success(&mut self, source: NodeId) {
        if self.cfg.defense.is_none() {
            return;
        }
        if let Some(entry) = self.health.get_mut(&source) {
            entry.failures = entry.failures.saturating_sub(1);
            if entry.failures == 0 {
                self.health.remove(&source);
            } else {
                entry.banned_until = SimTime::ZERO;
            }
        }
    }

    /// Re-requests entries that sat unserved past the timeout, or whose
    /// source went offline. Re-requesting moves to a *different* source
    /// when one exists (and cancels at the old one); otherwise the timer is
    /// simply extended — the old source is still the only provider.
    fn check_timeouts(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut stale = std::mem::take(&mut self.scratch_stale);
        stale.clear();
        stale.extend(
            self.in_flight
                .iter()
                .filter(|(_, f)| {
                    !ctx.is_online(f.source)
                        || (!f.serving
                            && now.saturating_since(f.requested_at) >= self.cfg.request_timeout)
                })
                .map(|(&i, &f)| (i, f)),
        );
        for &(index, entry) in &stale {
            if !ctx.is_online(entry.source) {
                self.forget_view(entry.source);
                self.drop_in_flight(index);
                continue;
            }
            self.record_source_failure(now, entry.source);
            // Exclude the timed-out source from the pick itself: choosing
            // from the full pool and filtering afterwards would let the
            // later scheduling pass re-request from the very peer that
            // just timed out (its random tie-break sees the full pool).
            let alternative = self
                .pick_source_for(ctx, index, None)
                .filter(|&s| s != entry.source);
            match alternative {
                Some(_) => {
                    self.say(ctx, entry.source, &Message::Cancel { index });
                    self.drop_in_flight(index);
                    // The scheduling pass that follows re-picks the source
                    // for this segment from the full pool; ban the one
                    // that just timed out so the random tie-break cannot
                    // land right back on it.
                    self.timeout_bans.insert(index, entry.source);
                }
                None => {
                    if let Some(f) = self.in_flight.get_mut(&index) {
                        f.requested_at = now; // wait another round
                    }
                }
            }
        }
        self.scratch_stale = stale;
    }

    fn update_interest(&mut self, ctx: &mut Ctx<'_>, peer: NodeId) {
        if let Some(record) = self.complete.get(&peer) {
            if record.interested_sent() || self.is_origin(peer) {
                return;
            }
            // A complete peer holds something we want exactly when our own
            // holdings are not complete — the same answer `has_any_not_in`
            // gave against the full view bitfield.
            if !self.holdings.is_complete() && self.say(ctx, peer, &Message::Interested) {
                if let Some(record) = self.complete.get_mut(&peer) {
                    record.set_interested_sent(true);
                }
            }
            return;
        }
        let Some(view) = self.views.get(&peer) else {
            return;
        };
        if view.interested_sent() || self.is_origin(peer) {
            return;
        }
        let wants_something = view.holdings.has_any_not_in(&self.holdings);
        if wants_something && self.say(ctx, peer, &Message::Interested) {
            if let Some(view) = self.views.get_mut(&peer) {
                view.set_interested_sent(true);
            }
        }
    }

    fn windowed(&self) -> bool {
        self.cfg.dissemination == DisseminationMode::Windowed
    }

    /// The interest window this leecher would announce right now.
    fn own_window(&self) -> (u32, u32) {
        let start = self.next_needed;
        let end = start
            .saturating_add(INTEREST_WINDOW_SEGS)
            .min(self.holdings.len());
        (start, end)
    }

    /// Windowed dissemination's lazy fold: advances the fold horizon to
    /// `upto`, mirroring the announcements parked in the peer bitfields
    /// into the holder index for the newly covered segments. Segments we
    /// already hold are skipped outright — their holders can never be
    /// picked — which is where the bulk of full dissemination's
    /// O(peers × segments) insert volume disappears.
    fn ensure_folded(&mut self, upto: u32) {
        if !self.windowed() {
            return;
        }
        let upto = upto.min(self.holdings.len());
        while self.fold_horizon < upto {
            let segment = self.fold_horizon;
            self.fold_horizon += 1;
            if self.holdings.get(segment) {
                continue;
            }
            for (&peer, view) in &self.views {
                if view.handshaken()
                    && Some(peer) != self.cfg.cdn
                    && view.holdings.get(segment)
                    && self.holders.insert(segment, peer)
                {
                    self.report.sched.holder_adds += 1;
                    self.report.dissem.fold_inserts += 1;
                }
            }
        }
    }

    /// Broadcasts this leecher's interest window to every handshaken
    /// fellow leecher once the frontier has advanced at least
    /// [`WINDOW_ADVANCE_SEGS`] past the last broadcast (or none was sent
    /// yet). Called from the pump and delivery paths; the hysteresis keeps
    /// it to one broadcast per δ segments of progress.
    fn maybe_announce_window(&mut self, ctx: &mut Ctx<'_>) {
        if !self.windowed() || !self.cfg.p2p || !self.streaming || self.holdings.is_complete() {
            return;
        }
        let (start, end) = self.own_window();
        if self
            .window_sent_from
            .is_some_and(|sent| start < sent.saturating_add(WINDOW_ADVANCE_SEGS))
        {
            return;
        }
        self.window_sent_from = Some(start);
        let seeder = self.cfg.seeder;
        let cdn = self.cfg.cdn;
        let sent = self.broadcast(
            ctx,
            &Message::InterestWindow { start, end },
            |peer, view| peer != seeder && Some(peer) != cdn && view.handshaken(),
        );
        self.report.dissem.windows_sent += sent;
    }

    fn on_segment_complete(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        index: u32,
        bytes: u64,
        started: SimTime,
    ) {
        if index >= self.holdings.len() {
            // Not a segment of ours: bulk data from outside the swarm
            // (e.g. another application sharing the access link).
            return;
        }
        let now = ctx.now();
        self.report.bytes_downloaded += bytes;
        self.cfg
            .estimator
            .observe(bytes, now.saturating_since(started).as_secs_f64());
        if self.cfg.defense.is_some() {
            // A delivery is proof of life even though it is not a message.
            if self.knows_peer(from) {
                self.clocks.entry(from).or_default().last_heard = now;
            }
            self.record_source_success(from);
        }
        // Every delivery is a scheduling event: the bandwidth sample can
        // grow the adaptive pool, a freed slot or a new holding changes
        // what the next pass can request.
        self.sched_state = SchedState::Dirty;
        // A raced re-request can deliver from the *old* source after the
        // in-flight entry was re-pointed at a new one; only the recorded
        // source may clear the entry, or the new source's outstanding
        // counter is decremented for a transfer that is still running.
        if self.in_flight.get(&index).is_some_and(|f| f.source == from) {
            self.drop_in_flight(index);
        }
        if self.holdings.get(index) {
            // Duplicate delivery from a raced re-request — but the
            // `drop_in_flight` above may have freed a pool slot, so the
            // scheduling pass must still run or the slot sits idle until
            // the next pump (up to 8 intervals in eventful mode).
            self.purge_dead_holders(index);
            self.schedule(ctx);
            return;
        }
        self.holdings.set(index);
        self.timeout_bans.remove(&index); // held: the ban can never apply
        self.purge_dead_holders(index);
        if from == self.cfg.seeder {
            self.report.segments_from_seeder += 1;
        } else if self.cfg.cdn == Some(from) {
            self.report.segments_from_cdn += 1;
        } else {
            self.report.segments_from_peers += 1;
        }
        self.playback.on_segment(index as usize, now.as_secs_f64());
        if self.cfg.p2p {
            match self.cfg.control_plane {
                ControlPlane::Legacy => {
                    let seeder = self.cfg.seeder;
                    let cdn = self.cfg.cdn;
                    let mut suppressed = 0u64;
                    let sent = self.broadcast(ctx, &Message::Have { index }, |peer, view| {
                        if peer == seeder || Some(peer) == cdn {
                            return false;
                        }
                        // A peer that already shows the segment, or that
                        // never completed a handshake (its view of us is
                        // seeded by the bitfield we send then), learns
                        // nothing from this Have.
                        if !view.handshaken() || view.holdings.get(index) {
                            suppressed += 1;
                            return false;
                        }
                        true
                    });
                    self.report.control.haves_sent += sent;
                    self.report.control.haves_suppressed += suppressed;
                }
                ControlPlane::Eventful => {
                    self.pending_haves.push(index);
                    if self.flush_at.is_none() {
                        let at = now + self.cfg.coalesce_window;
                        self.flush_at = Some(at);
                        self.arm_pump(ctx, at);
                    }
                    self.maybe_announce_complete(ctx);
                }
            }
        }
        self.schedule(ctx);
        self.maybe_announce_window(ctx);
    }

    /// Flushes the pending completions as one `HaveBundle`, skipping peers
    /// that already hold every index, unsubscribed, or never handshook.
    fn flush_haves(&mut self, ctx: &mut Ctx<'_>) {
        self.flush_at = None;
        if self.pending_haves.is_empty() {
            return;
        }
        let mut indices = std::mem::take(&mut self.pending_haves);
        indices.sort_unstable();
        indices.dedup();
        let n = indices.len() as u64;
        let seeder = self.cfg.seeder;
        let cdn = self.cfg.cdn;
        let message = Message::HaveBundle { indices };
        let Message::HaveBundle { indices } = &message else {
            unreachable!()
        };
        let windowed = self.windowed();
        let mut suppressed = 0u64;
        let mut window_suppressed = 0u64;
        let sent = self.broadcast(ctx, &message, |peer, view| {
            if peer == seeder || Some(peer) == cdn {
                return false;
            }
            if !view.handshaken()
                || !view.peer_interested()
                || indices.iter().all(|&i| view.holdings.get(i))
            {
                suppressed += n;
                return false;
            }
            if windowed && !indices.iter().any(|&i| view.win_lo <= i && i < view.win_hi) {
                // No bundled index inside the peer's announced window:
                // below it the peer holds everything already, and beyond
                // it the window's next advance triggers a catch-up bundle.
                suppressed += n;
                window_suppressed += 1;
                return false;
            }
            true
        });
        self.report.control.have_bundles_sent += sent;
        self.report.control.haves_coalesced += sent * n;
        self.report.control.haves_suppressed += suppressed;
        self.report.dissem.window_suppressed += window_suppressed;
    }

    /// Once complete, tells every handshaken peer we no longer want
    /// availability announcements (eventful mode's unsubscribe).
    fn maybe_announce_complete(&mut self, ctx: &mut Ctx<'_>) {
        if self.complete_notified
            || self.cfg.control_plane != ControlPlane::Eventful
            || !self.cfg.p2p
            || !self.holdings.is_complete()
        {
            return;
        }
        self.complete_notified = true;
        let seeder = self.cfg.seeder;
        let cdn = self.cfg.cdn;
        self.broadcast(ctx, &Message::NotInterested, |peer, view| {
            peer != seeder && Some(peer) != cdn && view.handshaken()
        });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let Ok(message) = decode_single(payload) else {
            return;
        };
        if self.cfg.defense.is_some() && self.knows_peer(from) {
            self.clocks.entry(from).or_default().last_heard = ctx.now();
        }
        match message {
            Message::Handshake { .. } => {
                // An unknown greeter (it discovered us via the tracker
                // before we heard of it) gets a fresh view, so the
                // handshake becomes mutual and its segments enter our
                // source pool instead of being silently dropped. A peer
                // already summarized as complete keeps its record — a
                // fresh empty view would shadow it.
                if self.cfg.p2p && !self.is_origin(from) && !self.complete.contains_key(&from) {
                    let segment_count = self.holdings.len();
                    self.views
                        .entry(from)
                        .or_insert_with(|| PeerView::new(segment_count));
                }
                self.greet(ctx, from);
                let mut newly_handshaken = false;
                if let Some(view) = self.views.get_mut(&from) {
                    if !view.handshaken() {
                        view.set_handshaken(true);
                        newly_handshaken = true;
                        if Some(from) != self.cfg.cdn {
                            // Bits learned before the handshake (e.g. a
                            // Bitfield that arrived first) become
                            // candidates now: fold them into the index —
                            // in windowed mode only below the fold
                            // horizon, for segments still worth picking.
                            let full = self.cfg.dissemination == DisseminationMode::Full;
                            for i in view.holdings.iter_set() {
                                let mirror = full
                                    || (i < self.fold_horizon
                                        && (!self.holdings.get(i)
                                            || self.in_flight.contains_key(&i)));
                                if !mirror {
                                    self.report.dissem.deferred_indices += 1;
                                } else if self.holders.insert(i, from) {
                                    self.report.sched.holder_adds += 1;
                                }
                            }
                        }
                    }
                }
                if newly_handshaken {
                    // A fresh handshake can enable candidacy — indexed
                    // bits above, or the CDN becoming eligible.
                    self.sched_state = SchedState::Dirty;
                    // A view whose bitfield arrived full before the
                    // handshake qualifies for summarization now.
                    self.maybe_summarize_complete(from);
                }
                let bitfield = Message::Bitfield(self.holdings.clone());
                self.say(ctx, from, &bitfield);
                if newly_handshaken
                    && self.windowed()
                    && self.cfg.p2p
                    && self.streaming
                    && !self.is_origin(from)
                    && !self.holdings.is_complete()
                {
                    // Tell the newcomer our window right away; its view of
                    // us defaults to hearing everything otherwise.
                    let (start, end) = self.own_window();
                    if self.say(ctx, from, &Message::InterestWindow { start, end }) {
                        self.report.dissem.windows_sent += 1;
                    }
                }
                self.schedule(ctx);
            }
            Message::Bitfield(bf) => {
                if self.complete.contains_key(&from) {
                    if bf.len() == self.holdings.len() && !bf.is_complete() {
                        // A stale (delayed, droppable) bitfield overtaken
                        // by the Haves that completed the peer: demote
                        // back to a live view so the state keeps tracking
                        // the last message received, re-indexing its set
                        // bits under the usual mirror rule. The re-inserts
                        // are deliberately not counted as holder adds —
                        // the pre-summary index already carried them — and
                        // pickable candidate sets are unchanged (both
                        // worlds see exactly the bits of `bf`), so the
                        // scheduler state needs no dirty mark.
                        let record = self.complete.remove(&from).expect("checked above");
                        let view = record.expand(bf);
                        let full = self.cfg.dissemination == DisseminationMode::Full;
                        for i in view.holdings.iter_set() {
                            let mirror = full
                                || (i < self.fold_horizon
                                    && (!self.holdings.get(i) || self.in_flight.contains_key(&i)));
                            if mirror {
                                self.holders.insert(i, from);
                            }
                        }
                        self.views.insert(from, view);
                    }
                    self.update_interest(ctx, from);
                    self.schedule(ctx);
                    return;
                }
                let mut dirty = false;
                if let Some(view) = self.views.get_mut(&from) {
                    if bf.len() == view.holdings.len() {
                        let old = std::mem::replace(&mut view.holdings, bf);
                        if view.handshaken() && Some(from) != self.cfg.cdn {
                            // Diff the replacement into the holder index.
                            let full = self.cfg.dissemination == DisseminationMode::Full;
                            for i in 0..old.len() {
                                let (was, is) = (old.get(i), view.holdings.get(i));
                                if !was && is {
                                    let mirror = full
                                        || (i < self.fold_horizon
                                            && (!self.holdings.get(i)
                                                || self.in_flight.contains_key(&i)));
                                    if !mirror {
                                        self.report.dissem.deferred_indices += 1;
                                    } else if self.holders.insert(i, from) {
                                        self.report.sched.holder_adds += 1;
                                        dirty |= self.sched_state == SchedState::NoSource(i);
                                    }
                                } else if was && !is && self.holders.remove(i, from) {
                                    self.report.sched.holder_removes += 1;
                                }
                            }
                        }
                    }
                }
                if dirty {
                    self.sched_state = SchedState::Dirty;
                }
                self.maybe_summarize_complete(from);
                self.update_interest(ctx, from);
                self.schedule(ctx);
            }
            Message::Have { index } => {
                let mut dirty = false;
                if let Some(view) = self.views.get_mut(&from) {
                    if index < view.holdings.len() && !view.holdings.get(index) {
                        view.holdings.set(index);
                        if view.handshaken() && Some(from) != self.cfg.cdn {
                            // Windowed mode parks announcements beyond the
                            // fold horizon (and for segments already held)
                            // in the view bitfield only; `ensure_folded`
                            // mirrors them in when the frontier arrives.
                            let mirror = self.cfg.dissemination == DisseminationMode::Full
                                || (index < self.fold_horizon
                                    && (!self.holdings.get(index)
                                        || self.in_flight.contains_key(&index)));
                            if !mirror {
                                self.report.dissem.deferred_indices += 1;
                            } else if self.holders.insert(index, from) {
                                self.report.sched.holder_adds += 1;
                                // Only a holder of the exact segment the
                                // last pass was blocked on can change its
                                // outcome.
                                dirty = self.sched_state == SchedState::NoSource(index);
                            }
                        }
                    }
                }
                if dirty {
                    self.sched_state = SchedState::Dirty;
                }
                // A `Have` from a summarized peer falls through the view
                // lookup above untouched — exactly what the full view did
                // (the bit was already set) — and a `Have` that fills the
                // last hole in a live view promotes it here.
                self.maybe_summarize_complete(from);
                self.update_interest(ctx, from);
                self.schedule(ctx);
            }
            Message::HaveBundle { indices } => {
                let mut dirty = false;
                if let Some(view) = self.views.get_mut(&from) {
                    let full = self.cfg.dissemination == DisseminationMode::Full;
                    for &index in &indices {
                        if index < view.holdings.len() && !view.holdings.get(index) {
                            view.holdings.set(index);
                            if view.handshaken() && Some(from) != self.cfg.cdn {
                                let mirror = full
                                    || (index < self.fold_horizon
                                        && (!self.holdings.get(index)
                                            || self.in_flight.contains_key(&index)));
                                if !mirror {
                                    self.report.dissem.deferred_indices += 1;
                                } else if self.holders.insert(index, from) {
                                    self.report.sched.holder_adds += 1;
                                    dirty |= self.sched_state == SchedState::NoSource(index);
                                }
                            }
                        }
                    }
                }
                if dirty {
                    self.sched_state = SchedState::Dirty;
                }
                self.maybe_summarize_complete(from);
                self.update_interest(ctx, from);
                self.schedule(ctx);
            }
            Message::InterestWindow { start, end } => {
                if !self.cfg.p2p || !self.windowed() {
                    return;
                }
                if let Some(record) = self.complete.get_mut(&from) {
                    // Window monotonicity applies to the compact record
                    // too; the catch-up scan below would find nothing (a
                    // complete peer already holds everything), so it is
                    // skipped outright.
                    if start >= record.win_lo && end >= start {
                        record.win_lo = start;
                        record.win_hi = end;
                    }
                    return;
                }
                let Some(view) = self.views.get_mut(&from) else {
                    return;
                };
                if start < view.win_lo || end < start {
                    // Reordered (stale) or malformed announcement: windows
                    // advance monotonically, a newer one already applied.
                    return;
                }
                let old_hi = view.win_hi;
                view.win_lo = start;
                view.win_hi = end;
                if !view.handshaken() {
                    return;
                }
                // Catch-up: indices we hold that were suppressed because
                // they lay beyond the peer's previous window and are now
                // covered. `[old_hi, end)` intervals tile the stream as
                // windows advance, so each index is caught up at most once
                // per peer; the first announcement shrinks the default
                // full-stream window, making the range empty (nothing was
                // ever suppressed before it).
                let lo = old_hi.max(start);
                let mut catchup = Vec::new();
                for i in lo..end {
                    if self.holdings.get(i) && !view.holdings.get(i) {
                        catchup.push(i);
                    }
                }
                if !catchup.is_empty() {
                    self.report.dissem.catchup_bundles += 1;
                    self.report.dissem.catchup_haves += catchup.len() as u64;
                    self.say(ctx, from, &Message::HaveBundle { indices: catchup });
                }
            }
            Message::Interested => {
                if let Some(view) = self.views.get_mut(&from) {
                    view.set_peer_interested(true);
                } else if let Some(record) = self.complete.get_mut(&from) {
                    record.set_peer_interested(true);
                }
            }
            Message::NotInterested => {
                // Complete peers send this the moment they finish, which
                // is usually right after we summarized them — the flag
                // must land in the compact record.
                if let Some(view) = self.views.get_mut(&from) {
                    view.set_peer_interested(false);
                } else if let Some(record) = self.complete.get_mut(&from) {
                    record.set_peer_interested(false);
                }
            }
            Message::ManifestData { payload } => {
                if self.streaming {
                    return;
                }
                let text = std::str::from_utf8(&payload).unwrap_or("");
                match Manifest::parse_m3u8(text) {
                    Ok(manifest) if manifest.len() == self.cfg.segments.len() => {
                        self.streaming = true;
                        self.schedule(ctx);
                    }
                    _ => {
                        // Corrupt manifest: ask again.
                        self.say(ctx, self.cfg.seeder, &Message::ManifestRequest);
                        self.manifest_asked_at = ctx.now();
                    }
                }
            }
            Message::SegmentHeader { index, .. } => {
                if let Some(entry) = self.in_flight.get_mut(&index) {
                    if entry.source == from {
                        entry.serving = true;
                    }
                }
            }
            Message::Request { index } => {
                let have = index < self.holdings.len() && self.holdings.get(index);
                self.uploads
                    .on_request(ctx, from, index, &self.cfg.segments, have);
            }
            Message::Cancel { index } => self.uploads.on_cancel(from, index),
            Message::Goodbye => {
                self.forget_view(from);
                self.uploads.forget_peer(from);
                // The departed peer may hold our pending requests; an
                // immediate pump re-points them instead of waiting for
                // their timeout deadline.
                if self.cfg.control_plane == ControlPlane::Eventful
                    && self.in_flight.values().any(|f| f.source == from)
                {
                    let now = ctx.now();
                    self.arm_pump(ctx, now);
                }
            }
            Message::PeerList { peers } => {
                if !self.cfg.p2p {
                    return;
                }
                let me = ctx.me();
                for raw in peers {
                    let peer = NodeId::from_index(raw as usize);
                    if peer == me || self.is_origin(peer) || self.knows_peer(peer) {
                        continue;
                    }
                    if !ctx.is_online(peer) {
                        continue;
                    }
                    self.views.insert(peer, PeerView::new(self.holdings.len()));
                    self.greet(ctx, peer);
                }
            }
            // Choke/Unchoke/Interested/NotInterested/KeepAlive: purely
            // informational in this client.
            _ => {}
        }
    }

    /// Debug-only invariant: the incrementally maintained holder index must
    /// equal what a full rescan of the peer views would build. Runs on
    /// every pump in debug builds (CI's test profile), so index drift fails
    /// the build loudly instead of skewing the schedule silently.
    ///
    /// Windowed dissemination deliberately weakens the mirror: the index
    /// must never hold a *stale* entry (always a subset of the rescan), it
    /// must be empty beyond the fold horizon, and it must equal the rescan
    /// exactly for every segment the scheduler can still pick a source for
    /// — folded and unheld, or held with a raced in-flight entry. Held
    /// segments without one may retain a partial holder set: their inserts
    /// stopped the moment they were acquired, and nothing consults them.
    ///
    /// In both modes a held segment with no in-flight entry may hold any
    /// subset of the rescan (usually none): its set is purged on
    /// acquisition as part of the memory diet, and full mode keeps
    /// mirroring later announcements into it.
    #[cfg(debug_assertions)]
    fn audit_holder_index(&self) {
        if self.cfg.scheduler != SchedulerMode::Indexed {
            return;
        }
        // Complete-peer invariants: the compact map is disjoint from the
        // live views, never contains the CDN, and only ever holds
        // handshaken peers (summarization requires the handshake).
        for (&peer, record) in &self.complete {
            assert!(
                !self.views.contains_key(&peer),
                "peer {peer:?} has both a live view and a complete record"
            );
            assert!(
                Some(peer) != self.cfg.cdn,
                "the CDN must never be summarized as complete"
            );
            assert!(
                record.handshaken(),
                "complete record for un-handshaken peer {peer:?}"
            );
        }
        let windowed = self.windowed();
        for segment in 0..self.holdings.len() {
            let expected: Vec<NodeId> = self
                .views
                .iter()
                .filter(|&(&peer, view)| {
                    Some(peer) != self.cfg.cdn && view.handshaken() && view.holdings.get(segment)
                })
                .map(|(&peer, _)| peer)
                .collect();
            let indexed: Vec<NodeId> = self.holders.of(segment).collect();
            assert!(
                indexed.iter().all(|p| !self.complete.contains_key(p)),
                "summarized peer left in the holder index at segment \
                 {segment}: {indexed:?}"
            );
            let dead = self.holdings.get(segment) && !self.in_flight.contains_key(&segment);
            if !windowed {
                if dead {
                    assert!(
                        indexed.iter().all(|p| expected.contains(p)),
                        "stale holder-index entry at purged held segment \
                         {segment}: {indexed:?} not within {expected:?}"
                    );
                } else {
                    assert_eq!(
                        indexed,
                        expected.as_slice(),
                        "holder index drifted from the peer views at segment {segment}"
                    );
                }
            } else if segment >= self.fold_horizon {
                assert!(
                    indexed.is_empty(),
                    "holder index populated beyond the fold horizon \
                     ({} >= {}): {indexed:?}",
                    segment,
                    self.fold_horizon
                );
            } else if !self.holdings.get(segment) || self.in_flight.contains_key(&segment) {
                assert_eq!(
                    indexed,
                    expected.as_slice(),
                    "holder index drifted from the peer views at pickable \
                     folded segment {segment}"
                );
            } else {
                assert!(
                    indexed.iter().all(|p| expected.contains(p)),
                    "stale holder-index entry at held segment {segment}: \
                     {indexed:?} not within {expected:?}"
                );
            }
        }
    }

    /// One pass of the failure defenses; a no-op when defenses are off.
    /// Runs from both pump flavours. Everything here is deterministic and
    /// RNG-free except where it funnels into the normal scheduling path.
    fn defense_pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(defense) = self.cfg.defense else {
            return;
        };
        let now = ctx.now();
        // Manifest retry: without the manifest nothing else can start, so
        // an unanswered request is re-asked after the request timeout.
        if !self.streaming
            && now.saturating_since(self.manifest_asked_at) >= self.cfg.request_timeout
        {
            self.say(ctx, self.cfg.seeder, &Message::ManifestRequest);
            self.manifest_asked_at = now;
            self.report.fault.manifest_retries += 1;
        }
        // Silent-failure detection: a handshaken peer that has said nothing
        // for the inactivity window is treated like a Goodbye. Peers
        // mid-transfer to us are exempt — a multi-second bulk transfer
        // sends no messages, and its failure is reported by the flow layer.
        let deadline = SimDuration::from_secs_f64(defense.inactivity_timeout_secs);
        let mut stale = std::mem::take(&mut self.scratch_peers);
        stale.clear();
        stale.extend(
            Self::peers_merged(&self.views, &self.complete, &self.full_field)
                .filter(|&(peer, look)| {
                    look.handshaken()
                        && !self.is_origin(peer)
                        && now.saturating_since(self.clock(peer).last_heard) >= deadline
                        && !self
                            .in_flight
                            .values()
                            .any(|f| f.source == peer && f.serving)
                })
                .map(|(peer, _)| peer),
        );
        for &peer in &stale {
            self.report.fault.silent_evictions += 1;
            self.forget_view(peer);
            self.uploads.forget_peer(peer);
        }
        // Keepalives: make sure *our* silence never trips a remote
        // inactivity detector.
        let cadence = SimDuration::from_secs_f64(defense.keepalive_secs);
        stale.clear();
        stale.extend(
            Self::peers_merged(&self.views, &self.complete, &self.full_field)
                .filter(|&(peer, look)| {
                    look.handshaken()
                        && !self.is_origin(peer)
                        && now.saturating_since(self.clock(peer).last_spoke) >= cadence
                })
                .map(|(peer, _)| peer),
        );
        for &peer in &stale {
            self.report.fault.keepalives_sent += 1;
            self.say(ctx, peer, &Message::KeepAlive);
        }
        stale.clear();
        self.scratch_peers = stale;
        // CDN fallback: when the first wanted segment has not moved for the
        // fallback window, escalate it to the CDN — the swarm must never
        // deadlock while the CDN is up.
        if self.streaming && !self.holdings.is_complete() {
            let mut frontier = self.next_needed;
            while frontier < self.holdings.len() && self.holdings.get(frontier) {
                frontier += 1;
            }
            if frontier != self.frontier {
                self.frontier = frontier;
                self.frontier_since = now;
            } else if now.saturating_since(self.frontier_since)
                >= SimDuration::from_secs_f64(defense.cdn_fallback_secs)
            {
                // Reset the window whether or not the escalation can act,
                // so an unavailable CDN is retried once per window instead
                // of on every tick.
                self.frontier_since = now;
                self.escalate_to_cdn(ctx, frontier);
            }
        }
        // Watchdog: if the holdings count has not grown for the watchdog
        // window, force a full scheduling pass and record the trip. The
        // dirty mark deliberately bypasses every skip state — a wedged
        // schedule is exactly what the skip logic cannot see.
        if self.streaming && !self.holdings.is_complete() {
            let progress = self.holdings.count_ones();
            if progress != self.progress_mark {
                self.progress_mark = progress;
                self.last_progress_at = now;
            } else if now.saturating_since(self.last_progress_at)
                >= SimDuration::from_secs_f64(defense.watchdog_secs)
            {
                self.report.fault.watchdog_trips += 1;
                self.last_progress_at = now;
                self.sched_state = SchedState::Dirty;
                self.schedule(ctx);
            }
        }
    }

    /// Points the starved `frontier` segment at the CDN: cancels whatever
    /// sick request may sit on it and re-requests from the CDN directly,
    /// re-introducing the CDN first if an outage eviction removed its view.
    fn escalate_to_cdn(&mut self, ctx: &mut Ctx<'_>, frontier: u32) {
        let Some(cdn) = self.cfg.cdn else {
            return;
        };
        if !ctx.is_online(cdn) {
            return; // mid-outage: retry next fallback window
        }
        if !self.views.contains_key(&cdn) {
            self.views.insert(cdn, PeerView::new(self.holdings.len()));
        }
        if !self.views[&cdn].handshaken() {
            // Re-handshake after an outage eviction; the escalation itself
            // retries next window, once the handshake is mutual.
            self.greet(ctx, cdn);
            return;
        }
        if self
            .in_flight
            .get(&frontier)
            .is_some_and(|f| f.source == cdn)
        {
            return; // already escalated; let it run
        }
        if let Some(entry) = self.in_flight.get(&frontier).copied() {
            self.say(ctx, entry.source, &Message::Cancel { index: frontier });
            self.drop_in_flight(frontier);
        }
        // The escalation bypasses the scheduling pass, so fold the segment
        // in here: a later timeout check picks on this in-flight entry and
        // the index must mirror the views for it by then.
        self.ensure_folded(frontier.saturating_add(1));
        self.report.fault.cdn_fallbacks += 1;
        self.request_from(ctx, cdn, frontier);
    }

    /// The legacy maintenance pump: fixed cadence, polls everything.
    fn legacy_pump(&mut self, ctx: &mut Ctx<'_>) {
        #[cfg(debug_assertions)]
        self.audit_holder_index();
        self.playback.advance(ctx.now().as_secs_f64());
        self.check_timeouts(ctx);
        self.defense_pump(ctx);
        self.schedule(ctx);
        // Under tracker discovery, re-announce periodically so late
        // joiners become visible.
        self.pumps += 1;
        if self.cfg.p2p
            && self.cfg.discovery == crate::swarm::DiscoveryMode::Tracker
            && self.pumps.is_multiple_of(10)
            && !self.holdings.is_complete()
        {
            self.say(ctx, self.cfg.seeder, &Message::PeerListRequest);
        }
        if self.playback.state() != PlaybackState::Finished {
            ctx.set_timer(self.cfg.pump_interval, TOKEN_PUMP);
        } else {
            self.pumping = false;
        }
    }

    /// The eventful pump: runs only when a deadline is due (bundle flush,
    /// request timeout, tracker re-announce) or as a low-rate heartbeat,
    /// then re-arms for the earliest outstanding deadline.
    fn eventful_pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now < self.earliest_armed {
            // A stale timer: the pump it was set for was superseded by an
            // earlier-armed fire that already ran and re-armed. Dropping
            // it (no pump, no re-arm) is what retires surplus timers.
            return;
        }
        self.earliest_armed = SimTime::MAX;
        self.pumps += 1;
        #[cfg(debug_assertions)]
        self.audit_holder_index();
        let due_flush = self.flush_at.is_some_and(|t| t <= now);
        let due_timeout = self.in_flight.values().any(|f| {
            !ctx.is_online(f.source)
                || (!f.serving && now.saturating_since(f.requested_at) >= self.cfg.request_timeout)
        });
        let due_announce = self.announces() && self.next_announce_at <= now;
        if due_flush || due_timeout || due_announce {
            self.report.control.pumps_armed += 1;
        } else {
            self.report.control.pumps_heartbeat += 1;
        }
        self.playback.advance(now.as_secs_f64());
        self.check_timeouts(ctx);
        self.defense_pump(ctx);
        if due_flush {
            self.flush_haves(ctx);
        }
        if due_announce {
            self.say(ctx, self.cfg.seeder, &Message::PeerListRequest);
            self.next_announce_at = now + self.cfg.pump_interval.mul_f64(ANNOUNCE_PUMPS);
        }
        self.schedule(ctx);
        self.maybe_announce_window(ctx);
        self.rearm_pump(ctx);
    }

    /// Arms the next pump at the earliest outstanding deadline, falling
    /// back to the heartbeat while playback is unfinished. With playback
    /// done and nothing pending, no timer is set and the simulation may
    /// drain.
    fn rearm_pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut next = SimTime::MAX;
        if let Some(at) = self.flush_at {
            next = next.min(at);
        }
        for f in self.in_flight.values() {
            if !f.serving {
                next = next.min(f.requested_at + self.cfg.request_timeout);
            }
        }
        if self.announces() {
            next = next.min(self.next_announce_at);
        }
        if self.playback.state() != PlaybackState::Finished {
            // The heartbeat keeps stall/finish accounting moving and is
            // the safety net for anything no deadline covers.
            next = next.min(now + self.cfg.pump_interval.mul_f64(HEARTBEAT_PUMPS));
            if !self.defense_tick.is_zero() {
                // The defenses need a steady cadence to observe deadlines.
                next = next.min(now + self.defense_tick);
            }
        }
        if next == SimTime::MAX {
            self.pumping = false;
            return;
        }
        let at = next.max(now);
        self.arm_pump(ctx, at);
    }

    /// Samples this leecher's memory footprint: allocator-visible bytes
    /// behind the structures the memory diet targeted (peer views, the
    /// holder index, and the auxiliary per-peer maps), plus the modeled
    /// pre-diet cost of the same state.
    ///
    /// The model is deliberately simple and applied identically on both
    /// sides: `BTreeMap` node overhead is excluded everywhere (it is the
    /// same before and after the diet), and the pre-diet holder index is
    /// reconstructed from the add/remove counters — without
    /// purge-on-acquire every added-but-not-removed entry would still be
    /// resident.
    pub fn mem_bytes_estimate(&self) -> PeerMemStats {
        use std::mem::size_of;
        let mut view_bytes = 0u64;
        let mut prediet_view_bytes = 0u64;
        for view in self.views.values() {
            view_bytes += view.mem_bytes() as u64;
            prediet_view_bytes += view.prediet_mem_bytes() as u64;
        }
        // Complete peers: the compact record (map payload only, like the
        // other side tables). Pre-diet each of them was an ordinary view —
        // a 64-byte struct plus the eagerly allocated full bitfield heap.
        let complete_bytes =
            (self.complete.len() * (size_of::<NodeId>() + size_of::<CompleteView>())) as u64;
        let full_heap = self.full_field.heap_bytes() as u64;
        let prediet_complete_bytes =
            self.complete.len() as u64 * (PRE_DIET_VIEW_BYTES as u64 + full_heap);
        // Map payloads only; node overhead cancels across the comparison.
        let bans = (self.timeout_bans.len() * (size_of::<u32>() + size_of::<NodeId>())) as u64;
        let health = (self.health.len() * (size_of::<NodeId>() + size_of::<SourceHealth>())) as u64;
        let clocks = (self.clocks.len() * (size_of::<NodeId>() + size_of::<PeerClock>())) as u64;
        let spine = (self.holdings.len() as u64) * size_of::<Vec<NodeId>>() as u64;
        // Pre-diet the index kept every added-but-not-removed entry; the
        // liveness clocks lived inside the 64-byte views, so they do not
        // count as auxiliary state there.
        let retained = self
            .report
            .sched
            .holder_adds
            .saturating_sub(self.report.sched.holder_removes);
        PeerMemStats {
            view_bytes,
            views: self.views.len() as u64,
            holder_bytes: self.holders.heap_bytes() as u64,
            holder_entries: self.holders.live_entries(),
            aux_bytes: bans + health + clocks,
            complete_bytes,
            complete_views: self.complete.len() as u64,
            prediet_bytes: prediet_view_bytes
                + prediet_complete_bytes
                + spine
                + retained * size_of::<NodeId>() as u64
                + bans
                + health,
        }
    }

    fn write_report(&mut self, ctx: &mut Ctx<'_>, departed: bool) {
        if self.reported {
            return;
        }
        self.reported = true;
        self.playback.finish(ctx.now().as_secs_f64());
        self.report.qoe = self.playback.metrics();
        self.report.stalls = self.playback.stalls().to_vec();
        self.report.bytes_uploaded = self.uploads.bytes_uploaded;
        self.report.finished = self.playback.state() == PlaybackState::Finished;
        self.report.departed = departed;
        self.report.mem = self.mem_bytes_estimate();
        let (sparse_sets, dense_sets) = self.holders.census();
        self.report.sched.sparse_sets = sparse_sets;
        self.report.sched.dense_sets = dense_sets;
        self.report.sched.dense_promotions = self.holders.dense_promotions();
        self.report.sched.complete_peers = self.complete.len() as u64;
        self.cfg.sink.borrow_mut().push(self.report.clone());
    }
}

impl NodeBehavior for LeecherNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.join_delay, TOKEN_BOOT);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        match event {
            NodeEvent::Message { from, payload } => self.on_message(ctx, from, &payload),
            NodeEvent::Timer { token: TOKEN_BOOT } => self.boot(ctx),
            NodeEvent::Timer { token: TOKEN_PUMP } => match self.cfg.control_plane {
                ControlPlane::Legacy => self.legacy_pump(ctx),
                ControlPlane::Eventful => self.eventful_pump(ctx),
            },
            NodeEvent::Timer {
                token: TOKEN_DEPART,
            } => {
                self.write_report(ctx, true);
                self.broadcast(ctx, &Message::Goodbye, |_, _| true);
                ctx.go_offline();
            }
            NodeEvent::Timer { token: TOKEN_CRASH } => {
                // Crash-stop: vanish without a Goodbye. The rest of the
                // swarm only learns of it through failed transfers,
                // undeliverable sends, and the inactivity detector.
                self.report.fault.crashes = 1;
                self.write_report(ctx, true);
                ctx.go_offline();
            }
            NodeEvent::Timer { .. } => {}
            NodeEvent::TransferComplete {
                from,
                tag,
                bytes,
                started,
                ..
            } => {
                self.on_segment_complete(ctx, from, tag as u32, bytes, started);
            }
            NodeEvent::UploadComplete { flow, .. } => {
                self.uploads
                    .on_upload_complete(ctx, flow, &self.cfg.segments);
            }
            NodeEvent::TransferFailed {
                flow, peer, tag, ..
            } => {
                if self
                    .uploads
                    .on_transfer_failed(ctx, flow, &self.cfg.segments)
                {
                    return;
                }
                // A download died (the source churned out mid-transfer).
                let index = tag as u32;
                if self.in_flight.get(&index).is_some_and(|f| f.source == peer) {
                    self.drop_in_flight(index);
                    if !ctx.is_online(peer) {
                        self.forget_view(peer);
                    } else {
                        self.record_source_failure(ctx.now(), peer);
                    }
                    if !self.in_flight.is_empty() && !self.holdings.get(index) {
                        // Refill the hole in the current batch directly.
                        if let Some(source) = self.pick_source_for(ctx, index, None) {
                            self.request_from(ctx, source, index);
                        } else if self.cfg.control_plane == ControlPlane::Eventful {
                            // No source for the hole right now, and the
                            // remaining in-flight entries are serving —
                            // nothing would arm a deadline before the
                            // distant heartbeat. Retry on a near-term pump
                            // (the dirty flag is set, so a source that
                            // appears in the meantime fills it even
                            // sooner).
                            let at = ctx.now() + self.cfg.pump_interval;
                            self.arm_pump(ctx, at);
                        }
                    } else {
                        // Either the pool just drained (re-batch from the
                        // frontier) or the failed segment is already held
                        // (a raced duplicate): the freed slot must be
                        // rescheduled either way, not left idle until the
                        // next pump. This matters when an uploader crashes
                        // with several of our requests in flight — every
                        // entry's failure event must make progress.
                        self.schedule(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_sim_end(&mut self, ctx: &mut Ctx<'_>) {
        self.write_report(ctx, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use splicecast_media::{DurationSplicer, Splicer, Video};
    use splicecast_netsim::{star, LinkSpec, NullBehavior, Simulator};
    use splicecast_protocol::encode_to_bytes;

    use crate::policy::{EstimatorKind, PolicyConfig, WEstimate};
    use crate::swarm::DiscoveryMode;

    /// Keeps the leecher inspectable after the simulator takes ownership
    /// of its behaviour box.
    struct Shared(Rc<RefCell<LeecherNode>>);

    impl NodeBehavior for Shared {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.0.borrow_mut().on_start(ctx);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            self.0.borrow_mut().on_event(ctx, event);
        }
        fn on_sim_end(&mut self, ctx: &mut Ctx<'_>) {
            self.0.borrow_mut().on_sim_end(ctx);
        }
    }

    /// Runs one closure when its timer fires.
    struct At<F: FnMut(&mut Ctx<'_>)> {
        after: SimDuration,
        action: F,
    }

    impl<F: FnMut(&mut Ctx<'_>)> NodeBehavior for At<F> {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.after, 0);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Timer { .. } = event {
                (self.action)(ctx);
            }
        }
    }

    fn two_segments() -> Arc<SegmentList> {
        let video = Video::builder().duration_secs(8.0).seed(1).build();
        Arc::new(DurationSplicer::new(4.0).splice(&video))
    }

    fn config(seeder: NodeId, others: Vec<NodeId>, discovery: DiscoveryMode) -> LeecherConfig {
        LeecherConfig {
            index: 0,
            seeder,
            cdn: None,
            others,
            segments: two_segments(),
            policy: PolicyConfig::Fixed(2).build(),
            estimator: BandwidthEstimator::new(EstimatorKind::Oracle, 400_000.0),
            upload_slots: 1,
            // Larger than any deadline below: the tests drive events
            // directly instead of letting the leecher boot.
            join_delay: SimDuration::from_secs_f64(600.0),
            depart_after: None,
            crash_after: None,
            defense: None,
            pump_interval: SimDuration::from_secs_f64(1.0),
            request_timeout: SimDuration::from_secs_f64(4.0),
            resume_buffer_secs: 0.0,
            w_estimate: WEstimate::MeanSegment,
            p2p: true,
            discovery,
            control_plane: ControlPlane::Legacy,
            scheduler: SchedulerMode::Indexed,
            dissemination: DisseminationMode::Full,
            coalesce_window: SimDuration::from_secs_f64(1.0),
            sparse_holders: false,
            sink: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Regression test: a timed-out request was re-pointed at peer B, but
    /// the old source A delivers anyway (its cancel raced with the data).
    /// The stale delivery must not clear B's in-flight entry or decrement
    /// B's outstanding counter while B is still serving, and B's later
    /// delivery must not double-count the segment.
    #[test]
    fn raced_rerequest_keeps_new_source_accounting() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (leecher_id, a_id, b_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        let node = Rc::new(RefCell::new(LeecherNode::new(config(
            a_id,
            vec![b_id],
            DiscoveryMode::Full,
        ))));
        {
            // The timeout path already moved segment 0 from A to B.
            let mut l = node.borrow_mut();
            l.in_flight.insert(
                0,
                InFlight {
                    source: b_id,
                    requested_at: SimTime::ZERO,
                    serving: true,
                },
            );
            l.views.get_mut(&a_id).unwrap().set_handshaken(true);
            let view_b = l.views.get_mut(&b_id).unwrap();
            view_b.set_handshaken(true);
            view_b.outstanding = 1;
        }

        let mut sim = Simulator::new(net.network, 42);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(1.0),
            action: move |ctx| {
                // A's stale delivery of segment 0.
                ctx.start_transfer(leecher_id, 10_000, 0).unwrap();
            },
        }));
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(3.0),
            action: move |ctx| {
                // B's re-requested delivery of the same segment.
                ctx.start_transfer(leecher_id, 10_000, 0).unwrap();
            },
        }));

        // After A's delivery but before B's: the segment is held, yet B's
        // transfer is still running and its accounting must be intact.
        sim.run_until_idle(SimTime::from_secs_f64(2.0));
        {
            let l = node.borrow();
            assert!(
                l.holdings.get(0),
                "the stale delivery still yields the segment"
            );
            assert_eq!(l.report.segments_from_seeder, 1);
            let entry = l
                .in_flight
                .get(&0)
                .expect("B's re-request must stay in flight");
            assert_eq!(
                entry.source, b_id,
                "only the recorded source may clear the entry"
            );
            assert_eq!(
                l.views[&b_id].outstanding, 1,
                "B is still serving; its outstanding counter must not drop"
            );
        }

        // After B's delivery: the entry clears exactly once and the
        // duplicate is not counted again.
        sim.run_until_idle(SimTime::from_secs_f64(10.0));
        {
            let l = node.borrow();
            assert!(l.in_flight.is_empty());
            assert_eq!(l.views[&b_id].outstanding, 0);
            let counted = l.report.segments_from_seeder
                + l.report.segments_from_peers
                + l.report.segments_from_cdn;
            assert_eq!(counted, 1, "the raced duplicate must not be double-counted");
        }
    }

    /// Regression test: a timed-out request must move to a *different*
    /// source when one exists. The old code picked an alternative, cancelled
    /// and dropped the entry — then discarded the pick and let the next
    /// scheduling pass re-choose from the full pool, whose random tie-break
    /// could land right back on the timed-out source.
    #[test]
    fn timed_out_request_moves_to_a_different_source() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 4]);
        let (leecher_id, s_id, a_id, b_id) =
            (net.leaves[0], net.leaves[1], net.leaves[2], net.leaves[3]);

        let mut cfg = config(s_id, vec![a_id, b_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        // A and B introduce themselves and announce segment 0.
        let announce = |after: f64, to: NodeId| At {
            after: SimDuration::from_secs_f64(after),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(to, encode_to_bytes(&hs)).unwrap();
                ctx.send(to, encode_to_bytes(&Message::Have { index: 0 }))
                    .unwrap();
            },
        };

        let mut sim = Simulator::new(net.network, 3);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(announce(0.3, leecher_id))); // A
        sim.add_node(Box::new(announce(0.35, leecher_id))); // B

        // After the introductions: a request to A has sat unserved since
        // time zero, so the 4 s timeout fires on the pump at t = 4.1.
        sim.run_until_idle(SimTime::from_secs_f64(0.5));
        {
            let mut l = node.borrow_mut();
            l.streaming = true;
            l.in_flight.insert(
                0,
                InFlight {
                    source: a_id,
                    requested_at: SimTime::ZERO,
                    serving: false,
                },
            );
            l.views.get_mut(&a_id).unwrap().outstanding = 1;
        }
        sim.run_until_idle(SimTime::from_secs_f64(6.0));

        let l = node.borrow();
        let entry = l
            .in_flight
            .get(&0)
            .expect("the timed-out request must be re-requested");
        assert_eq!(
            entry.source, b_id,
            "re-requesting must move off the timed-out source"
        );
        assert_eq!(l.views[&a_id].outstanding, 0);
        assert_eq!(l.views[&b_id].outstanding, 1);
    }

    /// Regression test: a duplicate delivery from a raced re-request frees
    /// a pool slot via `drop_in_flight`, so the early return must still run
    /// the scheduling pass — the old code skipped it and the slot sat idle
    /// until the next pump.
    #[test]
    fn duplicate_delivery_still_schedules() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 4]);
        let (leecher_id, s_id, a_id, b_id) =
            (net.leaves[0], net.leaves[1], net.leaves[2], net.leaves[3]);

        let mut cfg = config(s_id, vec![a_id, b_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        // Pumps far out of the picture: only the delivery path may schedule.
        cfg.pump_interval = SimDuration::from_secs_f64(50.0);
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        let mut sim = Simulator::new(net.network, 3);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
                                              // A delivers the raced duplicate of segment 0.
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(1.0),
            action: move |ctx: &mut Ctx<'_>| {
                ctx.start_transfer(leecher_id, 10_000, 0).unwrap();
            },
        }));
        // B announces segment 1, the next download the freed slot can take.
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(0.3),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(leecher_id, encode_to_bytes(&hs)).unwrap();
                ctx.send(leecher_id, encode_to_bytes(&Message::Have { index: 1 }))
                    .unwrap();
            },
        }));

        // Segment 0 is already held; A's delivery is the raced duplicate.
        sim.run_until_idle(SimTime::from_secs_f64(0.5));
        {
            let mut l = node.borrow_mut();
            l.streaming = true;
            l.holdings.set(0);
            l.in_flight.insert(
                0,
                InFlight {
                    source: a_id,
                    requested_at: SimTime::ZERO,
                    serving: true,
                },
            );
            l.views.get_mut(&a_id).unwrap().outstanding = 1;
        }
        sim.run_until_idle(SimTime::from_secs_f64(2.0));

        let l = node.borrow();
        assert_eq!(l.views[&a_id].outstanding, 0, "the duplicate clears A");
        let entry = l.in_flight.get(&1).expect(
            "the slot freed by the duplicate delivery must be refilled \
             by the same event, not left idle until the next pump",
        );
        assert_eq!(entry.source, b_id);
    }

    /// Regression test: when a download dies and no alternative source
    /// exists while other downloads are still in flight, the hole is
    /// neither re-requested nor covered by an armed deadline — in eventful
    /// mode nothing runs until the slow heartbeat. A near-term pump must be
    /// armed, and the hole must refill as soon as a source appears.
    #[test]
    fn failed_transfer_hole_arms_retry_and_refills() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 5]);
        let (leecher_id, s_id, a_id, b_id, c_id) = (
            net.leaves[0],
            net.leaves[1],
            net.leaves[2],
            net.leaves[3],
            net.leaves[4],
        );

        let mut cfg = config(s_id, vec![a_id, b_id, c_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        cfg.control_plane = ControlPlane::Eventful;
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        let mut sim = Simulator::new(net.network, 3);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
                                              // A starts serving segment 0, then churns out mid-transfer.
        let mut fired = 0u32;
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(1.0),
            action: move |ctx: &mut Ctx<'_>| {
                fired += 1;
                if fired == 1 {
                    ctx.start_transfer(leecher_id, 5_000_000, 0).unwrap();
                    ctx.set_timer(SimDuration::from_secs_f64(1.0), 0);
                } else {
                    ctx.go_offline();
                }
            },
        }));
        sim.add_node(Box::new(NullBehavior)); // B: serves segment 1 forever
                                              // C: the source that appears later.
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(3.5),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(leecher_id, encode_to_bytes(&hs)).unwrap();
                ctx.send(leecher_id, encode_to_bytes(&Message::Have { index: 0 }))
                    .unwrap();
            },
        }));

        // Both segments in flight and serving: no timeout deadline is
        // armed, so only the 8-interval heartbeat (t = 9.1) is pending.
        sim.run_until_idle(SimTime::from_secs_f64(0.5));
        {
            let mut l = node.borrow_mut();
            l.streaming = true;
            for (index, source) in [(0, a_id), (1, b_id)] {
                l.in_flight.insert(
                    index,
                    InFlight {
                        source,
                        requested_at: SimTime::ZERO,
                        serving: true,
                    },
                );
                l.views.get_mut(&source).unwrap().outstanding = 1;
            }
        }

        // A churns out at t = 2: the transfer fails, no source for the
        // hole exists, and segment 1 is still in flight.
        sim.run_until_idle(SimTime::from_secs_f64(2.5));
        {
            let l = node.borrow();
            assert!(!l.in_flight.contains_key(&0), "the dead download is gone");
            assert!(l.in_flight.contains_key(&1));
            assert!(!l.views.contains_key(&a_id), "the churned source is gone");
            assert!(
                l.earliest_armed.as_secs_f64() < 4.0,
                "a near-term pump must be armed for the unfilled hole, \
                 not the distant heartbeat (armed: {:.2} s)",
                l.earliest_armed.as_secs_f64()
            );
        }

        // C announces segment 0 at t = 3.5: the hole refills immediately.
        sim.run_until_idle(SimTime::from_secs_f64(5.0));
        {
            let l = node.borrow();
            let entry = l
                .in_flight
                .get(&0)
                .expect("the hole must refill once a source appears");
            assert_eq!(entry.source, c_id);
        }
    }

    /// Regression test: under tracker discovery a peer can learn about us
    /// and handshake before we ever heard of it. The inbound handshake must
    /// create a fresh view so the exchange becomes mutual, instead of being
    /// silently dropped.
    #[test]
    fn handshake_from_unknown_peer_creates_view() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (leecher_id, seeder_id, stranger_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        // Tracker discovery: the leecher starts knowing only the seeder.
        let node = Rc::new(RefCell::new(LeecherNode::new(config(
            seeder_id,
            vec![stranger_id],
            DiscoveryMode::Tracker,
        ))));
        assert!(!node.borrow().views.contains_key(&stranger_id));

        let heard: Rc<RefCell<Vec<Message>>> = Rc::new(RefCell::new(Vec::new()));
        struct Stranger {
            leecher: NodeId,
            heard: Rc<RefCell<Vec<Message>>>,
        }
        impl NodeBehavior for Stranger {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs_f64(1.0), 0);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                match event {
                    NodeEvent::Timer { .. } => {
                        let hs = Message::Handshake {
                            peer_id: 99,
                            info_hash: crate::seeder::info_hash_of(""),
                            version: PROTOCOL_VERSION,
                        };
                        ctx.send(self.leecher, encode_to_bytes(&hs)).unwrap();
                        let bf = Message::Bitfield(Bitfield::full(2));
                        ctx.send(self.leecher, encode_to_bytes(&bf)).unwrap();
                    }
                    NodeEvent::Message { payload, .. } => {
                        if let Ok(message) = decode_single(&payload) {
                            self.heard.borrow_mut().push(message);
                        }
                    }
                    _ => {}
                }
            }
        }

        let mut sim = Simulator::new(net.network, 7);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(Stranger {
            leecher: leecher_id,
            heard: heard.clone(),
        }));
        sim.run_until_idle(SimTime::from_secs_f64(5.0));

        let l = node.borrow();
        // The stranger announced a full bitfield, so its freshly created
        // view is immediately summarized into the compact complete map —
        // an implicit holder of everything.
        let record = l
            .complete
            .get(&stranger_id)
            .expect("the unknown complete greeter must get a complete record");
        assert!(
            !l.views.contains_key(&stranger_id),
            "a summarized peer must not keep a live view"
        );
        assert!(record.handshaken());
        assert!(
            record.interested_sent(),
            "holding segments we lack makes it interesting"
        );
        let heard = heard.borrow();
        assert!(
            heard.iter().any(|m| matches!(m, Message::Handshake { .. })),
            "the handshake must become mutual"
        );
        assert!(
            heard.iter().any(|m| matches!(m, Message::Interested)),
            "interest must reach the stranger"
        );
    }

    /// Records every decodable message it receives.
    struct Recorder {
        heard: Rc<RefCell<Vec<Message>>>,
    }

    impl NodeBehavior for Recorder {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Message { payload, .. } = event {
                if let Ok(message) = decode_single(&payload) {
                    self.heard.borrow_mut().push(message);
                }
            }
        }
    }

    /// Regression test (stale-ban hygiene): a one-shot timeout ban names a
    /// source; when that source is evicted — Goodbye, undeliverable send,
    /// or the inactivity detector — the ban must die with it, or the
    /// redraw's `unwrap_or(banned)` fallback could point a request at a
    /// peer that no longer exists.
    #[test]
    fn eviction_clears_stale_timeout_bans() {
        let seeder = NodeId::from_index(2);
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(4);
        let mut l = LeecherNode::new(config(seeder, vec![a, b], DiscoveryMode::Full));
        l.timeout_bans.insert(0, a);
        l.timeout_bans.insert(1, b);
        l.timeout_bans.insert(2, a);
        l.forget_view(a);
        assert!(
            !l.timeout_bans.values().any(|&s| s == a),
            "bans naming the evicted peer must be purged"
        );
        assert_eq!(
            l.timeout_bans.get(&1),
            Some(&b),
            "bans naming other peers must survive"
        );
    }

    /// A crash-stop departure goes offline without a Goodbye and stamps
    /// its report as a crash.
    #[test]
    fn crash_stop_departs_without_goodbye() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (_leecher_id, s_id, w_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        let mut cfg = config(s_id, vec![w_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        cfg.crash_after = Some(SimDuration::from_secs_f64(1.0));
        let sink = cfg.sink.clone();
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        let heard: Rc<RefCell<Vec<Message>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(net.network, 5);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(Recorder {
            heard: heard.clone(),
        }));
        sim.run_until_idle(SimTime::from_secs_f64(5.0));

        let reports = sink.borrow();
        assert_eq!(reports.len(), 1, "the crash must still write a report");
        assert!(reports[0].departed);
        assert_eq!(reports[0].fault.crashes, 1);
        assert!(
            heard
                .borrow()
                .iter()
                .any(|m| matches!(m, Message::Handshake { .. })),
            "the crashed peer was alive before the crash"
        );
        assert!(
            !heard.borrow().iter().any(|m| matches!(m, Message::Goodbye)),
            "a crash-stop must not announce itself"
        );
    }

    /// The inactivity detector evicts a handshaken peer that went silent,
    /// after keepalives kept our own side of the link audibly alive.
    #[test]
    fn silent_peer_is_evicted() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (leecher_id, s_id, a_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        let mut cfg = config(s_id, vec![a_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        cfg.defense = Some(DefenseConfig {
            keepalive_secs: 1.0,
            inactivity_timeout_secs: 3.0,
            backoff_base_secs: 1.0,
            backoff_max_secs: 4.0,
            cdn_fallback_secs: 100.0,
            watchdog_secs: 100.0,
        });
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        let mut sim = Simulator::new(net.network, 5);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(At {
            // A handshakes once, then never speaks again.
            after: SimDuration::from_secs_f64(0.3),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(leecher_id, encode_to_bytes(&hs)).unwrap();
            },
        }));
        sim.run_until_idle(SimTime::from_secs_f64(6.0));

        let l = node.borrow();
        assert!(
            !l.views.contains_key(&a_id),
            "the silent peer must be evicted like a Goodbye"
        );
        assert_eq!(l.report.fault.silent_evictions, 1);
        assert!(
            l.report.fault.keepalives_sent >= 1,
            "keepalives must have gone out before the eviction"
        );
        assert!(
            l.views.contains_key(&s_id),
            "origins are exempt from inactivity eviction"
        );
    }

    /// Exponential backoff bans: each failure doubles the ban window up to
    /// the cap, a success pays one failure back and lifts the active ban,
    /// and origins are never banned.
    #[test]
    fn source_backoff_doubles_caps_and_decays() {
        let seeder = NodeId::from_index(2);
        let a = NodeId::from_index(3);
        let mut cfg = config(seeder, vec![a], DiscoveryMode::Full);
        cfg.defense = Some(DefenseConfig {
            backoff_base_secs: 2.0,
            backoff_max_secs: 10.0,
            ..DefenseConfig::default()
        });
        let mut l = LeecherNode::new(cfg);
        let t0 = SimTime::ZERO;
        for expected in [2.0, 4.0, 8.0, 10.0] {
            l.record_source_failure(t0, a);
            assert_eq!(
                l.health[&a].banned_until,
                t0 + SimDuration::from_secs_f64(expected),
                "ban window must double up to the cap"
            );
        }
        assert_eq!(l.report.fault.backoff_bans, 4);
        l.record_source_success(a);
        assert_eq!(l.health[&a].failures, 3);
        assert_eq!(
            l.health[&a].banned_until,
            SimTime::ZERO,
            "a success lifts the active ban"
        );
        for _ in 0..3 {
            l.record_source_success(a);
        }
        assert!(
            !l.health.contains_key(&a),
            "a fully paid-back source drops out of the health map"
        );
        l.record_source_failure(t0, seeder);
        assert!(
            !l.health.contains_key(&seeder),
            "the seeder is the safety net and is never banned"
        );
    }

    /// Regression test (multi-requester uploader death): when an uploader
    /// crashes while serving *several* of our requests, every failed entry
    /// must make progress — including one whose segment is already held (a
    /// raced duplicate), whose freed slot previously sat idle until the
    /// next pump.
    #[test]
    fn uploader_crash_with_multiple_requesters_refills_every_slot() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 4]);
        let (leecher_id, s_id, a_id, b_id) =
            (net.leaves[0], net.leaves[1], net.leaves[2], net.leaves[3]);

        let mut cfg = config(s_id, vec![a_id, b_id], DiscoveryMode::Full);
        cfg.join_delay = SimDuration::from_secs_f64(0.1);
        // Four segments, so a refill target exists beyond the failed pair.
        let video = Video::builder().duration_secs(8.0).seed(1).build();
        cfg.segments = Arc::new(DurationSplicer::new(2.0).splice(&video));
        // Pumps far out of the picture: only the failure path may act.
        cfg.pump_interval = SimDuration::from_secs_f64(50.0);
        let node = Rc::new(RefCell::new(LeecherNode::new(cfg)));

        let mut sim = Simulator::new(net.network, 3);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
                                              // A: starts serving segments 0 and 1, then crashes mid-transfer.
        let mut fired = 0u32;
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(1.0),
            action: move |ctx: &mut Ctx<'_>| {
                fired += 1;
                if fired == 1 {
                    ctx.start_transfer(leecher_id, 5_000_000, 0).unwrap();
                    ctx.start_transfer(leecher_id, 5_000_000, 1).unwrap();
                    ctx.set_timer(SimDuration::from_secs_f64(1.0), 0);
                } else {
                    ctx.go_offline();
                }
            },
        }));
        // B announces holding segments 0 and 2: the refill sources.
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(0.3),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(leecher_id, encode_to_bytes(&hs)).unwrap();
                for index in [0, 2] {
                    ctx.send(leecher_id, encode_to_bytes(&Message::Have { index }))
                        .unwrap();
                }
            },
        }));

        // Segment 1 already held (its in-flight entry is a raced
        // duplicate); both of A's transfers are running.
        sim.run_until_idle(SimTime::from_secs_f64(0.5));
        {
            let mut l = node.borrow_mut();
            l.streaming = true;
            l.holdings.set(1);
            for index in [0, 1] {
                l.in_flight.insert(
                    index,
                    InFlight {
                        source: a_id,
                        requested_at: SimTime::ZERO,
                        serving: true,
                    },
                );
            }
            l.views.get_mut(&a_id).unwrap().set_handshaken(true);
            l.views.get_mut(&a_id).unwrap().outstanding = 2;
        }

        // A crashes at t = 2: both transfers fail back-to-back.
        sim.run_until_idle(SimTime::from_secs_f64(3.0));
        let l = node.borrow();
        assert!(!l.views.contains_key(&a_id), "the crashed uploader is gone");
        let seg0 = l
            .in_flight
            .get(&0)
            .expect("the unfinished segment must be re-requested");
        assert_eq!(seg0.source, b_id);
        let seg2 = l.in_flight.get(&2).expect(
            "the slot freed by the held duplicate's failure must be \
             rescheduled by the same event, not left idle until the next pump",
        );
        assert_eq!(seg2.source, b_id);
        assert!(!l.in_flight.contains_key(&1), "the held duplicate is gone");
    }

    /// Sends scripted message batches at staged times (each delay relative
    /// to the previous stage) and records every decodable reply.
    struct ScriptedPeer {
        to: NodeId,
        stages: Vec<(SimDuration, Vec<Message>)>,
        next: usize,
        heard: Rc<RefCell<Vec<Message>>>,
    }

    impl NodeBehavior for ScriptedPeer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((after, _)) = self.stages.first() {
                ctx.set_timer(*after, 0);
            }
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            match event {
                NodeEvent::Timer { .. } => {
                    let (_, batch) = &self.stages[self.next];
                    for message in batch {
                        ctx.send(self.to, encode_to_bytes(message)).unwrap();
                    }
                    self.next += 1;
                    if let Some((after, _)) = self.stages.get(self.next) {
                        ctx.set_timer(*after, 0);
                    }
                }
                NodeEvent::Message { payload, .. } => {
                    if let Ok(message) = decode_single(&payload) {
                        self.heard.borrow_mut().push(message);
                    }
                }
                _ => {}
            }
        }
    }

    fn windowed_config(seeder: NodeId, others: Vec<NodeId>) -> LeecherConfig {
        let mut cfg = config(seeder, others, DiscoveryMode::Full);
        cfg.control_plane = ControlPlane::Eventful;
        cfg.dissemination = DisseminationMode::Windowed;
        cfg
    }

    /// Windowed dissemination parks announcements beyond the fold horizon
    /// in the per-peer view only; `ensure_folded` mirrors them into the
    /// holder index once the scheduling frontier actually reaches them.
    #[test]
    fn windowed_haves_defer_then_fold_on_demand() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (leecher_id, s_id, a_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        let node = Rc::new(RefCell::new(LeecherNode::new(windowed_config(
            s_id,
            vec![a_id],
        ))));

        let mut sim = Simulator::new(net.network, 5);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(0.3),
            action: move |ctx: &mut Ctx<'_>| {
                let hs = Message::Handshake {
                    peer_id: 9,
                    info_hash: crate::seeder::info_hash_of(""),
                    version: PROTOCOL_VERSION,
                };
                ctx.send(leecher_id, encode_to_bytes(&hs)).unwrap();
                ctx.send(leecher_id, encode_to_bytes(&Message::Have { index: 1 }))
                    .unwrap();
            },
        }));
        sim.run_until_idle(SimTime::from_secs_f64(1.0));

        {
            let l = node.borrow();
            assert!(
                l.views[&a_id].holdings.get(1),
                "the announcement must land in the view"
            );
            assert_eq!(
                l.holders.of(1).count(),
                0,
                "beyond the fold horizon: no holder-index insert"
            );
            assert_eq!(l.report.dissem.deferred_indices, 1);
            assert_eq!(l.report.sched.holder_adds, 0);
        }

        let mut l = node.borrow_mut();
        l.ensure_folded(2);
        assert_eq!(
            l.holders.of(1).collect::<Vec<_>>(),
            &[a_id][..],
            "the fold must mirror the parked announcement"
        );
        assert_eq!(l.report.dissem.fold_inserts, 1);
        assert_eq!(l.report.sched.holder_adds, 1);
    }

    /// An `InterestWindow` that advances past a subscriber's previously
    /// recorded window triggers a targeted catch-up bundle of everything we
    /// hold in the newly revealed range.
    #[test]
    fn window_advance_triggers_catchup_bundle() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 3]);
        let (leecher_id, s_id, b_id) = (net.leaves[0], net.leaves[1], net.leaves[2]);

        let node = Rc::new(RefCell::new(LeecherNode::new(windowed_config(
            s_id,
            vec![b_id],
        ))));

        let heard: Rc<RefCell<Vec<Message>>> = Rc::new(RefCell::new(Vec::new()));
        let hs = Message::Handshake {
            peer_id: 9,
            info_hash: crate::seeder::info_hash_of(""),
            version: PROTOCOL_VERSION,
        };
        let mut sim = Simulator::new(net.network, 5);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
        sim.add_node(Box::new(ScriptedPeer {
            to: leecher_id,
            stages: vec![
                // B introduces itself wanting only segment 0 — the default
                // full-stream window shrinks, nothing to catch up.
                (
                    SimDuration::from_secs_f64(0.3),
                    vec![hs, Message::InterestWindow { start: 0, end: 1 }],
                ),
                // B's frontier advances to segment 1, which we acquired
                // while it was outside B's window.
                (
                    SimDuration::from_secs_f64(1.0),
                    vec![Message::InterestWindow { start: 1, end: 2 }],
                ),
            ],
            next: 0,
            heard: heard.clone(),
        }));

        sim.run_until_idle(SimTime::from_secs_f64(0.6));
        {
            let mut l = node.borrow_mut();
            assert_eq!(
                (l.views[&b_id].win_lo, l.views[&b_id].win_hi),
                (0, 1),
                "the first announcement must shrink the default window"
            );
            assert_eq!(l.report.dissem.catchup_bundles, 0);
            l.holdings.set(1);
        }
        sim.run_until_idle(SimTime::from_secs_f64(3.0));

        let l = node.borrow();
        assert_eq!((l.views[&b_id].win_lo, l.views[&b_id].win_hi), (1, 2));
        assert_eq!(l.report.dissem.catchup_bundles, 1);
        assert_eq!(l.report.dissem.catchup_haves, 1);
        assert!(
            heard
                .borrow()
                .iter()
                .any(|m| matches!(m, Message::HaveBundle { indices } if indices == &[1])),
            "the revealed segment must be caught up to B"
        );
    }

    /// A flushed Have bundle whose every index falls outside a subscriber's
    /// announced interest window is suppressed for that subscriber, while
    /// the acquisition still advances our own announced window.
    #[test]
    fn have_bundles_outside_the_peer_window_are_suppressed() {
        let spec = LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.0);
        let net = star(&[spec; 4]);
        let (leecher_id, s_id, d_id, b_id) =
            (net.leaves[0], net.leaves[1], net.leaves[2], net.leaves[3]);

        let node = Rc::new(RefCell::new(LeecherNode::new(windowed_config(
            s_id,
            vec![d_id, b_id],
        ))));

        let heard: Rc<RefCell<Vec<Message>>> = Rc::new(RefCell::new(Vec::new()));
        let hs = Message::Handshake {
            peer_id: 9,
            info_hash: crate::seeder::info_hash_of(""),
            version: PROTOCOL_VERSION,
        };
        let mut sim = Simulator::new(net.network, 5);
        sim.add_node(Box::new(NullBehavior)); // hub
        sim.add_node(Box::new(Shared(node.clone())));
        sim.add_node(Box::new(NullBehavior)); // seeder stand-in
                                              // D: delivers segment 1 mid-run.
        sim.add_node(Box::new(At {
            after: SimDuration::from_secs_f64(1.0),
            action: move |ctx: &mut Ctx<'_>| {
                ctx.start_transfer(leecher_id, 10_000, 1).unwrap();
            },
        }));
        // B: subscribes to segment 0 only, then listens.
        sim.add_node(Box::new(ScriptedPeer {
            to: leecher_id,
            stages: vec![(
                SimDuration::from_secs_f64(0.3),
                vec![hs, Message::InterestWindow { start: 0, end: 1 }],
            )],
            next: 0,
            heard: heard.clone(),
        }));

        sim.run_until_idle(SimTime::from_secs_f64(0.5));
        {
            let mut l = node.borrow_mut();
            l.streaming = true;
            l.in_flight.insert(
                1,
                InFlight {
                    source: d_id,
                    requested_at: SimTime::ZERO,
                    serving: true,
                },
            );
            l.views.get_mut(&d_id).unwrap().set_handshaken(true);
            l.views.get_mut(&d_id).unwrap().outstanding = 1;
        }
        sim.run_until_idle(SimTime::from_secs_f64(6.0));

        let l = node.borrow();
        assert!(l.holdings.get(1), "the delivery must land");
        assert!(
            l.report.dissem.window_suppressed >= 1,
            "the bundle for segment 1 must be window-suppressed for B"
        );
        assert!(
            !heard
                .borrow()
                .iter()
                .any(|m| matches!(m, Message::Have { .. } | Message::HaveBundle { .. })),
            "B must hear no availability for segments outside its window"
        );
        assert!(
            heard
                .borrow()
                .iter()
                .any(|m| matches!(m, Message::InterestWindow { .. })),
            "our own window announcement must still reach B"
        );
    }
}
