//! Hybrid-CDN support (§IV): an origin with a fat pipe that serves
//! segments one at a time per peer.

use serde::{Deserialize, Serialize};

/// Configuration of the CDN node added to the star in hybrid mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnConfig {
    /// Access-link capacity of the CDN node, bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way latency from a peer to the CDN, seconds.
    pub one_way_latency_secs: f64,
    /// Concurrent uploads the CDN will serve.
    pub upload_slots: usize,
}

impl Default for CdnConfig {
    fn default() -> Self {
        // A modest edge cache: 10 Mbps, 100 ms away, 32 parallel streams.
        CdnConfig {
            bandwidth_bytes_per_sec: 1_250_000.0,
            one_way_latency_secs: 0.1,
            upload_slots: 32,
        }
    }
}

impl CdnConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth/slots or negative latency.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_bytes_per_sec > 0.0,
            "cdn bandwidth must be positive"
        );
        assert!(
            self.one_way_latency_secs >= 0.0,
            "cdn latency must be non-negative"
        );
        assert!(self.upload_slots > 0, "cdn upload slots must be positive");
    }
}

/// The §IV bound: when a CDN serves the video one segment at a time, a
/// segment must be at most `B·T` bytes or fetching it will outlast the
/// buffer.
pub fn max_cdn_segment_bytes(bandwidth_bytes_per_sec: f64, buffered_secs: f64) -> u64 {
    // NaN inputs fall into the guard like non-positive ones.
    if bandwidth_bytes_per_sec.is_nan()
        || bandwidth_bytes_per_sec <= 0.0
        || buffered_secs.is_nan()
        || buffered_secs <= 0.0
    {
        return 0;
    }
    (bandwidth_bytes_per_sec * buffered_secs).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CdnConfig::default().validate();
    }

    #[test]
    fn segment_bound_is_b_times_t() {
        assert_eq!(max_cdn_segment_bytes(128_000.0, 4.0), 512_000);
        assert_eq!(max_cdn_segment_bytes(128_000.0, 0.0), 0);
        assert_eq!(max_cdn_segment_bytes(0.0, 4.0), 0);
        assert_eq!(max_cdn_segment_bytes(f64::NAN, 4.0), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        CdnConfig {
            bandwidth_bytes_per_sec: 0.0,
            ..CdnConfig::default()
        }
        .validate();
    }
}
