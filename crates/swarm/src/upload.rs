//! The upload side shared by seeders, leechers, and CDN nodes.

use std::collections::HashMap;

use bytes::Bytes;
use splicecast_media::SegmentList;
use splicecast_netsim::{Ctx, FlowId, NodeId};
use splicecast_protocol::{encode_to_bytes, EncodeBuf, Message};

use crate::peer::{UploadManager, UploadRequest};

/// A duplicate upload (second concurrent copy of the same segment) is
/// admitted only when the busiest link toward the requester is running
/// below this utilization.
const DUP_UTILIZATION_MAX: f64 = 0.6;

/// Serves segment requests over bounded upload slots.
///
/// On `Request`, a free slot means immediate service (`Unchoke` +
/// `SegmentHeader` + bulk transfer); otherwise the request queues and the
/// requester is told `Choke`. Slots are released on upload completion or
/// failure, immediately serving the next queued request.
#[derive(Debug)]
pub struct UploadSide {
    mgr: UploadManager,
    active_flows: HashMap<FlowId, UploadRequest>,
    /// Peers we have served before — the connection to them is kept alive,
    /// so further segments skip the TCP handshake.
    warm_peers: std::collections::HashSet<NodeId>,
    /// Payload bytes of completed uploads.
    pub bytes_uploaded: u64,
    /// Scratch buffer for per-request frames (`SegmentHeader`).
    wire_buf: EncodeBuf,
    /// `Choke`/`Unchoke` never change: encoded once, cloned per send
    /// (a `Bytes` clone is a reference-count bump).
    choke_wire: Bytes,
    unchoke_wire: Bytes,
}

impl UploadSide {
    /// Creates an upload side with the given slot count.
    pub fn new(slots: usize) -> Self {
        UploadSide {
            mgr: UploadManager::new(slots),
            active_flows: HashMap::new(),
            warm_peers: std::collections::HashSet::new(),
            bytes_uploaded: 0,
            wire_buf: EncodeBuf::new(),
            choke_wire: encode_to_bytes(&Message::Choke),
            unchoke_wire: encode_to_bytes(&Message::Unchoke),
        }
    }

    /// Uploads currently in flight.
    pub fn active(&self) -> usize {
        self.mgr.active()
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.mgr.queued()
    }

    /// True when no active upload is already pushing `segment`.
    fn segment_idle(&self, segment: u32) -> bool {
        !self.active_flows.values().any(|r| r.segment == segment)
    }

    /// Handles an incoming `Request`. `have` guards against requests for
    /// segments this node does not hold (ignored — the requester's timeout
    /// path recovers).
    ///
    /// Requests for a segment that is *already being uploaded* queue even
    /// when slots are free (super-seeding style deduplication): pushing
    /// two copies of the same bytes halves the rate of both, while the
    /// second requester will shortly have a fresh replica to fetch from.
    pub fn on_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        index: u32,
        segments: &SegmentList,
        have: bool,
    ) {
        if !have || index as usize >= segments.len() {
            return;
        }
        let request = UploadRequest {
            peer: from,
            segment: index,
        };
        // Duplicates are also admitted while the path to the requester has
        // spare capacity — at a fat link, pushing a second copy costs
        // nothing and halves the swarm's replication latency.
        let admissible =
            self.segment_idle(index) || ctx.path_utilization(from) < DUP_UTILIZATION_MAX;
        if self.mgr.offer(request, |_| admissible) {
            self.serve(ctx, request, segments);
        } else {
            let _ = ctx.send(from, self.choke_wire.clone());
        }
    }

    /// Handles a `Cancel`: drops matching queued requests (an in-flight
    /// upload is left to finish, as in BitTorrent).
    pub fn on_cancel(&mut self, from: NodeId, index: u32) {
        self.mgr
            .drop_queued(|r| r.peer == from && r.segment == index);
    }

    /// Handles `UploadComplete`. Returns `true` when the flow was one of
    /// ours (an upload), after releasing the slot and serving the queue.
    pub fn on_upload_complete(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        segments: &SegmentList,
    ) -> bool {
        let Some(request) = self.active_flows.remove(&flow) else {
            return false;
        };
        self.bytes_uploaded += segments[request.segment as usize].bytes;
        self.release_and_continue(ctx, segments);
        true
    }

    /// Handles `TransferFailed` for the upload side. Returns `true` when
    /// the failed flow was one of our uploads.
    pub fn on_transfer_failed(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        segments: &SegmentList,
    ) -> bool {
        if self.active_flows.remove(&flow).is_none() {
            return false;
        }
        self.release_and_continue(ctx, segments);
        true
    }

    /// Drops everything involving a departed peer (queued requests only;
    /// in-flight flows fail on their own through the simulator).
    pub fn forget_peer(&mut self, peer: NodeId) {
        self.mgr.drop_queued(|r| r.peer == peer);
        self.warm_peers.remove(&peer);
    }

    fn pop_serviceable(&mut self, ctx: &mut Ctx<'_>) -> Option<UploadRequest> {
        // Prefer requests for segments nobody is currently receiving (they
        // grow the number of replicas); serve duplicates only to requesters
        // whose path still has spare capacity. The active set is at most
        // `slots` entries, so a linear scan beats building hash sets.
        let active_flows = &self.active_flows;
        self.mgr.release_preferring(
            |r| !active_flows.values().any(|a| a.segment == r.segment),
            |r| ctx.path_utilization(r.peer) < DUP_UTILIZATION_MAX,
        )
    }

    fn release_and_continue(&mut self, ctx: &mut Ctx<'_>, segments: &SegmentList) {
        if let Some(next) = self.pop_serviceable(ctx) {
            self.serve(ctx, next, segments);
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>, request: UploadRequest, segments: &SegmentList) {
        // The requester may have gone offline while queued: skip down the
        // queue until a serviceable request or an empty queue.
        let mut current = Some(request);
        while let Some(req) = current {
            let bytes = segments[req.segment as usize].bytes;
            let header = Message::SegmentHeader {
                index: req.segment,
                bytes,
            };
            let reachable = ctx.send(req.peer, self.unchoke_wire.clone()).is_ok()
                && ctx.send(req.peer, self.wire_buf.wire(&header)).is_ok();
            if reachable {
                let started = if self.warm_peers.contains(&req.peer) {
                    ctx.start_transfer_warm(req.peer, bytes, u64::from(req.segment))
                } else {
                    ctx.start_transfer(req.peer, bytes, u64::from(req.segment))
                };
                match started {
                    Ok(flow) => {
                        self.warm_peers.insert(req.peer);
                        self.active_flows.insert(flow, req);
                        return;
                    }
                    Err(_) => { /* fall through to release */ }
                }
            }
            current = self.pop_serviceable(ctx);
        }
    }
}
