//! The seeder: holds the whole video and serves manifest + segments.

use std::sync::Arc;

use bytes::Bytes;

use splicecast_media::{Manifest, SegmentList};
use splicecast_netsim::{Ctx, NodeBehavior, NodeEvent, NodeId};
use splicecast_protocol::{decode_single, Bitfield, EncodeBuf, Message, PROTOCOL_VERSION};

use crate::upload::UploadSide;

/// Derives the 20-byte swarm identifier from the manifest text (stands in
/// for the SHA-1 infohash of BitTorrent).
pub fn info_hash_of(manifest_text: &str) -> [u8; 20] {
    let mut hash = [0u8; 20];
    let mut state: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for (i, byte) in manifest_text.bytes().enumerate() {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x1000_0000_01b3);
        hash[i % 20] ^= (state >> 24) as u8;
    }
    // Spread the final state across the tail so short inputs still fill it.
    for (i, slot) in hash.iter_mut().enumerate() {
        *slot ^= (state.rotate_left((i as u32 * 7) % 64) & 0xFF) as u8;
    }
    hash
}

/// The origin node: starts with every segment, answers manifest requests,
/// handshakes, and segment requests. Also used as the CDN node in hybrid
/// mode (a CDN is an origin with a fatter pipe).
#[derive(Debug)]
pub struct SeederNode {
    segments: Arc<SegmentList>,
    manifest_wire: Bytes,
    info_hash: [u8; 20],
    peer_id: u64,
    holdings: Bitfield,
    uploads: UploadSide,
    /// Scratch buffer for outgoing frames (reused across sends).
    wire_buf: EncodeBuf,
    /// Swarm members in join order — the seeder doubles as the tracker
    /// (the paper: "each peer contacts the seeder and gets different
    /// information about the video and the swarm").
    members: Vec<NodeId>,
}

impl SeederNode {
    /// Creates a seeder for the given splice. Accepts either an owned
    /// [`SegmentList`] or a pre-shared `Arc<SegmentList>`.
    pub fn new(segments: impl Into<Arc<SegmentList>>, peer_id: u64, upload_slots: usize) -> Self {
        let segments = segments.into();
        let manifest = Manifest::from_segments("video", &segments);
        let text = manifest.to_m3u8();
        let info_hash = info_hash_of(&text);
        let holdings = Bitfield::full(segments.len() as u32);
        SeederNode {
            segments,
            manifest_wire: Bytes::from(text.into_bytes()),
            info_hash,
            peer_id,
            holdings,
            uploads: UploadSide::new(upload_slots),
            wire_buf: EncodeBuf::new(),
            members: Vec::new(),
        }
    }

    /// The swarm identifier derived from the manifest.
    pub fn info_hash(&self) -> [u8; 20] {
        self.info_hash
    }

    /// Total payload bytes uploaded so far.
    pub fn bytes_uploaded(&self) -> u64 {
        self.uploads.bytes_uploaded
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        let Ok(message) = decode_single(payload) else {
            return; // a malformed peer is ignored, not crashed on
        };
        match message {
            Message::ManifestRequest => {
                let reply = Message::ManifestData {
                    payload: self.manifest_wire.clone(),
                };
                let _ = ctx.send(from, self.wire_buf.wire(&reply));
            }
            Message::Handshake { .. } => {
                if !self.members.contains(&from) {
                    self.members.push(from);
                }
                let hs = Message::Handshake {
                    peer_id: self.peer_id,
                    info_hash: self.info_hash,
                    version: PROTOCOL_VERSION,
                };
                let _ = ctx.send(from, self.wire_buf.wire(&hs));
                let bitfield = Message::Bitfield(self.holdings.clone());
                let _ = ctx.send(from, self.wire_buf.wire(&bitfield));
            }
            Message::PeerListRequest => {
                let peers: Vec<u32> = self
                    .members
                    .iter()
                    .filter(|&&p| p != from && ctx.is_online(p))
                    .take(64)
                    .map(|p| p.index() as u32)
                    .collect();
                let _ = ctx.send(from, self.wire_buf.wire(&Message::PeerList { peers }));
            }
            Message::Request { index } => {
                self.uploads
                    .on_request(ctx, from, index, &self.segments, true);
            }
            Message::Cancel { index } => self.uploads.on_cancel(from, index),
            Message::Goodbye => {
                self.members.retain(|&p| p != from);
                self.uploads.forget_peer(from);
            }
            // Interest/choke signalling and keep-alives need no reaction
            // from an origin that always serves.
            _ => {}
        }
    }
}

impl NodeBehavior for SeederNode {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        match event {
            NodeEvent::Message { from, payload } => self.on_message(ctx, from, &payload),
            NodeEvent::UploadComplete { flow, .. } => {
                self.uploads.on_upload_complete(ctx, flow, &self.segments);
            }
            NodeEvent::TransferFailed { flow, .. } => {
                self.uploads.on_transfer_failed(ctx, flow, &self.segments);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splicecast_media::{DurationSplicer, Splicer, Video};

    #[test]
    fn info_hash_is_stable_and_content_sensitive() {
        let a = info_hash_of("#EXTM3U\nseg0\n");
        let b = info_hash_of("#EXTM3U\nseg0\n");
        let c = info_hash_of("#EXTM3U\nseg1\n");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 20]);
    }

    #[test]
    fn seeder_holds_everything() {
        let v = Video::builder().duration_secs(8.0).seed(1).build();
        let segs = DurationSplicer::new(2.0).splice(&v);
        let seeder = SeederNode::new(segs, 99, 4);
        assert!(seeder.holdings.is_complete());
        assert_eq!(seeder.bytes_uploaded(), 0);
    }
}
