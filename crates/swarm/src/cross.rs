//! Cross traffic: competing flows on the viewers' access links.
//!
//! The paper's §VIII asks for exactly this experiment: "we also should
//! experiment how the splicing works in case of competing flows and high
//! congestion environment". A [`CrossTrafficNode`] is a bulk-download
//! server off to the side of the star that keeps a configurable number of
//! long-lived transfers running *toward every viewer*, so the stream has
//! to share each access link with unrelated traffic.

use serde::{Deserialize, Serialize};

use splicecast_netsim::{Ctx, NodeBehavior, NodeEvent, NodeId, SimDuration};

/// Configuration of the background load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossTrafficConfig {
    /// Concurrent competing downloads per viewer.
    pub flows_per_peer: usize,
    /// Size of each background transfer; a finished transfer is restarted
    /// immediately while the load window is open.
    pub transfer_bytes: u64,
    /// How long the background load keeps restarting, seconds (bounded so
    /// runs terminate).
    pub duration_secs: f64,
}

impl Default for CrossTrafficConfig {
    fn default() -> Self {
        CrossTrafficConfig {
            flows_per_peer: 1,
            transfer_bytes: 2_000_000,
            duration_secs: 300.0,
        }
    }
}

impl CrossTrafficConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero flows/bytes or a non-positive duration.
    pub fn validate(&self) {
        assert!(
            self.flows_per_peer > 0,
            "cross traffic needs at least one flow per peer"
        );
        assert!(
            self.transfer_bytes > 0,
            "cross-traffic transfers need bytes"
        );
        assert!(
            self.duration_secs > 0.0,
            "cross-traffic duration must be positive"
        );
    }
}

const TOKEN_STOP: u64 = 1;

/// The background bulk server.
#[derive(Debug)]
pub struct CrossTrafficNode {
    targets: Vec<NodeId>,
    config: CrossTrafficConfig,
    active: bool,
}

impl CrossTrafficNode {
    /// Creates a server that loads every node in `targets`.
    pub fn new(targets: Vec<NodeId>, config: CrossTrafficConfig) -> Self {
        config.validate();
        CrossTrafficNode {
            targets,
            config,
            active: true,
        }
    }
}

impl NodeBehavior for CrossTrafficNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for &target in &self.targets {
            for _ in 0..self.config.flows_per_peer {
                let _ =
                    ctx.start_transfer(target, self.config.transfer_bytes, target.index() as u64);
            }
        }
        ctx.set_timer(
            SimDuration::from_secs_f64(self.config.duration_secs),
            TOKEN_STOP,
        );
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        match event {
            NodeEvent::Timer { token: TOKEN_STOP } => self.active = false,
            NodeEvent::UploadComplete { to, .. } if self.active && ctx.is_online(to) => {
                let _ = ctx.start_transfer(to, self.config.transfer_bytes, to.index() as u64);
            }
            // A failed upload means the viewer churned out: stop loading it.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CrossTrafficConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_panics() {
        CrossTrafficConfig {
            flows_per_peer: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        CrossTrafficConfig {
            duration_secs: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
