//! Fault-injection plans and peer-side failure defenses.
//!
//! Graceful churn ([`crate::ChurnConfig`]) models peers that *announce*
//! their departure with a Goodbye. Real swarms also fail silently and
//! partially: peers crash-stop, control messages get lost or delayed,
//! access links degrade, and the CDN blinks. [`FaultPlanConfig`] describes
//! a deterministic, seeded schedule of such faults; [`DefenseConfig`]
//! describes the peer-side countermeasures (inactivity eviction, keepalives,
//! exponential source backoff, CDN fallback, a liveness watchdog). Both are
//! optional, and a run with neither configured is bit-identical to one
//! predating their existence.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Crash-stop churn: a fraction of leechers vanish *without* a Goodbye,
/// leaving every other peer's view of them stale until defenses (or
/// timeouts) notice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashChurnConfig {
    /// Fraction of leechers that will crash-stop before finishing.
    pub crash_fraction: f64,
    /// Mean uptime of a crashing peer after joining, seconds
    /// (exponentially distributed).
    pub mean_uptime_secs: f64,
}

impl CrashChurnConfig {
    /// Creates a crash-churn config.
    ///
    /// # Panics
    ///
    /// Panics if `crash_fraction` is outside `[0, 1]` or the uptime is not
    /// positive.
    pub fn new(crash_fraction: f64, mean_uptime_secs: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_fraction),
            "crash fraction must be in [0,1], got {crash_fraction}"
        );
        assert!(mean_uptime_secs > 0.0, "mean uptime must be positive");
        CrashChurnConfig {
            crash_fraction,
            mean_uptime_secs,
        }
    }

    /// Samples a crash delay (seconds after joining) for each of `n_peers`
    /// leechers; `None` means the peer never crashes.
    pub fn sample_crashes(&self, n_peers: usize, rng: &mut StdRng) -> Vec<Option<f64>> {
        (0..n_peers)
            .map(|_| {
                if rng.gen::<f64>() < self.crash_fraction {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    Some(-u.ln() * self.mean_uptime_secs)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Flapping access links: windows during which a random leecher's access
/// link runs at a degraded rate before recovering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlapConfig {
    /// Number of degradation windows to schedule.
    pub count: usize,
    /// Link rate during a window, bytes per second.
    pub degraded_bytes_per_sec: f64,
    /// Length of each window, seconds.
    pub duration_secs: f64,
    /// Window start times are drawn uniformly from `[0, window_secs)`.
    pub window_secs: f64,
}

impl LinkFlapConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates, durations, or window.
    pub fn validate(&self) {
        assert!(
            self.degraded_bytes_per_sec > 0.0,
            "degraded rate must be positive"
        );
        assert!(self.duration_secs > 0.0, "flap duration must be positive");
        assert!(self.window_secs > 0.0, "flap window must be positive");
    }

    /// Samples `(leecher index, start_secs)` for each scheduled flap.
    pub fn sample_flaps(&self, n_leechers: usize, rng: &mut StdRng) -> Vec<(usize, f64)> {
        (0..self.count)
            .map(|_| {
                let leecher = rng.gen_range(0..n_leechers);
                let start = rng.gen_range(0.0..self.window_secs);
                (leecher, start)
            })
            .collect()
    }
}

/// CDN outage intervals: windows during which the CDN node is offline
/// (flows fail, requests to it error out).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnOutageConfig {
    /// Number of outage windows to schedule.
    pub count: usize,
    /// Length of each outage, seconds.
    pub duration_secs: f64,
    /// Outage start times are drawn uniformly from `[0, window_secs)`.
    pub window_secs: f64,
}

impl CdnOutageConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on non-positive durations or window.
    pub fn validate(&self) {
        assert!(self.duration_secs > 0.0, "outage duration must be positive");
        assert!(self.window_secs > 0.0, "outage window must be positive");
    }

    /// Samples the start time of each scheduled outage.
    pub fn sample_outages(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.count)
            .map(|_| rng.gen_range(0.0..self.window_secs))
            .collect()
    }
}

/// A deterministic fault-injection plan for one scenario. All sampling
/// derives from the run's setup RNG (and the message-fault plane's own
/// seeded stream), so the same seed replays the same fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Crash-stop departures (no Goodbye), if any.
    #[serde(default)]
    pub crash: Option<CrashChurnConfig>,
    /// Probability that a droppable control message (Have/HaveBundle/
    /// Bitfield/Request) silently vanishes.
    #[serde(default)]
    pub message_loss: f64,
    /// Probability that a surviving droppable message gets extra delay.
    #[serde(default)]
    pub message_delay_prob: f64,
    /// Upper bound of the injected extra delay, seconds.
    #[serde(default)]
    pub message_delay_max_secs: f64,
    /// Flapping access-link windows, if any.
    #[serde(default)]
    pub link_flaps: Option<LinkFlapConfig>,
    /// CDN outage windows, if any (requires a CDN in the scenario).
    #[serde(default)]
    pub cdn_outages: Option<CdnOutageConfig>,
}

impl FaultPlanConfig {
    /// Validates the plan against the scenario.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities, invalid sub-configs, or CDN
    /// outages without a CDN.
    pub fn validate(&self, has_cdn: bool) {
        assert!(
            (0.0..=1.0).contains(&self.message_loss),
            "message loss must be in [0,1], got {}",
            self.message_loss
        );
        assert!(
            (0.0..=1.0).contains(&self.message_delay_prob),
            "message delay probability must be in [0,1], got {}",
            self.message_delay_prob
        );
        assert!(
            self.message_delay_max_secs >= 0.0,
            "message delay bound must be non-negative"
        );
        if let Some(crash) = &self.crash {
            // Re-run the constructor checks (the struct is also built via
            // deserialization and literals).
            let _ = CrashChurnConfig::new(crash.crash_fraction, crash.mean_uptime_secs);
        }
        if let Some(flaps) = &self.link_flaps {
            flaps.validate();
        }
        if let Some(outages) = &self.cdn_outages {
            outages.validate();
            assert!(
                has_cdn || outages.count == 0,
                "CDN outages require a CDN in the scenario"
            );
        }
    }
}

/// Peer-side failure defenses. Every deadline is in seconds of simulated
/// time; all defenses are off unless this config is present on the swarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Send a `KeepAlive` to a handshaken peer we have not written to for
    /// this long (keeps quiet-but-healthy links from tripping the peer's
    /// inactivity detector).
    pub keepalive_secs: f64,
    /// Evict a handshaken non-origin peer we have not heard from for this
    /// long — exactly like a Goodbye (views, holder index, upload queue).
    pub inactivity_timeout_secs: f64,
    /// First backoff-ban window after a source failure; doubles per
    /// consecutive failure.
    pub backoff_base_secs: f64,
    /// Ceiling of the backoff-ban window.
    pub backoff_max_secs: f64,
    /// Escalate a segment to the CDN when the download frontier has not
    /// advanced for this long (graceful degradation: the swarm never
    /// deadlocks while the CDN is up).
    pub cdn_fallback_secs: f64,
    /// Liveness watchdog: a peer making no download progress for this long
    /// trips a diagnosable counter and forces a fresh scheduling pass.
    pub watchdog_secs: f64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            keepalive_secs: 10.0,
            inactivity_timeout_secs: 30.0,
            backoff_base_secs: 5.0,
            backoff_max_secs: 60.0,
            cdn_fallback_secs: 15.0,
            watchdog_secs: 45.0,
        }
    }
}

impl DefenseConfig {
    /// Validates the deadlines.
    ///
    /// # Panics
    ///
    /// Panics on non-positive deadlines or a keepalive cadence that cannot
    /// beat the inactivity deadline.
    pub fn validate(&self) {
        assert!(
            self.keepalive_secs > 0.0,
            "keepalive cadence must be positive"
        );
        assert!(
            self.inactivity_timeout_secs > 0.0,
            "inactivity timeout must be positive"
        );
        assert!(
            self.keepalive_secs < self.inactivity_timeout_secs,
            "keepalive cadence ({}) must beat the inactivity timeout ({})",
            self.keepalive_secs,
            self.inactivity_timeout_secs
        );
        assert!(
            self.backoff_base_secs > 0.0,
            "backoff base must be positive"
        );
        assert!(
            self.backoff_max_secs >= self.backoff_base_secs,
            "backoff ceiling must be at least the base"
        );
        assert!(
            self.cdn_fallback_secs > 0.0,
            "CDN fallback deadline must be positive"
        );
        assert!(
            self.watchdog_secs > 0.0,
            "watchdog deadline must be positive"
        );
    }

    /// The period at which the defense checks run, derived from the
    /// tightest deadline (half of it, so no deadline can be missed by more
    /// than 50%).
    pub fn tick_secs(&self) -> f64 {
        let tightest = self
            .keepalive_secs
            .min(self.inactivity_timeout_secs)
            .min(self.cdn_fallback_secs)
            .min(self.watchdog_secs);
        tightest / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn crash_sampling_is_deterministic_and_bounded() {
        let cfg = CrashChurnConfig::new(0.5, 20.0);
        let a = cfg.sample_crashes(40, &mut StdRng::seed_from_u64(3));
        let b = cfg.sample_crashes(40, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert!(a.iter().flatten().all(|&t| t > 0.0));
        let crashed = a.iter().filter(|c| c.is_some()).count();
        assert!(crashed > 0 && crashed < 40, "fraction 0.5 got {crashed}/40");
    }

    #[test]
    fn zero_crash_fraction_draws_nobody() {
        let cfg = CrashChurnConfig::new(0.0, 20.0);
        let d = cfg.sample_crashes(50, &mut StdRng::seed_from_u64(1));
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn flap_and_outage_windows_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let flaps = LinkFlapConfig {
            count: 20,
            degraded_bytes_per_sec: 10_000.0,
            duration_secs: 5.0,
            window_secs: 100.0,
        };
        flaps.validate();
        for (leecher, start) in flaps.sample_flaps(7, &mut rng) {
            assert!(leecher < 7);
            assert!((0.0..100.0).contains(&start));
        }
        let outages = CdnOutageConfig {
            count: 3,
            duration_secs: 10.0,
            window_secs: 60.0,
        };
        outages.validate();
        for start in outages.sample_outages(&mut rng) {
            assert!((0.0..60.0).contains(&start));
        }
    }

    #[test]
    #[should_panic(expected = "CDN outages require a CDN")]
    fn outages_without_cdn_panic() {
        let plan = FaultPlanConfig {
            cdn_outages: Some(CdnOutageConfig {
                count: 1,
                duration_secs: 5.0,
                window_secs: 30.0,
            }),
            ..FaultPlanConfig::default()
        };
        plan.validate(false);
    }

    #[test]
    fn default_defense_validates() {
        DefenseConfig::default().validate();
        // Tightest default deadline is the 10 s keepalive.
        assert!((DefenseConfig::default().tick_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must beat the inactivity timeout")]
    fn keepalive_slower_than_inactivity_panics() {
        DefenseConfig {
            keepalive_secs: 40.0,
            ..DefenseConfig::default()
        }
        .validate();
    }

    #[test]
    fn zeroed_plan_validates_and_is_default() {
        let plan = FaultPlanConfig::default();
        plan.validate(false);
        assert_eq!(plan.message_loss, 0.0);
        assert!(plan.crash.is_none());
    }
}
