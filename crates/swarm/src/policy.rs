//! Download policies: how many segments to fetch simultaneously.
//!
//! This is the paper's §III. A peer that has `T` seconds of playback
//! buffered, sees `B` bytes/s of per-peer bandwidth, and downloads
//! `W`-byte segments should keep at most
//!
//! ```text
//! k = max( ⌊B·T / W⌋, 1 )            (Eq. 1)
//! ```
//!
//! downloads in flight: all `k` must land within `T` seconds or the play-out
//! runs dry, and `B·T` bytes is all the pipe can move in that window.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Inputs to a download policy decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyInput {
    /// Estimated per-peer available bandwidth, bytes per second (the `B`).
    pub bandwidth_bytes_per_sec: f64,
    /// Seconds of playback buffered ahead of the play head (the `T`).
    pub buffered_secs: f64,
    /// Size of the next segment to fetch, bytes (the `W`).
    pub next_segment_bytes: u64,
}

/// A rule deciding the download-pool size.
pub trait DownloadPolicy: fmt::Debug {
    /// Maximum number of simultaneous segment downloads right now.
    fn pool_size(&self, input: &PolicyInput) -> usize;

    /// Short name for reports.
    fn name(&self) -> String;
}

/// The paper's adaptive pooling (Eq. 1).
///
/// # Examples
///
/// ```
/// use splicecast_swarm::{AdaptivePooling, DownloadPolicy, PolicyInput};
///
/// let policy = AdaptivePooling::new();
/// let k = policy.pool_size(&PolicyInput {
///     bandwidth_bytes_per_sec: 128_000.0,
///     buffered_secs: 8.0,
///     next_segment_bytes: 256_000,
/// });
/// assert_eq!(k, 4); // ⌊128k · 8 / 256k⌋
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptivePooling {
    /// Optional ceiling on the pool (0 = unlimited). The paper places no
    /// cap; a cap is useful when testing pathological inputs.
    pub max_pool: usize,
}

impl AdaptivePooling {
    /// The paper's uncapped policy.
    pub fn new() -> Self {
        AdaptivePooling { max_pool: 0 }
    }
}

/// Evaluates Eq. 1 directly.
///
/// At the start of streaming, after a stall, or with a drained buffer
/// (`buffered_secs <= 0`) the result is 1; likewise whenever
/// `B·T < W`.
pub fn optimal_pool_size(
    bandwidth_bytes_per_sec: f64,
    buffered_secs: f64,
    next_segment_bytes: u64,
) -> usize {
    // NaN inputs fall into the guard like non-positive ones.
    if bandwidth_bytes_per_sec.is_nan()
        || bandwidth_bytes_per_sec <= 0.0
        || buffered_secs.is_nan()
        || buffered_secs <= 0.0
        || next_segment_bytes == 0
    {
        return 1;
    }
    let k = (bandwidth_bytes_per_sec * buffered_secs / next_segment_bytes as f64).floor();
    if k < 1.0 {
        1
    } else if k >= usize::MAX as f64 {
        usize::MAX
    } else {
        k as usize
    }
}

impl DownloadPolicy for AdaptivePooling {
    fn pool_size(&self, input: &PolicyInput) -> usize {
        let k = optimal_pool_size(
            input.bandwidth_bytes_per_sec,
            input.buffered_secs,
            input.next_segment_bytes,
        );
        if self.max_pool > 0 {
            k.min(self.max_pool)
        } else {
            k
        }
    }

    fn name(&self) -> String {
        "adaptive".to_owned()
    }
}

/// The baseline: always keep a fixed number of downloads in flight
/// (the paper's "fixed size pooling", §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPool(pub usize);

impl DownloadPolicy for FixedPool {
    fn pool_size(&self, _input: &PolicyInput) -> usize {
        self.0.max(1)
    }

    fn name(&self) -> String {
        format!("pool-{}", self.0)
    }
}

/// How the policy's `W` (segment size) is obtained.
///
/// Eq. 1 assumes "the size of each segment is W bytes" — i.e. uniform
/// segments. With GOP-based splicing sizes vary wildly, and a client
/// implementing the paper's formula plugs in the only scalar it has: the
/// mean. [`WEstimate::NextSegment`] is the smarter variant that reads the
/// actual size of the next wanted segment from the manifest (an ablation
/// of the paper's design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WEstimate {
    /// `W` = total transfer bytes / segment count (the paper's model).
    MeanSegment,
    /// `W` = the next wanted segment's actual size.
    NextSegment,
}

/// Serializable policy selector for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// Eq. 1 adaptive pooling.
    Adaptive,
    /// Fixed pool of the given size.
    Fixed(usize),
}

impl PolicyConfig {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn DownloadPolicy> {
        match self {
            PolicyConfig::Adaptive => Box::new(AdaptivePooling::new()),
            PolicyConfig::Fixed(k) => Box::new(FixedPool(*k)),
        }
    }
}

/// How the `B` of Eq. 1 is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Use the configured bandwidth directly (the paper "simulated the
    /// bandwidth on GENI" and plugged the known value in).
    Oracle,
    /// Exponentially-weighted moving average of observed per-transfer
    /// goodput, seeded with the configured hint — what a real client does.
    Ewma {
        /// Weight of each new observation, in `(0, 1]`.
        alpha: f64,
    },
}

/// Estimates per-peer available bandwidth from completed transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    kind: EstimatorKind,
    current_bytes_per_sec: f64,
}

impl BandwidthEstimator {
    /// Creates an estimator seeded with `hint_bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the hint is not positive or an EWMA alpha is out of range.
    pub fn new(kind: EstimatorKind, hint_bytes_per_sec: f64) -> Self {
        assert!(hint_bytes_per_sec > 0.0, "bandwidth hint must be positive");
        if let EstimatorKind::Ewma { alpha } = kind {
            assert!(
                (0.0..=1.0).contains(&alpha) && alpha > 0.0,
                "alpha must be in (0,1]"
            );
        }
        BandwidthEstimator {
            kind,
            current_bytes_per_sec: hint_bytes_per_sec,
        }
    }

    /// Feeds one completed transfer (`bytes` over `secs`).
    pub fn observe(&mut self, bytes: u64, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        if let EstimatorKind::Ewma { alpha } = self.kind {
            let sample = bytes as f64 / secs;
            self.current_bytes_per_sec =
                alpha * sample + (1.0 - alpha) * self.current_bytes_per_sec;
        }
    }

    /// The current estimate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.current_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(b: f64, t: f64, w: u64) -> PolicyInput {
        PolicyInput {
            bandwidth_bytes_per_sec: b,
            buffered_secs: t,
            next_segment_bytes: w,
        }
    }

    #[test]
    fn eq1_matches_the_paper_edge_cases() {
        // T = 0 (start of streaming / just stalled) → always 1.
        assert_eq!(optimal_pool_size(128_000.0, 0.0, 256_000), 1);
        // B·T < W → 1.
        assert_eq!(optimal_pool_size(128_000.0, 1.0, 256_000), 1);
        // Otherwise ⌊B·T/W⌋.
        assert_eq!(optimal_pool_size(128_000.0, 16.0, 256_000), 8);
        assert_eq!(optimal_pool_size(128_000.0, 15.99, 256_000), 7);
    }

    #[test]
    fn eq1_degenerate_inputs_fall_back_to_one() {
        assert_eq!(optimal_pool_size(0.0, 10.0, 1), 1);
        assert_eq!(optimal_pool_size(-5.0, 10.0, 1), 1);
        assert_eq!(optimal_pool_size(f64::NAN, 10.0, 1), 1);
        assert_eq!(optimal_pool_size(100.0, f64::NAN, 1), 1);
        assert_eq!(optimal_pool_size(100.0, 10.0, 0), 1);
    }

    #[test]
    fn eq1_is_monotone_in_b_and_t_and_antitone_in_w() {
        let base = optimal_pool_size(100_000.0, 10.0, 100_000);
        assert!(optimal_pool_size(200_000.0, 10.0, 100_000) >= base);
        assert!(optimal_pool_size(100_000.0, 20.0, 100_000) >= base);
        assert!(optimal_pool_size(100_000.0, 10.0, 200_000) <= base);
    }

    #[test]
    fn adaptive_cap_applies() {
        let capped = AdaptivePooling { max_pool: 3 };
        assert_eq!(capped.pool_size(&input(1e9, 100.0, 1)), 3);
        let uncapped = AdaptivePooling::new();
        assert!(uncapped.pool_size(&input(1e6, 100.0, 1000)) > 3);
        assert_eq!(uncapped.name(), "adaptive");
    }

    #[test]
    fn fixed_pool_ignores_inputs() {
        let p = FixedPool(4);
        assert_eq!(p.pool_size(&input(1.0, 0.0, 1)), 4);
        assert_eq!(p.pool_size(&input(1e9, 1e9, 1)), 4);
        assert_eq!(p.name(), "pool-4");
        assert_eq!(
            FixedPool(0).pool_size(&input(1.0, 1.0, 1)),
            1,
            "clamped to 1"
        );
    }

    #[test]
    fn policy_config_builds() {
        assert_eq!(PolicyConfig::Adaptive.build().name(), "adaptive");
        assert_eq!(PolicyConfig::Fixed(8).build().name(), "pool-8");
    }

    #[test]
    fn oracle_estimator_never_moves() {
        let mut e = BandwidthEstimator::new(EstimatorKind::Oracle, 128_000.0);
        e.observe(1, 100.0);
        assert_eq!(e.bytes_per_sec(), 128_000.0);
    }

    #[test]
    fn ewma_estimator_tracks_observations() {
        let mut e = BandwidthEstimator::new(EstimatorKind::Ewma { alpha: 0.5 }, 100.0);
        e.observe(300, 1.0); // sample 300 → 200
        assert!((e.bytes_per_sec() - 200.0).abs() < 1e-9);
        e.observe(200, 1.0); // sample 200 → 200
        assert!((e.bytes_per_sec() - 200.0).abs() < 1e-9);
        e.observe(0, 0.0); // ignored
        assert!((e.bytes_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "hint must be positive")]
    fn zero_hint_panics() {
        let _ = BandwidthEstimator::new(EstimatorKind::Oracle, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = BandwidthEstimator::new(EstimatorKind::Ewma { alpha: 0.0 }, 1.0);
    }
}
