//! Swarm-level metric collection.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use splicecast_player::{QoeMetrics, StallEvent};

/// Control-plane traffic counters for one leecher: how segment
/// availability was disseminated and how often the maintenance pump ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPlaneStats {
    /// Individual `Have` messages sent (legacy dissemination).
    pub haves_sent: u64,
    /// Per-peer availability announcements skipped because the peer
    /// already held the segment, never completed a handshake, or
    /// unsubscribed with `NotInterested`.
    pub haves_suppressed: u64,
    /// `HaveBundle` messages sent (eventful dissemination).
    pub have_bundles_sent: u64,
    /// Announcements carried inside bundles (indices × receiving peers).
    pub haves_coalesced: u64,
    /// Pump fires triggered by a due deadline (flush, request timeout,
    /// tracker re-announce).
    pub pumps_armed: u64,
    /// Pump fires from the fallback heartbeat with nothing due.
    pub pumps_heartbeat: u64,
}

impl ControlPlaneStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &ControlPlaneStats) {
        self.haves_sent += other.haves_sent;
        self.haves_suppressed += other.haves_suppressed;
        self.have_bundles_sent += other.have_bundles_sent;
        self.haves_coalesced += other.haves_coalesced;
        self.pumps_armed += other.pumps_armed;
        self.pumps_heartbeat += other.pumps_heartbeat;
    }

    /// Mean number of indices per sent bundle (0 when none were sent).
    pub fn mean_bundle_size(&self) -> f64 {
        if self.have_bundles_sent == 0 {
            0.0
        } else {
            self.haves_coalesced as f64 / self.have_bundles_sent as f64
        }
    }

    /// Total pump fires, armed and heartbeat alike.
    pub fn pumps(&self) -> u64 {
        self.pumps_armed + self.pumps_heartbeat
    }
}

/// Scheduler-efficiency counters for one leecher: how often the download
/// scheduler actually ran versus proved itself unnecessary, and how much
/// churn the per-segment holder index absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Scheduling passes that ran (walked the wanted segments).
    pub passes: u64,
    /// Scheduling passes skipped because nothing changed since a previous
    /// pass proved no request could be issued (dirty-flag scheduling).
    pub skips: u64,
    /// Entries added to the per-segment holder index.
    pub holder_adds: u64,
    /// Entries removed from the per-segment holder index (evictions and
    /// bitfield replacements).
    pub holder_removes: u64,
    /// Passes that stopped at the pool-size cap.
    pub full_pool: u64,
    /// Passes that stopped on a wanted segment with no eligible source.
    pub no_source: u64,
    /// Passes that found every segment held or in flight.
    pub exhausted: u64,
    /// Non-empty holder sets in the sparse representation at report time.
    pub sparse_sets: u64,
    /// Holder sets in the dense bitset representation at report time.
    pub dense_sets: u64,
    /// Cumulative sparse→dense holder-set promotions.
    pub dense_promotions: u64,
    /// Peers summarized out of the view table and holder index as
    /// complete (implicit holders of everything) at report time.
    pub complete_peers: u64,
}

impl SchedulerStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &SchedulerStats) {
        self.passes += other.passes;
        self.skips += other.skips;
        self.holder_adds += other.holder_adds;
        self.holder_removes += other.holder_removes;
        self.full_pool += other.full_pool;
        self.no_source += other.no_source;
        self.exhausted += other.exhausted;
        self.sparse_sets += other.sparse_sets;
        self.dense_sets += other.dense_sets;
        self.dense_promotions += other.dense_promotions;
        self.complete_peers += other.complete_peers;
    }
}

/// Windowed-dissemination counters for one leecher: what the interest
/// windows suppressed on the send side and deferred on the receive side.
/// All zero under full dissemination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisseminationStats {
    /// `InterestWindow` announcements sent (windows × receiving peers).
    pub windows_sent: u64,
    /// Catch-up `HaveBundle`s sent when a peer's window advanced over
    /// indices previously suppressed for it.
    pub catchup_bundles: u64,
    /// Indices carried inside catch-up bundles.
    pub catchup_haves: u64,
    /// Per-peer bundle sends skipped because no bundled index fell inside
    /// the peer's announced window.
    pub window_suppressed: u64,
    /// Announced indices parked in the per-peer bitfield without a holder-
    /// index insert (beyond the fold horizon or already held).
    pub deferred_indices: u64,
    /// Holder-index inserts performed lazily when the fold horizon
    /// advanced over parked indices.
    pub fold_inserts: u64,
    /// Scheduling passes stopped at the interest-window edge.
    pub window_capped: u64,
}

impl DisseminationStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &DisseminationStats) {
        self.windows_sent += other.windows_sent;
        self.catchup_bundles += other.catchup_bundles;
        self.catchup_haves += other.catchup_haves;
        self.window_suppressed += other.window_suppressed;
        self.deferred_indices += other.deferred_indices;
        self.fold_inserts += other.fold_inserts;
        self.window_capped += other.window_capped;
    }
}

/// Memory-footprint accounting for one leecher, sampled when its report is
/// written: allocator-visible bytes behind the peer's swarm state, plus a
/// modeled pre-diet figure for the same state so the memory diet's effect
/// is measurable per run. Deterministic for a given (segments, config,
/// seed) — capacities follow the deterministic insert/remove sequence —
/// but excluded from the `Debug` rendering like the other post-pin stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerMemStats {
    /// Bytes behind the peer-view table: per-view struct plus bitfield
    /// heap (packed 40-byte views after the diet).
    pub view_bytes: u64,
    /// Live peer views at sample time.
    pub views: u64,
    /// Bytes behind the per-segment holder index: spine plus every set's
    /// capacity (after purge-on-acquire and shrink-on-evict).
    pub holder_bytes: u64,
    /// Live holder-index entries at sample time.
    pub holder_entries: u64,
    /// Bytes behind auxiliary per-peer state that is empty in the common
    /// case: defense clocks, timeout bans, source-health tracking.
    pub aux_bytes: u64,
    /// Bytes behind the compact complete-peer records (peers summarized
    /// out of the view table; their holdings are one shared interned
    /// full bitfield, not counted per peer).
    pub complete_bytes: u64,
    /// Complete-peer records at sample time.
    pub complete_views: u64,
    /// Modeled bytes the same state cost before the diet: 64-byte views
    /// with `Vec`-backed bitfields (one per neighbour, complete or not),
    /// and a holder index retaining every added-but-not-removed entry
    /// (no purge, no shrink, no complete-peer summaries).
    pub prediet_bytes: u64,
}

impl PeerMemStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &PeerMemStats) {
        self.view_bytes += other.view_bytes;
        self.views += other.views;
        self.holder_bytes += other.holder_bytes;
        self.holder_entries += other.holder_entries;
        self.aux_bytes += other.aux_bytes;
        self.complete_bytes += other.complete_bytes;
        self.complete_views += other.complete_views;
        self.prediet_bytes += other.prediet_bytes;
    }

    /// Total measured bytes (views + holder index + auxiliary state +
    /// complete-peer records).
    pub fn total_bytes(&self) -> u64 {
        self.view_bytes + self.holder_bytes + self.aux_bytes + self.complete_bytes
    }
}

/// Fault and defense counters for one leecher: what the fault plane did to
/// it and what its defenses did about it. All counters so totals sum
/// naturally across peers and runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerFaultStats {
    /// 1 when this peer crash-stopped (vanished without a Goodbye).
    pub crashes: u64,
    /// Peers this leecher evicted on the inactivity deadline (silent
    /// failures detected).
    pub silent_evictions: u64,
    /// Exponential-backoff ban windows opened against failing sources.
    pub backoff_bans: u64,
    /// Starved segments escalated to the CDN past the fallback deadline.
    pub cdn_fallbacks: u64,
    /// Liveness-watchdog trips (no download progress past the deadline).
    pub watchdog_trips: u64,
    /// Keep-alive messages sent to quiet peers.
    pub keepalives_sent: u64,
    /// Manifest re-requests after a silent bootstrap.
    pub manifest_retries: u64,
}

impl PeerFaultStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &PeerFaultStats) {
        self.crashes += other.crashes;
        self.silent_evictions += other.silent_evictions;
        self.backoff_bans += other.backoff_bans;
        self.cdn_fallbacks += other.cdn_fallbacks;
        self.watchdog_trips += other.watchdog_trips;
        self.keepalives_sent += other.keepalives_sent;
        self.manifest_retries += other.manifest_retries;
    }
}

/// Final accounting for one leecher.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeerReport {
    /// Leecher index (0-based, excluding the seeder).
    pub peer: usize,
    /// Startup / stall / completion summary.
    pub qoe: QoeMetrics,
    /// The individual stall events.
    pub stalls: Vec<StallEvent>,
    /// Payload bytes received over completed transfers.
    pub bytes_downloaded: u64,
    /// Payload bytes sent over completed uploads.
    pub bytes_uploaded: u64,
    /// Segments obtained from the seeder.
    pub segments_from_seeder: usize,
    /// Segments obtained from other leechers.
    pub segments_from_peers: usize,
    /// Segments obtained from the CDN (hybrid mode).
    pub segments_from_cdn: usize,
    /// Whether the peer finished watching the whole video.
    pub finished: bool,
    /// Whether the peer churned out before finishing.
    pub departed: bool,
    /// Control-plane traffic this peer generated.
    #[serde(default)]
    pub control: ControlPlaneStats,
    /// Scheduler-efficiency counters for this peer.
    #[serde(default)]
    pub sched: SchedulerStats,
    /// Fault and defense counters for this peer.
    #[serde(default)]
    pub fault: PeerFaultStats,
    /// Windowed-dissemination counters for this peer.
    #[serde(default)]
    pub dissem: DisseminationStats,
    /// Memory-footprint accounting for this peer.
    #[serde(default)]
    pub mem: PeerMemStats,
}

/// `Debug` is hand-written to render exactly what the derive produced
/// before `sched`, `fault`, and `dissem` existed: the legacy-plane digest
/// test pins a hash of the formatted metrics, and those counters are
/// diagnostics that stay zero in legacy runs anyway.
impl std::fmt::Debug for PeerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerReport")
            .field("peer", &self.peer)
            .field("qoe", &self.qoe)
            .field("stalls", &self.stalls)
            .field("bytes_downloaded", &self.bytes_downloaded)
            .field("bytes_uploaded", &self.bytes_uploaded)
            .field("segments_from_seeder", &self.segments_from_seeder)
            .field("segments_from_peers", &self.segments_from_peers)
            .field("segments_from_cdn", &self.segments_from_cdn)
            .field("finished", &self.finished)
            .field("departed", &self.departed)
            .field("control", &self.control)
            .finish()
    }
}

/// Shared sink the leechers report into. Single-threaded by design: one
/// simulation runs on one thread (experiment sweeps parallelise across
/// whole simulations).
pub type MetricsSink = Rc<RefCell<Vec<PeerReport>>>;

/// Results of one swarm run.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwarmMetrics {
    /// Per-leecher reports, ordered by peer index.
    pub reports: Vec<PeerReport>,
    /// Simulated time at which the run ended, in seconds.
    pub sim_end_secs: f64,
    /// Network-level traffic counters for the whole run.
    pub net: splicecast_netsim::SimStats,
    /// Counters of faults the simulator injected (message drops/delays,
    /// outage windows). All zero when no fault plan is configured.
    #[serde(default)]
    pub injected: splicecast_netsim::InjectedFaults,
}

/// `Debug` is hand-written to render exactly what the derive produced
/// before `injected` existed: the legacy-plane digest test pins a hash of
/// the formatted metrics, and the injected counters are zero without a
/// fault plan anyway.
impl std::fmt::Debug for SwarmMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmMetrics")
            .field("reports", &self.reports)
            .field("sim_end_secs", &self.sim_end_secs)
            .field("net", &self.net)
            .finish()
    }
}

impl SwarmMetrics {
    /// Reports of peers that stayed for the whole run (the paper measures
    /// viewers, not churners).
    pub fn watching(&self) -> impl Iterator<Item = &PeerReport> {
        self.reports.iter().filter(|r| !r.departed)
    }

    /// Mean number of stalls per watching peer.
    pub fn mean_stalls(&self) -> f64 {
        mean(self.watching().map(|r| r.qoe.stall_count as f64))
    }

    /// Mean total stall duration per watching peer, seconds.
    pub fn mean_stall_secs(&self) -> f64 {
        mean(self.watching().map(|r| r.qoe.total_stall_secs))
    }

    /// Mean startup time over watching peers that started, seconds.
    pub fn mean_startup_secs(&self) -> f64 {
        mean(self.watching().filter_map(|r| r.qoe.startup_secs))
    }

    /// Worst startup time, seconds.
    pub fn max_startup_secs(&self) -> f64 {
        self.watching()
            .filter_map(|r| r.qoe.startup_secs)
            .fold(0.0, f64::max)
    }

    /// Fraction of watching peers that finished the video.
    pub fn completion_rate(&self) -> f64 {
        mean(self.watching().map(|r| if r.finished { 1.0 } else { 0.0 }))
    }

    /// Total bytes downloaded across all peers.
    pub fn total_bytes_downloaded(&self) -> u64 {
        self.reports.iter().map(|r| r.bytes_downloaded).sum()
    }

    /// Wire bytes per payload byte delivered — protocol-plus-loss expense
    /// of moving the stream (1.0 would be a perfect lossless unicast).
    pub fn wire_expansion(&self) -> f64 {
        if self.net.payload_bytes_delivered == 0 {
            0.0
        } else {
            self.net.wire_bytes_sent as f64 / self.net.payload_bytes_delivered as f64
        }
    }

    /// Summed control-plane counters over every report (churners
    /// included: their control traffic was real).
    pub fn control_totals(&self) -> ControlPlaneStats {
        let mut total = ControlPlaneStats::default();
        for report in &self.reports {
            total.absorb(&report.control);
        }
        total
    }

    /// Summed scheduler counters over every report.
    pub fn sched_totals(&self) -> SchedulerStats {
        let mut total = SchedulerStats::default();
        for report in &self.reports {
            total.absorb(&report.sched);
        }
        total
    }

    /// Summed windowed-dissemination counters over every report.
    pub fn dissem_totals(&self) -> DisseminationStats {
        let mut total = DisseminationStats::default();
        for report in &self.reports {
            total.absorb(&report.dissem);
        }
        total
    }

    /// Summed fault and defense counters over every report.
    pub fn fault_totals(&self) -> PeerFaultStats {
        let mut total = PeerFaultStats::default();
        for report in &self.reports {
            total.absorb(&report.fault);
        }
        total
    }

    /// Summed memory accounting over every report.
    pub fn mem_totals(&self) -> PeerMemStats {
        let mut total = PeerMemStats::default();
        for report in &self.reports {
            total.absorb(&report.mem);
        }
        total
    }

    /// Mean measured bytes per leecher (0 with no reports).
    pub fn mean_mem_bytes_per_peer(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.mem_totals().total_bytes() as f64 / self.reports.len() as f64
        }
    }

    /// Mean modeled pre-diet bytes per leecher (0 with no reports).
    pub fn mean_prediet_bytes_per_peer(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.mem_totals().prediet_bytes as f64 / self.reports.len() as f64
        }
    }

    /// Persistent peers (neither churned nor crashed) that never finished
    /// the video — the peers a healthy swarm must not leave behind.
    pub fn stuck_peers(&self) -> impl Iterator<Item = &PeerReport> {
        self.reports.iter().filter(|r| !r.departed && !r.finished)
    }

    /// Human-readable diagnosis of stuck persistent peers, one line each:
    /// which peer, how far it got, and what its defenses saw. Empty string
    /// when nobody is stuck.
    pub fn stuck_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in self.stuck_peers() {
            let _ = writeln!(
                out,
                "peer {}: {} segments ({} seeder / {} peers / {} cdn), \
                 {} stalls, watchdog trips {}, silent evictions {}, \
                 backoff bans {}, cdn fallbacks {}",
                r.peer,
                r.segments_from_seeder + r.segments_from_peers + r.segments_from_cdn,
                r.segments_from_seeder,
                r.segments_from_peers,
                r.segments_from_cdn,
                r.qoe.stall_count,
                r.fault.watchdog_trips,
                r.fault.silent_evictions,
                r.fault.backoff_bans,
                r.fault.cdn_fallbacks,
            );
        }
        out
    }

    /// Fraction of segment deliveries that came from other leechers rather
    /// than the seeder or CDN (peer offload).
    pub fn peer_offload_ratio(&self) -> f64 {
        let from_peers: usize = self.reports.iter().map(|r| r.segments_from_peers).sum();
        let total: usize = self
            .reports
            .iter()
            .map(|r| r.segments_from_peers + r.segments_from_seeder + r.segments_from_cdn)
            .sum();
        if total == 0 {
            0.0
        } else {
            from_peers as f64 / total as f64
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(peer: usize, stalls: usize, stall_secs: f64, departed: bool) -> PeerReport {
        PeerReport {
            peer,
            qoe: QoeMetrics {
                startup_secs: Some(peer as f64),
                stall_count: stalls,
                total_stall_secs: stall_secs,
                finished_secs: (!departed).then_some(100.0),
            },
            finished: !departed,
            departed,
            segments_from_peers: 3,
            segments_from_seeder: 1,
            ..PeerReport::default()
        }
    }

    #[test]
    fn aggregates_exclude_departed_peers() {
        let m = SwarmMetrics {
            reports: vec![
                report(0, 2, 4.0, false),
                report(1, 4, 8.0, false),
                report(2, 100, 100.0, true),
            ],
            sim_end_secs: 200.0,
            net: Default::default(),
            injected: Default::default(),
        };
        assert_eq!(m.watching().count(), 2);
        assert!((m.mean_stalls() - 3.0).abs() < 1e-9);
        assert!((m.mean_stall_secs() - 6.0).abs() < 1e-9);
        assert!((m.mean_startup_secs() - 0.5).abs() < 1e-9);
        assert_eq!(m.max_startup_secs(), 1.0);
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn offload_counts_all_reports() {
        let m = SwarmMetrics {
            reports: vec![report(0, 0, 0.0, false), report(1, 0, 0.0, false)],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        assert!((m.peer_offload_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = SwarmMetrics::default();
        assert_eq!(m.mean_stalls(), 0.0);
        assert_eq!(m.mean_startup_secs(), 0.0);
        assert_eq!(m.peer_offload_ratio(), 0.0);
        assert_eq!(m.completion_rate(), 0.0);
        assert_eq!(m.total_bytes_downloaded(), 0);
        assert_eq!(m.wire_expansion(), 0.0);
    }

    #[test]
    fn control_totals_sum_over_all_reports() {
        let mut a = report(0, 0, 0.0, false);
        a.control.haves_sent = 5;
        a.control.have_bundles_sent = 2;
        a.control.haves_coalesced = 6;
        let mut b = report(1, 0, 0.0, true); // churners count too
        b.control.haves_sent = 3;
        b.control.pumps_heartbeat = 4;
        let m = SwarmMetrics {
            reports: vec![a, b],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        let total = m.control_totals();
        assert_eq!(total.haves_sent, 8);
        assert_eq!(total.have_bundles_sent, 2);
        assert_eq!(total.pumps(), 4);
        assert!((total.mean_bundle_size() - 3.0).abs() < 1e-12);
        assert_eq!(ControlPlaneStats::default().mean_bundle_size(), 0.0);
    }

    #[test]
    fn sched_totals_sum_over_all_reports() {
        let mut a = report(0, 0, 0.0, false);
        a.sched.passes = 10;
        a.sched.skips = 90;
        a.sched.holder_adds = 7;
        let mut b = report(1, 0, 0.0, true);
        b.sched.passes = 5;
        b.sched.holder_removes = 2;
        let m = SwarmMetrics {
            reports: vec![a, b],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        let total = m.sched_totals();
        assert_eq!(total.passes, 15);
        assert_eq!(total.skips, 90);
        assert_eq!(total.holder_adds, 7);
        assert_eq!(total.holder_removes, 2);
    }

    #[test]
    fn peer_report_debug_excludes_sched_counters() {
        // The legacy digest test hashes the Debug rendering; the scheduler
        // counters are diagnostics and must not leak into it.
        let mut r = report(0, 0, 0.0, false);
        r.sched.passes = 123_456;
        let rendered = format!("{r:?}");
        assert!(!rendered.contains("sched"), "{rendered}");
        assert!(!rendered.contains("123456"), "{rendered}");
        assert!(rendered.contains("control"), "{rendered}");
    }

    #[test]
    fn debug_renderings_exclude_fault_counters() {
        // Same digest-pin discipline for the fault plane: its counters are
        // zero in fault-free runs, but they still must not widen the
        // hashed rendering.
        let mut r = report(0, 0, 0.0, false);
        r.fault.silent_evictions = 654_321;
        let rendered = format!("{r:?}");
        assert!(!rendered.contains("fault"), "{rendered}");
        assert!(!rendered.contains("654321"), "{rendered}");
        let mut m = SwarmMetrics {
            reports: vec![r],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        m.injected.messages_dropped = 999_888;
        let rendered = format!("{m:?}");
        assert!(!rendered.contains("injected"), "{rendered}");
        assert!(!rendered.contains("999888"), "{rendered}");
        assert!(rendered.contains("net"), "{rendered}");
    }

    #[test]
    fn debug_rendering_excludes_dissem_counters() {
        // Same digest-pin discipline again: windowed-dissemination counters
        // must not widen the hashed rendering.
        let mut r = report(0, 0, 0.0, false);
        r.dissem.deferred_indices = 424_242;
        let rendered = format!("{r:?}");
        assert!(!rendered.contains("dissem"), "{rendered}");
        assert!(!rendered.contains("424242"), "{rendered}");
    }

    #[test]
    fn debug_rendering_excludes_mem_stats() {
        // Same digest-pin discipline: memory accounting must not widen the
        // hashed rendering.
        let mut r = report(0, 0, 0.0, false);
        r.mem.view_bytes = 717_171;
        let rendered = format!("{r:?}");
        assert!(!rendered.contains("mem"), "{rendered}");
        assert!(!rendered.contains("717171"), "{rendered}");
    }

    #[test]
    fn mem_totals_sum_over_all_reports() {
        let mut a = report(0, 0, 0.0, false);
        a.mem.view_bytes = 400;
        a.mem.views = 10;
        a.mem.holder_bytes = 100;
        a.mem.prediet_bytes = 1_000;
        let mut b = report(1, 0, 0.0, true); // churners count too
        b.mem.view_bytes = 200;
        b.mem.aux_bytes = 50;
        b.mem.holder_entries = 7;
        b.mem.prediet_bytes = 500;
        let m = SwarmMetrics {
            reports: vec![a, b],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        let total = m.mem_totals();
        assert_eq!(total.view_bytes, 600);
        assert_eq!(total.views, 10);
        assert_eq!(total.holder_bytes, 100);
        assert_eq!(total.holder_entries, 7);
        assert_eq!(total.aux_bytes, 50);
        assert_eq!(total.prediet_bytes, 1_500);
        assert_eq!(total.total_bytes(), 750);
        assert!((m.mean_mem_bytes_per_peer() - 375.0).abs() < 1e-9);
        assert!((m.mean_prediet_bytes_per_peer() - 750.0).abs() < 1e-9);
        assert_eq!(SwarmMetrics::default().mean_mem_bytes_per_peer(), 0.0);
    }

    #[test]
    fn dissem_totals_sum_over_all_reports() {
        let mut a = report(0, 0, 0.0, false);
        a.dissem.windows_sent = 4;
        a.dissem.deferred_indices = 10;
        a.dissem.fold_inserts = 3;
        let mut b = report(1, 0, 0.0, true); // churners count too
        b.dissem.windows_sent = 2;
        b.dissem.window_suppressed = 5;
        b.dissem.catchup_bundles = 1;
        b.dissem.catchup_haves = 7;
        b.dissem.window_capped = 9;
        let m = SwarmMetrics {
            reports: vec![a, b],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        let total = m.dissem_totals();
        assert_eq!(total.windows_sent, 6);
        assert_eq!(total.deferred_indices, 10);
        assert_eq!(total.fold_inserts, 3);
        assert_eq!(total.window_suppressed, 5);
        assert_eq!(total.catchup_bundles, 1);
        assert_eq!(total.catchup_haves, 7);
        assert_eq!(total.window_capped, 9);
    }

    #[test]
    fn fault_totals_sum_over_all_reports() {
        let mut a = report(0, 0, 0.0, false);
        a.fault.silent_evictions = 2;
        a.fault.cdn_fallbacks = 1;
        let mut b = report(1, 0, 0.0, true);
        b.fault.crashes = 1;
        b.fault.backoff_bans = 3;
        let m = SwarmMetrics {
            reports: vec![a, b],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        let total = m.fault_totals();
        assert_eq!(total.crashes, 1);
        assert_eq!(total.silent_evictions, 2);
        assert_eq!(total.backoff_bans, 3);
        assert_eq!(total.cdn_fallbacks, 1);
    }

    #[test]
    fn stuck_report_names_unfinished_persistent_peers() {
        let healthy = report(0, 0, 0.0, false);
        let churned = report(1, 0, 0.0, true);
        let mut stuck = report(2, 5, 0.0, false);
        stuck.finished = false;
        stuck.fault.watchdog_trips = 4;
        let m = SwarmMetrics {
            reports: vec![healthy, churned, stuck],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        assert_eq!(m.stuck_peers().count(), 1);
        let diag = m.stuck_report();
        assert!(diag.contains("peer 2"), "{diag}");
        assert!(diag.contains("watchdog trips 4"), "{diag}");
        assert!(!diag.contains("peer 0"), "{diag}");
        assert!(!diag.contains("peer 1"), "{diag}");
        // A healthy swarm diagnoses nothing.
        let all_done = SwarmMetrics {
            reports: vec![report(0, 0, 0.0, false)],
            sim_end_secs: 1.0,
            net: Default::default(),
            injected: Default::default(),
        };
        assert!(all_done.stuck_report().is_empty());
    }

    #[test]
    fn wire_expansion_ratio() {
        let mut m = SwarmMetrics::default();
        m.net.payload_bytes_delivered = 1_000;
        m.net.wire_bytes_sent = 1_250;
        assert!((m.wire_expansion() - 1.25).abs() < 1e-12);
    }
}
