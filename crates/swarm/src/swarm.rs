//! Wiring a swarm: builds the star network, the seeder, the leechers, and
//! runs the simulation to completion.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use splicecast_media::SegmentList;
use splicecast_netsim::{
    star, FlowModel, LinkSpec, NullBehavior, SimDuration, SimTime, Simulator, TcpConfig,
};

use crate::cdn::CdnConfig;
use crate::churn::ChurnConfig;
use crate::fault::{DefenseConfig, FaultPlanConfig};
use crate::leecher::{LeecherConfig, LeecherNode};
use crate::metrics::SwarmMetrics;
use crate::policy::{BandwidthEstimator, EstimatorKind, PolicyConfig};
use crate::seeder::SeederNode;

/// How leechers learn the addresses of their peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiscoveryMode {
    /// Every leecher knows the full membership up front (a configured
    /// experiment, like the paper's RSpec-provisioned hosts).
    Full,
    /// Leechers know only the seeder and learn peers from its tracker
    /// endpoint (`PeerListRequest`/`PeerList`).
    Tracker,
}

/// Which control-plane implementation drives availability dissemination
/// and the maintenance pump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlPlane {
    /// Every completion broadcasts an immediate `Have` and a fixed-cadence
    /// pump timer polls for work: O(peers²) messages per run.
    #[default]
    Legacy,
    /// Completions coalesce into `HaveBundle`s flushed on a short window,
    /// pumps fire on armed deadlines with a low-rate fallback heartbeat,
    /// and completed peers unsubscribe from announcements.
    Eventful,
}

impl std::str::FromStr for ControlPlane {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "legacy" => Ok(ControlPlane::Legacy),
            "eventful" => Ok(ControlPlane::Eventful),
            other => Err(format!(
                "unknown control plane `{other}` (legacy | eventful)"
            )),
        }
    }
}

/// How the leecher finds upload sources for a wanted segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerMode {
    /// Rescan every `PeerView` per scheduling decision: O(peers) per pass.
    /// Kept as the reference implementation (and differential-test oracle).
    Scan,
    /// Walk an incrementally maintained per-segment holder index and skip
    /// scheduling passes that provably cannot issue a request. Bit-identical
    /// to `Scan` by construction (same candidate order, same RNG draws).
    #[default]
    Indexed,
}

impl std::str::FromStr for SchedulerMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "scan" => Ok(SchedulerMode::Scan),
            "indexed" => Ok(SchedulerMode::Indexed),
            other => Err(format!("unknown scheduler `{other}` (scan | indexed)")),
        }
    }
}

/// How availability announcements fan out across the swarm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisseminationMode {
    /// Every Have/HaveBundle reaches every interested subscriber and is
    /// applied to the holder index on arrival: O(peers²) traffic and
    /// inserts per run.
    #[default]
    Full,
    /// Leechers announce a moving interest window `[frontier, frontier+W)`
    /// via `InterestWindow`; uploaders suppress bundles with no index in
    /// the subscriber's window, and receivers park out-of-horizon indices
    /// in the per-peer bitfield, folding them into the holder index only
    /// as the wanted frontier advances. Requires the eventful control
    /// plane (windows ride the armed-deadline pumps).
    Windowed,
}

impl std::str::FromStr for DisseminationMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "full" => Ok(DisseminationMode::Full),
            "windowed" => Ok(DisseminationMode::Windowed),
            other => Err(format!(
                "unknown dissemination mode `{other}` (full | windowed)"
            )),
        }
    }
}

/// Configuration of one swarm run. The defaults are the paper's GENI
/// setup: 20 nodes (one seeder + 19 peers) in a star, 50 ms latency and
/// 5 % loss between peers, 500 ms latency to the seeder, 128 kB/s links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmConfig {
    /// Number of leechers (viewers).
    pub n_leechers: usize,
    /// Access-link capacity of each leecher, bytes per second.
    pub peer_bandwidth_bytes_per_sec: f64,
    /// Access-link capacity of the seeder, bytes per second.
    pub seeder_bandwidth_bytes_per_sec: f64,
    /// One-way latency between two peers, seconds (paper: 50 ms).
    pub peer_one_way_latency_secs: f64,
    /// One-way latency between a peer and the seeder, seconds. The paper
    /// uses 50 ms for the main experiments and calls out 500 ms only for
    /// the startup-time measurement (Fig. 4).
    pub seeder_one_way_latency_secs: f64,
    /// End-to-end packet loss between two peers (paper: 5 %).
    pub end_to_end_loss: f64,
    /// Concurrent uploads each leecher serves.
    pub peer_upload_slots: usize,
    /// Concurrent uploads the seeder serves.
    pub seeder_upload_slots: usize,
    /// The download-pool policy (§III).
    pub policy: PolicyConfig,
    /// How the policy's `B` is estimated.
    pub estimator: EstimatorKind,
    /// Peer churn, if any.
    pub churn: Option<ChurnConfig>,
    /// Hybrid-CDN mode, if any.
    pub cdn: Option<CdnConfig>,
    /// Competing background flows on the viewers' access links, if any
    /// (the §VIII congestion experiment).
    pub cross_traffic: Option<crate::cross::CrossTrafficConfig>,
    /// When false, segments come only from the CDN (requires `cdn`).
    pub p2p: bool,
    /// Peers join uniformly at random within this window, seconds.
    pub join_stagger_secs: f64,
    /// Maintenance-timer cadence, seconds.
    pub pump_interval_secs: f64,
    /// Unserved-request timeout, seconds.
    pub request_timeout_secs: f64,
    /// Media that must be buffered before resuming from a stall, seconds
    /// (the player's re-buffering threshold).
    pub resume_buffer_secs: f64,
    /// How the pooling policy's `W` is estimated (Eq. 1 assumes uniform
    /// segments; the paper's client knows only the mean).
    pub w_estimate: crate::policy::WEstimate,
    /// How leechers learn about each other.
    pub discovery: DiscoveryMode,
    /// Scheduled changes of every *peer* access link's capacity:
    /// `(at_secs, bytes_per_sec)` pairs, applied to both directions. Models
    /// the variable-bandwidth environment of the paper's future work
    /// (§VIII). The seeder and CDN links are unaffected.
    pub bandwidth_schedule: Vec<(f64, f64)>,
    /// Which network model drives the transfers: per-RTT rounds (the
    /// default, full window dynamics) or the event-driven fluid rate model
    /// (scales to hundreds of leechers).
    #[serde(default)]
    pub flow_model: FlowModel,
    /// Which control plane disseminates availability and schedules pumps.
    #[serde(default)]
    pub control_plane: ControlPlane,
    /// How upload sources are found (full rescan vs. incremental index).
    #[serde(default)]
    pub scheduler: SchedulerMode,
    /// How availability announcements fan out (full broadcast vs.
    /// windowed interest subscriptions). `Windowed` requires the
    /// eventful control plane.
    #[serde(default)]
    pub dissemination: DisseminationMode,
    /// Coalescing window of the eventful control plane, seconds: how long
    /// completions may wait before a `HaveBundle` flush. When unset the
    /// window is auto-tuned to the mean segment duration, clamped to
    /// one-to-four pump intervals (see [`auto_coalesce_secs`]).
    #[serde(default)]
    pub have_coalesce_secs: Option<f64>,
    /// Deterministic fault injection (crash-stop churn, control-message
    /// loss/delay, link flaps, CDN outages), if any.
    #[serde(default)]
    pub faults: Option<FaultPlanConfig>,
    /// Peer-side failure defenses (inactivity eviction, keepalives,
    /// source backoff, CDN fallback, watchdog), if any.
    #[serde(default)]
    pub defense: Option<DefenseConfig>,
    /// Pins every holder set to the sparse representation. A
    /// differential-testing knob: the hybrid sparse/dense default must be
    /// bit-identical, so production configs never set this.
    #[serde(default)]
    pub sparse_holders: bool,
    /// Hard cap on simulated time, seconds.
    pub max_sim_secs: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            n_leechers: 19,
            peer_bandwidth_bytes_per_sec: 128_000.0,
            seeder_bandwidth_bytes_per_sec: 128_000.0,
            peer_one_way_latency_secs: 0.050,
            seeder_one_way_latency_secs: 0.050,
            end_to_end_loss: 0.05,
            peer_upload_slots: 4,
            seeder_upload_slots: 4,
            policy: PolicyConfig::Adaptive,
            estimator: EstimatorKind::Oracle,
            churn: None,
            cdn: None,
            cross_traffic: None,
            p2p: true,
            join_stagger_secs: 1.0,
            pump_interval_secs: 0.5,
            request_timeout_secs: 6.0,
            resume_buffer_secs: 0.25,
            w_estimate: crate::policy::WEstimate::MeanSegment,
            discovery: DiscoveryMode::Full,
            bandwidth_schedule: Vec::new(),
            flow_model: FlowModel::Rounds,
            control_plane: ControlPlane::Legacy,
            scheduler: SchedulerMode::default(),
            dissemination: DisseminationMode::default(),
            have_coalesce_secs: None,
            faults: None,
            defense: None,
            sparse_holders: false,
            max_sim_secs: 1_800.0,
        }
    }
}

impl SwarmConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (no peers, non-positive rates,
    /// CDN-only mode without a CDN, a seeder closer than half the
    /// peer-to-peer latency, ...).
    pub fn validate(&self) {
        assert!(self.n_leechers >= 1, "a swarm needs at least one leecher");
        assert!(
            self.peer_bandwidth_bytes_per_sec > 0.0,
            "peer bandwidth must be positive"
        );
        assert!(
            self.seeder_bandwidth_bytes_per_sec > 0.0,
            "seeder bandwidth must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.end_to_end_loss),
            "loss must be in [0,1)"
        );
        assert!(
            self.seeder_one_way_latency_secs >= self.peer_one_way_latency_secs / 2.0,
            "seeder latency cannot be below half the peer-to-peer latency in a star"
        );
        assert!(
            self.p2p || self.cdn.is_some(),
            "CDN-only mode requires a CDN"
        );
        if let Some(cdn) = &self.cdn {
            cdn.validate();
        }
        if let Some(cross) = &self.cross_traffic {
            cross.validate();
        }
        assert!(
            self.pump_interval_secs > 0.0,
            "pump interval must be positive"
        );
        assert!(
            self.request_timeout_secs > 0.0,
            "request timeout must be positive"
        );
        assert!(
            self.dissemination == DisseminationMode::Full
                || self.control_plane == ControlPlane::Eventful,
            "windowed dissemination requires the eventful control plane"
        );
        if let Some(window) = self.have_coalesce_secs {
            assert!(
                window.is_finite() && window >= 0.0,
                "coalesce window must be a non-negative number"
            );
        }
        if let Some(faults) = &self.faults {
            faults.validate(self.cdn.is_some());
        }
        if let Some(defense) = &self.defense {
            defense.validate();
        }
        assert!(self.max_sim_secs > 0.0, "sim cap must be positive");
    }

    /// Per-access-link loss so that the end-to-end (two-link) loss matches
    /// the configured value: `1 - sqrt(1 - loss)`.
    pub fn per_link_loss(&self) -> f64 {
        1.0 - (1.0 - self.end_to_end_loss).sqrt()
    }
}

/// Runs one swarm to completion and returns the collected metrics.
///
/// Fully deterministic for a given `(segments, config, seed)` triple.
///
/// # Panics
///
/// Panics if the configuration is invalid or `segments` is empty.
///
/// # Examples
///
/// ```no_run
/// use splicecast_media::{DurationSplicer, Splicer, Video};
/// use splicecast_swarm::{run_swarm, SwarmConfig};
///
/// let video = Video::builder().duration_secs(30.0).seed(1).build();
/// let segments = DurationSplicer::new(4.0).splice(&video);
/// let config = SwarmConfig { n_leechers: 5, ..SwarmConfig::default() };
/// let metrics = run_swarm(&segments, &config, 42);
/// println!("mean stalls: {}", metrics.mean_stalls());
/// ```
pub fn run_swarm(segments: &SegmentList, config: &SwarmConfig, seed: u64) -> SwarmMetrics {
    // One deep copy for the whole swarm: every node shares the same
    // immutable segment metadata through the `Arc`.
    run_swarm_shared(&std::sync::Arc::new(segments.clone()), config, seed)
}

/// The eventful plane's `HaveBundle` coalescing window when the config
/// does not pin one (`have_coalesce_secs: None`): the mean segment
/// duration, clamped to one-to-four pump intervals.
///
/// Completions arrive roughly once per segment duration per active
/// download, so a window much shorter than that coalesces nothing (every
/// completion flushes its own bundle), while one much longer delays
/// availability news past the point peers could have used it. Tracking the
/// segment duration keeps the bundles-per-have ratio stable across
/// splicing configurations instead of degrading at fine splicings.
pub fn auto_coalesce_secs(mean_segment_secs: f64, pump_interval_secs: f64) -> f64 {
    if !mean_segment_secs.is_finite() {
        return pump_interval_secs;
    }
    mean_segment_secs.clamp(pump_interval_secs, 4.0 * pump_interval_secs)
}

/// Like [`run_swarm`], but the caller supplies the segment list already
/// wrapped in an [`Arc`](std::sync::Arc), so repeated runs over the same
/// media (averaging seeds, sweep points) share one allocation instead of
/// deep-copying per run.
pub fn run_swarm_shared(
    segments: &std::sync::Arc<SegmentList>,
    config: &SwarmConfig,
    seed: u64,
) -> SwarmMetrics {
    config.validate();
    assert!(!segments.is_empty(), "cannot stream an empty segment list");
    let segments = std::sync::Arc::clone(segments);

    let per_link_loss = config.per_link_loss();
    let peer_link_latency = SimDuration::from_secs_f64(config.peer_one_way_latency_secs / 2.0);
    let seeder_link_latency = SimDuration::from_secs_f64(
        config.seeder_one_way_latency_secs - config.peer_one_way_latency_secs / 2.0,
    );

    // Leaf order: seeder, then leechers, then the CDN (if any).
    let mut leaf_specs = vec![LinkSpec::from_bytes_per_sec(
        config.seeder_bandwidth_bytes_per_sec,
        seeder_link_latency,
        per_link_loss,
    )];
    leaf_specs.extend(std::iter::repeat_n(
        LinkSpec::from_bytes_per_sec(
            config.peer_bandwidth_bytes_per_sec,
            peer_link_latency,
            per_link_loss,
        ),
        config.n_leechers,
    ));
    if let Some(cdn) = &config.cdn {
        let cdn_link_latency = SimDuration::from_secs_f64(
            (cdn.one_way_latency_secs - config.peer_one_way_latency_secs / 2.0).max(0.0),
        );
        leaf_specs.push(LinkSpec::from_bytes_per_sec(
            cdn.bandwidth_bytes_per_sec,
            cdn_link_latency,
            per_link_loss,
        ));
    }
    if config.cross_traffic.is_some() {
        // The background server has a fat pipe: the congestion it causes
        // must land on the viewers' access links, not its own.
        leaf_specs.push(LinkSpec::from_bytes_per_sec(
            16_000_000.0,
            peer_link_latency,
            per_link_loss,
        ));
    }
    let star = star(&leaf_specs);
    let peer_links = star.links[1..=config.n_leechers].to_vec();
    let seeder_id = star.leaves[0];
    let leecher_ids: Vec<_> = star.leaves[1..=config.n_leechers].to_vec();
    let cdn_id = config.cdn.map(|_| star.leaves[config.n_leechers + 1]);

    // Setup randomness (join jitter, churn) is derived from the same seed
    // but a distinct stream from the simulator's own RNG.
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED_5EED_5EED);
    let join_delays: Vec<f64> = (0..config.n_leechers)
        .map(|_| setup_rng.gen_range(0.0..=config.join_stagger_secs))
        .collect();
    let departures: Vec<Option<f64>> = match &config.churn {
        Some(churn) => churn.sample_departures(config.n_leechers, &mut setup_rng),
        None => vec![None; config.n_leechers],
    };
    // Fault sampling comes *after* every existing draw and each knob is
    // gated on its own presence, so a zero-knob plan consumes no setup
    // randomness and the run stays bit-identical to a plan-less one.
    let crashes: Vec<Option<f64>> = match config.faults.and_then(|f| f.crash) {
        Some(crash) => crash.sample_crashes(config.n_leechers, &mut setup_rng),
        None => vec![None; config.n_leechers],
    };
    let flaps: Vec<(usize, f64)> = match config.faults.and_then(|f| f.link_flaps) {
        Some(flaps) => flaps.sample_flaps(config.n_leechers, &mut setup_rng),
        None => Vec::new(),
    };
    let outages: Vec<f64> = match config.faults.and_then(|f| f.cdn_outages) {
        Some(windows) => windows.sample_outages(&mut setup_rng),
        None => Vec::new(),
    };

    let sink = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulator::new(star.network, seed);
    sim.set_tcp_config(TcpConfig {
        flow_model: config.flow_model,
        ..TcpConfig::default()
    });
    sim.add_node(Box::new(NullBehavior)); // the hub
    sim.add_node(Box::new(SeederNode::new(
        segments.clone(),
        0,
        config.seeder_upload_slots,
    )));
    for index in 0..config.n_leechers {
        let mut others = leecher_ids.clone();
        others.remove(index);
        let leecher = LeecherNode::new(LeecherConfig {
            index,
            seeder: seeder_id,
            cdn: cdn_id,
            others,
            segments: segments.clone(),
            policy: config.policy.build(),
            estimator: BandwidthEstimator::new(
                config.estimator,
                config.peer_bandwidth_bytes_per_sec,
            ),
            upload_slots: config.peer_upload_slots,
            join_delay: SimDuration::from_secs_f64(join_delays[index]),
            depart_after: departures[index].map(SimDuration::from_secs_f64),
            crash_after: crashes[index].map(SimDuration::from_secs_f64),
            defense: config.defense,
            pump_interval: SimDuration::from_secs_f64(config.pump_interval_secs),
            request_timeout: SimDuration::from_secs_f64(config.request_timeout_secs),
            resume_buffer_secs: config.resume_buffer_secs,
            w_estimate: config.w_estimate,
            p2p: config.p2p,
            discovery: config.discovery,
            control_plane: config.control_plane,
            scheduler: config.scheduler,
            dissemination: config.dissemination,
            coalesce_window: SimDuration::from_secs_f64(config.have_coalesce_secs.unwrap_or_else(
                || {
                    auto_coalesce_secs(
                        segments.total_duration().as_secs_f64() / segments.len() as f64,
                        config.pump_interval_secs,
                    )
                },
            )),
            sparse_holders: config.sparse_holders,
            sink: sink.clone(),
        });
        sim.add_node(Box::new(leecher));
    }
    if cdn_id.is_some() {
        let cdn_cfg = config.cdn.as_ref().expect("cdn config");
        // The CDN is an origin with a fat pipe: reuse the seeder behaviour.
        sim.add_node(Box::new(SeederNode::new(
            segments.clone(),
            u64::MAX,
            cdn_cfg.upload_slots,
        )));
    }
    if let Some(cross) = config.cross_traffic {
        sim.add_node(Box::new(crate::cross::CrossTrafficNode::new(
            leecher_ids.clone(),
            cross,
        )));
    }

    if let Some(plan) = config.faults {
        // The message-fault plane has its own RNG stream; zero knobs mean
        // no plane at all (`set_message_faults` ignores an inactive
        // config), keeping fault-free runs draw-for-draw identical.
        sim.set_message_faults(splicecast_netsim::MessageFaults {
            seed: seed ^ 0xFA17_FA17_FA17_FA17,
            loss: plan.message_loss,
            delay_prob: plan.message_delay_prob,
            delay_max: SimDuration::from_secs_f64(plan.message_delay_max_secs),
        });
        if let Some(flap) = plan.link_flaps {
            for &(leecher, start_secs) in &flaps {
                let link = peer_links[leecher];
                for (at_secs, bytes_per_sec) in [
                    (start_secs, flap.degraded_bytes_per_sec),
                    (
                        start_secs + flap.duration_secs,
                        config.peer_bandwidth_bytes_per_sec,
                    ),
                ] {
                    sim.schedule_capacity(
                        SimTime::from_secs_f64(at_secs),
                        splicecast_netsim::DirLinkId::new_forward(link),
                        bytes_per_sec * 8.0,
                    );
                    sim.schedule_capacity(
                        SimTime::from_secs_f64(at_secs),
                        splicecast_netsim::DirLinkId::new_backward(link),
                        bytes_per_sec * 8.0,
                    );
                }
            }
        }
        if let Some(windows) = plan.cdn_outages {
            let cdn = cdn_id.expect("validated: CDN outages require a CDN");
            for &start_secs in &outages {
                sim.schedule_offline_window(
                    cdn,
                    SimTime::from_secs_f64(start_secs),
                    SimTime::from_secs_f64(start_secs + windows.duration_secs),
                );
            }
        }
    }

    for &(at_secs, bytes_per_sec) in &config.bandwidth_schedule {
        assert!(bytes_per_sec > 0.0, "scheduled bandwidth must be positive");
        for &link in &peer_links {
            sim.schedule_capacity(
                SimTime::from_secs_f64(at_secs),
                splicecast_netsim::DirLinkId::new_forward(link),
                bytes_per_sec * 8.0,
            );
            sim.schedule_capacity(
                SimTime::from_secs_f64(at_secs),
                splicecast_netsim::DirLinkId::new_backward(link),
                bytes_per_sec * 8.0,
            );
        }
    }

    let end = sim.run_until_idle(SimTime::from_secs_f64(config.max_sim_secs));

    let net = sim.stats();
    let injected = sim.fault_stats();
    let mut reports = sink.take();
    reports.sort_by_key(|r| r.peer);
    SwarmMetrics {
        reports,
        sim_end_secs: end.as_secs_f64(),
        net,
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splicecast_media::{DurationSplicer, Splicer, Video};

    fn tiny_segments() -> SegmentList {
        let video = Video::builder().duration_secs(16.0).seed(5).build();
        DurationSplicer::new(4.0).splice(&video)
    }

    fn tiny_config() -> SwarmConfig {
        SwarmConfig {
            n_leechers: 3,
            peer_bandwidth_bytes_per_sec: 500_000.0,
            seeder_bandwidth_bytes_per_sec: 500_000.0,
            end_to_end_loss: 0.01,
            max_sim_secs: 300.0,
            ..SwarmConfig::default()
        }
    }

    #[test]
    fn small_swarm_streams_to_completion() {
        let metrics = run_swarm(&tiny_segments(), &tiny_config(), 7);
        assert_eq!(metrics.reports.len(), 3);
        for report in &metrics.reports {
            assert!(
                report.finished,
                "peer {} did not finish: {:?}",
                report.peer, report.qoe
            );
            assert!(report.qoe.startup_secs.is_some());
            assert!(report.bytes_downloaded > 0);
        }
        assert_eq!(metrics.completion_rate(), 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let segments = tiny_segments();
        let config = tiny_config();
        let a = run_swarm(&segments, &config, 11);
        let b = run_swarm(&segments, &config, 11);
        assert_eq!(a, b);
        let c = run_swarm(&segments, &config, 12);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    /// Pins the legacy control plane's exact output. Any change to
    /// legacy-mode behaviour — message order, timer cadence, RNG draws —
    /// shows up here as a digest mismatch, keeping the default path
    /// bit-identical while the eventful plane evolves beside it.
    #[test]
    fn legacy_output_digest_is_pinned() {
        let metrics = run_swarm(&tiny_segments(), &tiny_config(), 11);
        // FNV-1a over the full Debug rendering of the run.
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{metrics:?}").bytes() {
            digest = (digest ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(
            digest, 0x872b_2cf8_82a8_6794,
            "legacy run output changed; if intentional, update the pinned digest"
        );
    }

    /// The indexed scheduler must be bit-identical to the reference scan:
    /// same candidate order, same RNG draws, same messages — on both
    /// control planes, under churn, and with tracker discovery (late
    /// joins, evictions, bundles all exercise the index maintenance).
    /// Scheduler counters are zeroed before comparing: pass/skip tallies
    /// are *expected* to differ between the modes.
    #[test]
    fn indexed_scheduler_matches_scan_bit_for_bit() {
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(4.0).splice(&video);
        let scenarios = [
            SwarmConfig {
                n_leechers: 6,
                churn: Some(ChurnConfig {
                    volatile_fraction: 0.3,
                    mean_lifetime_secs: 20.0,
                }),
                discovery: DiscoveryMode::Tracker,
                ..tiny_config()
            },
            SwarmConfig {
                n_leechers: 6,
                control_plane: ControlPlane::Eventful,
                flow_model: FlowModel::Fluid,
                churn: Some(ChurnConfig {
                    volatile_fraction: 0.3,
                    mean_lifetime_secs: 20.0,
                }),
                ..tiny_config()
            },
        ];
        for (i, base) in scenarios.into_iter().enumerate() {
            let run = |mode| {
                let config = SwarmConfig {
                    scheduler: mode,
                    ..base.clone()
                };
                let mut metrics = run_swarm(&segments, &config, 11);
                for report in &mut metrics.reports {
                    report.sched = Default::default();
                    // Scan mode never populates the holder index, so the
                    // memory probe legitimately differs between modes.
                    report.mem = Default::default();
                }
                metrics
            };
            let scan = run(SchedulerMode::Scan);
            let indexed = run(SchedulerMode::Indexed);
            assert_eq!(scan, indexed, "scenario {i} diverged between modes");
        }
    }

    /// The dirty-flag scheduler must actually skip work: in a steady
    /// swarm most passes re-prove "nothing to do", and the skip counter
    /// is the direct measure of the saved rescans.
    #[test]
    fn indexed_scheduler_skips_redundant_passes() {
        let config = SwarmConfig {
            n_leechers: 6,
            ..tiny_config()
        };
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(4.0).splice(&video);
        let metrics = run_swarm(&segments, &config, 3);
        let sched = metrics.sched_totals();
        assert!(sched.passes > 0);
        assert!(
            sched.skips * 2 > sched.passes,
            "a large share of scheduling invocations should be skippable \
             (passes {}, skips {})",
            sched.passes,
            sched.skips
        );
        assert!(sched.holder_adds > 0);
    }

    #[test]
    fn peers_offload_the_seeder() {
        // Plenty of peers and segments: most deliveries should be P2P.
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(4.0).splice(&video);
        let config = SwarmConfig {
            n_leechers: 6,
            ..tiny_config()
        };
        let metrics = run_swarm(&segments, &config, 3);
        assert!(
            metrics.peer_offload_ratio() > 0.2,
            "offload ratio {} suspiciously low",
            metrics.peer_offload_ratio()
        );
    }

    #[test]
    fn fluid_swarm_streams_to_completion() {
        let config = SwarmConfig {
            flow_model: FlowModel::Fluid,
            ..tiny_config()
        };
        let metrics = run_swarm(&tiny_segments(), &config, 7);
        assert_eq!(metrics.reports.len(), 3);
        assert_eq!(metrics.completion_rate(), 1.0);
        for report in &metrics.reports {
            assert!(report.qoe.startup_secs.is_some());
            assert!(report.bytes_downloaded > 0);
        }
    }

    #[test]
    fn fluid_runs_are_deterministic() {
        let segments = tiny_segments();
        let config = SwarmConfig {
            flow_model: FlowModel::Fluid,
            ..tiny_config()
        };
        let a = run_swarm(&segments, &config, 11);
        let b = run_swarm(&segments, &config, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn eventful_swarm_streams_to_completion() {
        let config = SwarmConfig {
            control_plane: ControlPlane::Eventful,
            ..tiny_config()
        };
        let metrics = run_swarm(&tiny_segments(), &config, 7);
        assert_eq!(metrics.reports.len(), 3);
        assert_eq!(metrics.completion_rate(), 1.0);
        let control = metrics.control_totals();
        assert_eq!(
            control.haves_sent, 0,
            "eventful mode must not send single Haves"
        );
        assert!(control.have_bundles_sent > 0, "completions must be bundled");
        assert!(control.pumps() > 0);
    }

    #[test]
    fn eventful_runs_are_deterministic() {
        let segments = tiny_segments();
        let config = SwarmConfig {
            control_plane: ControlPlane::Eventful,
            ..tiny_config()
        };
        let a = run_swarm(&segments, &config, 11);
        let b = run_swarm(&segments, &config, 11);
        assert_eq!(a, b);
    }

    /// The message-count regression gate in miniature: on a 20-peer swarm
    /// the eventful control plane must send far fewer control messages
    /// than the legacy one while still delivering the stream.
    #[test]
    fn eventful_control_plane_sends_asymptotically_fewer_messages() {
        let video = Video::builder().duration_secs(48.0).seed(6).build();
        // GoP-grained segments: completions arrive about once a second, so
        // a 2 s coalescing window folds several into each bundle.
        let segments = DurationSplicer::new(1.0).splice(&video);
        let base = SwarmConfig {
            n_leechers: 19,
            peer_bandwidth_bytes_per_sec: 16_000_000.0,
            seeder_bandwidth_bytes_per_sec: 16_000_000.0,
            flow_model: FlowModel::Fluid,
            have_coalesce_secs: Some(2.0),
            ..tiny_config()
        };
        let legacy = run_swarm(&segments, &base, 5);
        let eventful = run_swarm(
            &segments,
            &SwarmConfig {
                control_plane: ControlPlane::Eventful,
                ..base
            },
            5,
        );
        assert_eq!(legacy.completion_rate(), 1.0);
        assert_eq!(eventful.completion_rate(), 1.0);

        let lc = legacy.control_totals();
        let ec = eventful.control_totals();
        // Availability dissemination: every legacy Have is one message;
        // eventful announces the same completions in far fewer bundles.
        assert!(lc.haves_sent > 0);
        assert!(
            ec.have_bundles_sent * 3 < lc.haves_sent,
            "bundles {} vs legacy haves {}",
            ec.have_bundles_sent,
            lc.haves_sent
        );
        assert!(
            ec.mean_bundle_size() > 2.0,
            "bundles barely coalesce: mean size {:.2}",
            ec.mean_bundle_size()
        );
        // And the total control-message volume on the wire shrinks too.
        assert!(
            eventful.net.messages_sent * 3 < legacy.net.messages_sent * 2,
            "eventful sent {} messages, legacy {}",
            eventful.net.messages_sent,
            legacy.net.messages_sent
        );
    }

    /// The auto-tuned window tracks segment duration inside the clamp.
    #[test]
    fn auto_coalesce_scales_with_segment_duration() {
        // Below one pump interval: clamp up (a shorter window coalesces
        // nothing anyway).
        assert_eq!(auto_coalesce_secs(0.1, 0.5), 0.5);
        // Inside the clamp: track the segment duration.
        assert_eq!(auto_coalesce_secs(1.0, 0.5), 1.0);
        assert_eq!(auto_coalesce_secs(1.5, 0.5), 1.5);
        // Above four pump intervals: clamp down (availability news must
        // not go stale).
        assert_eq!(auto_coalesce_secs(4.0, 0.5), 2.0);
        // Degenerate input falls back to the pump interval.
        assert_eq!(auto_coalesce_secs(f64::NAN, 0.5), 0.5);
    }

    /// The coalescing-window sweep at large segment counts (the ROADMAP
    /// prerequisite for the scale profile), kept as a regression test:
    /// wider windows must actually coalesce more, every window must still
    /// deliver the stream, and the auto-tuned default must be exactly the
    /// formula's window and coalesce at least as well as the finest fixed
    /// setting.
    #[test]
    fn coalesce_window_sweep_at_large_segment_counts() {
        let video = Video::builder().duration_secs(48.0).seed(6).build();
        // 96 half-second segments: completions arrive fast, so the window
        // choice dominates the bundle count.
        let segments = DurationSplicer::new(0.5).splice(&video);
        let base = SwarmConfig {
            n_leechers: 8,
            peer_bandwidth_bytes_per_sec: 16_000_000.0,
            seeder_bandwidth_bytes_per_sec: 16_000_000.0,
            flow_model: FlowModel::Fluid,
            control_plane: ControlPlane::Eventful,
            ..tiny_config()
        };
        let run_with = |window: Option<f64>| {
            run_swarm(
                &segments,
                &SwarmConfig {
                    have_coalesce_secs: window,
                    ..base.clone()
                },
                5,
            )
        };
        let mut bundle_sizes = Vec::new();
        for w in [0.125, 0.5, 2.0] {
            let m = run_with(Some(w));
            assert_eq!(m.completion_rate(), 1.0, "window {w} broke the stream");
            bundle_sizes.push(m.control_totals().mean_bundle_size());
        }
        assert!(
            bundle_sizes[2] > bundle_sizes[0],
            "wider window must coalesce more: {bundle_sizes:?}"
        );
        // The unset window is bit-identical to pinning the formula value…
        let mean_seg = segments.total_duration().as_secs_f64() / segments.len() as f64;
        let auto = run_with(None);
        let pinned = run_with(Some(auto_coalesce_secs(mean_seg, base.pump_interval_secs)));
        assert_eq!(auto, pinned, "auto-tune must equal the pinned formula");
        // …and coalesces at least as well as the finest fixed window.
        assert_eq!(auto.completion_rate(), 1.0);
        assert!(
            auto.control_totals().mean_bundle_size() >= bundle_sizes[0],
            "auto window {:.2} coalesces worse than the finest fixed one: {:.2} < {:.2}",
            auto_coalesce_secs(mean_seg, base.pump_interval_secs),
            auto.control_totals().mean_bundle_size(),
            bundle_sizes[0],
        );
    }

    /// Windowed dissemination end to end: completions still reach everyone
    /// (via windows, catch-ups, and the lazy fold), the deferral counters
    /// show real work avoided, and the holder-index insert volume drops.
    /// The ≥2× insert reduction is a scale effect gated by the
    /// `fig_dissem` bench at 250/500 leechers, not asserted here.
    #[test]
    fn windowed_dissemination_defers_and_still_completes() {
        let video = Video::builder().duration_secs(48.0).seed(6).build();
        // 96 half-second segments: longer than the 64-segment interest
        // window, so the window edge and the send-side suppression bind.
        let segments = DurationSplicer::new(0.5).splice(&video);
        let base = SwarmConfig {
            n_leechers: 8,
            peer_bandwidth_bytes_per_sec: 16_000_000.0,
            seeder_bandwidth_bytes_per_sec: 16_000_000.0,
            flow_model: FlowModel::Fluid,
            have_coalesce_secs: Some(2.0),
            control_plane: ControlPlane::Eventful,
            ..tiny_config()
        };
        let full = run_swarm(&segments, &base, 5);
        let windowed = run_swarm(
            &segments,
            &SwarmConfig {
                dissemination: DisseminationMode::Windowed,
                ..base
            },
            5,
        );
        assert_eq!(full.completion_rate(), 1.0);
        assert_eq!(windowed.completion_rate(), 1.0);
        assert_eq!(
            full.dissem_totals(),
            crate::DisseminationStats::default(),
            "full mode must not touch the windowed counters"
        );
        let d = windowed.dissem_totals();
        assert!(d.windows_sent > 0, "windows must be announced");
        assert!(d.deferred_indices > 0, "announcements must be deferred");
        assert!(
            d.window_capped > 0,
            "the fat-link pool must hit the window edge"
        );
        let full_adds = full.sched_totals().holder_adds;
        let win_adds = windowed.sched_totals().holder_adds;
        assert!(
            win_adds < full_adds,
            "windowed holder adds {win_adds} should undercut full \
             dissemination's {full_adds}"
        );
    }

    /// Windowed dissemination maintains the holder index lazily, but the
    /// candidate set any pick sees must still equal a full rescan: the
    /// indexed scheduler stays bit-identical to the scan under windowed
    /// mode, churn included. Scheduler and dissemination counters are
    /// zeroed before comparing — pass/skip and edge-stop tallies differ
    /// between the modes by design.
    #[test]
    fn windowed_indexed_matches_scan_bit_for_bit() {
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(0.5).splice(&video);
        let base = SwarmConfig {
            n_leechers: 6,
            control_plane: ControlPlane::Eventful,
            flow_model: FlowModel::Fluid,
            dissemination: DisseminationMode::Windowed,
            peer_bandwidth_bytes_per_sec: 4_000_000.0,
            seeder_bandwidth_bytes_per_sec: 4_000_000.0,
            churn: Some(ChurnConfig {
                volatile_fraction: 0.3,
                mean_lifetime_secs: 20.0,
            }),
            ..tiny_config()
        };
        let run = |mode| {
            let config = SwarmConfig {
                scheduler: mode,
                ..base.clone()
            };
            let mut metrics = run_swarm(&segments, &config, 11);
            for report in &mut metrics.reports {
                report.sched = Default::default();
                report.dissem = Default::default();
                report.mem = Default::default();
            }
            metrics
        };
        let scan = run(SchedulerMode::Scan);
        let indexed = run(SchedulerMode::Indexed);
        assert_eq!(scan, indexed, "windowed scheduler modes diverged");
    }

    /// The hybrid sparse/dense holder index must be bit-identical to a
    /// sparse-only index: promotion changes the representation, never the
    /// membership or the ascending iteration order a pick sees. Exercised
    /// on the same hostile scenarios as the scan-vs-indexed differential —
    /// tracker discovery with churn, and the eventful+fluid+windowed stack
    /// — with enough leechers that per-segment holder sets actually cross
    /// the promotion threshold. Scheduler counters and the memory probe
    /// are zeroed before comparing: the representation census and heap
    /// bytes differ by design, everything else must not.
    #[test]
    fn hybrid_holder_sets_match_sparse_bit_for_bit() {
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(4.0).splice(&video);
        let scenarios = [
            SwarmConfig {
                n_leechers: 12,
                churn: Some(ChurnConfig {
                    volatile_fraction: 0.3,
                    mean_lifetime_secs: 20.0,
                }),
                discovery: DiscoveryMode::Tracker,
                ..tiny_config()
            },
            SwarmConfig {
                n_leechers: 12,
                control_plane: ControlPlane::Eventful,
                flow_model: FlowModel::Fluid,
                dissemination: DisseminationMode::Windowed,
                churn: Some(ChurnConfig {
                    volatile_fraction: 0.3,
                    mean_lifetime_secs: 20.0,
                }),
                ..tiny_config()
            },
        ];
        for (i, base) in scenarios.into_iter().enumerate() {
            let run = |sparse_only: bool| {
                let config = SwarmConfig {
                    sparse_holders: sparse_only,
                    ..base.clone()
                };
                run_swarm(&segments, &config, 11)
            };
            let mut hybrid = run(false);
            let mut sparse = run(true);
            assert!(
                hybrid.sched_totals().dense_promotions > 0,
                "scenario {i} never crossed the promotion threshold — the \
                 differential would be vacuous"
            );
            assert_eq!(
                sparse.sched_totals().dense_promotions,
                0,
                "the sparse-only reference must never promote"
            );
            for metrics in [&mut hybrid, &mut sparse] {
                for report in &mut metrics.reports {
                    report.sched = Default::default();
                    report.mem = Default::default();
                }
            }
            assert_eq!(
                sparse, hybrid,
                "scenario {i} diverged between holder-set representations"
            );
        }
    }

    #[test]
    #[should_panic(expected = "windowed dissemination requires the eventful control plane")]
    fn windowed_without_eventful_panics() {
        let config = SwarmConfig {
            dissemination: DisseminationMode::Windowed,
            ..tiny_config()
        };
        run_swarm(&tiny_segments(), &config, 1);
    }

    #[test]
    fn shared_segments_match_owned_segments() {
        let segments = tiny_segments();
        let config = tiny_config();
        let owned = run_swarm(&segments, &config, 5);
        let shared = run_swarm_shared(&std::sync::Arc::new(segments), &config, 5);
        assert_eq!(owned, shared);
    }

    #[test]
    fn per_link_loss_compounds_back() {
        let config = SwarmConfig {
            end_to_end_loss: 0.05,
            ..SwarmConfig::default()
        };
        let p = config.per_link_loss();
        assert!(((1.0 - (1.0 - p) * (1.0 - p)) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CDN-only mode requires a CDN")]
    fn cdn_only_without_cdn_panics() {
        let config = SwarmConfig {
            p2p: false,
            cdn: None,
            ..SwarmConfig::default()
        };
        run_swarm(&tiny_segments(), &config, 1);
    }

    #[test]
    fn cdn_only_mode_streams() {
        let config = SwarmConfig {
            p2p: false,
            cdn: Some(CdnConfig::default()),
            ..tiny_config()
        };
        let metrics = run_swarm(&tiny_segments(), &config, 9);
        for report in &metrics.reports {
            assert!(report.finished, "peer {} unfinished", report.peer);
            assert_eq!(report.segments_from_seeder, 0);
            assert_eq!(report.segments_from_peers, 0);
            assert!(report.segments_from_cdn > 0);
        }
    }

    #[test]
    fn tracker_discovery_still_offloads_the_seeder() {
        let video = Video::builder().duration_secs(40.0).seed(6).build();
        let segments = DurationSplicer::new(4.0).splice(&video);
        let config = SwarmConfig {
            n_leechers: 6,
            discovery: DiscoveryMode::Tracker,
            ..tiny_config()
        };
        let metrics = run_swarm(&segments, &config, 3);
        assert_eq!(metrics.completion_rate(), 1.0);
        assert!(
            metrics.peer_offload_ratio() > 0.2,
            "tracker-discovered peers should exchange segments, offload {}",
            metrics.peer_offload_ratio()
        );
    }

    #[test]
    fn tracker_and_full_discovery_agree_qualitatively() {
        let segments = tiny_segments();
        let full = run_swarm(&segments, &tiny_config(), 8);
        let tracked = run_swarm(
            &segments,
            &SwarmConfig {
                discovery: DiscoveryMode::Tracker,
                ..tiny_config()
            },
            8,
        );
        assert_eq!(full.completion_rate(), 1.0);
        assert_eq!(tracked.completion_rate(), 1.0);
    }

    /// A present-but-all-zero fault plan must be bit-identical to no plan
    /// at all: no extra setup draws, no message-fault plane, no scheduled
    /// events. This is the knob-gating contract the digest pin relies on.
    #[test]
    fn zero_knob_fault_plan_is_bit_identical() {
        let segments = tiny_segments();
        let plain = run_swarm(&segments, &tiny_config(), 11);
        let zeroed = run_swarm(
            &segments,
            &SwarmConfig {
                faults: Some(FaultPlanConfig::default()),
                ..tiny_config()
            },
            11,
        );
        assert_eq!(plain, zeroed);
    }

    #[test]
    fn churned_peers_are_flagged_and_stayers_finish() {
        let config = SwarmConfig {
            churn: Some(ChurnConfig::new(0.99, 10.0)),
            n_leechers: 4,
            ..tiny_config()
        };
        let metrics = run_swarm(&tiny_segments(), &config, 21);
        assert_eq!(metrics.reports.len(), 4);
        let departed = metrics.reports.iter().filter(|r| r.departed).count();
        assert!(
            departed >= 1,
            "seeded churn should remove at least one peer"
        );
    }
}
