//! Pure scheduling decisions: which segment next, from which source.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;
use splicecast_netsim::NodeId;

/// Process-wide accumulator of wall-clock time spent inside scheduling
/// passes, in nanoseconds. Summed across every leecher of every swarm run
/// in this process — a benchmarking probe, not a metric: it is
/// non-deterministic and deliberately kept out of [`SwarmMetrics`]
/// (which determinism tests compare bit-for-bit).
///
/// [`SwarmMetrics`]: crate::SwarmMetrics
static SCHED_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Resets the process-wide scheduling wall-clock accumulator to zero.
pub fn reset_sched_wall() {
    SCHED_WALL_NS.store(0, Ordering::Relaxed);
}

/// Nanoseconds spent inside scheduling passes since the last
/// [`reset_sched_wall`], summed across all runs in this process. Callers
/// comparing configurations (e.g. the `fig_sched` bench) reset between
/// runs and run them sequentially.
pub fn sched_wall_ns() -> u64 {
    SCHED_WALL_NS.load(Ordering::Relaxed)
}

pub(crate) fn sched_wall_add(elapsed: Duration) {
    SCHED_WALL_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Picks the next segment to request: streaming is sequential, so it is the
/// lowest-indexed segment that is neither held nor already in flight.
pub fn next_wanted<H, F>(segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    next_wanted_from(0, segment_count, held, in_flight)
}

/// Like [`next_wanted`], but starts scanning at `from`. Callers that track a
/// low-water mark (segments below it are all held) avoid re-walking the
/// played-out prefix on every scheduling pass.
pub fn next_wanted_from<H, F>(from: u32, segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    (from..segment_count).find(|&i| !held(i) && !in_flight(i))
}

/// One segment's holder set: a hybrid representation that starts as a
/// sorted sparse vector and promotes to a dense per-peer-slot bitset once
/// the population crosses the index's threshold.
///
/// Both representations iterate holders in ascending `NodeId` order —
/// sparse by sortedness, dense by walking words from bit 0 up (bit *i* of
/// the bitset is the node with dense index *i*, and dense indices are
/// assigned in ascending `NodeId` order) — so scheduling picks are
/// bit-identical whichever representation a set happens to be in.
#[derive(Debug, Clone)]
enum HolderSet {
    /// Sorted by `NodeId`, binary-searched; cheap while small.
    Sparse(Vec<NodeId>),
    /// One bit per node index; O(1) insert/remove and 1 bit/peer instead
    /// of 32 once a set approaches swarm population.
    Dense(Box<[u64]>),
}

impl Default for HolderSet {
    fn default() -> Self {
        HolderSet::Sparse(Vec::new())
    }
}

impl HolderSet {
    fn contains(&self, peer: NodeId) -> bool {
        match self {
            HolderSet::Sparse(v) => v.binary_search(&peer).is_ok(),
            HolderSet::Dense(words) => {
                let i = peer.index();
                words
                    .get(i / 64)
                    .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            HolderSet::Sparse(v) => v.len(),
            HolderSet::Dense(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Heap bytes behind this set (allocator-visible capacity).
    fn heap_bytes(&self) -> usize {
        match self {
            HolderSet::Sparse(v) => v.capacity() * std::mem::size_of::<NodeId>(),
            HolderSet::Dense(words) => words.len() * std::mem::size_of::<u64>(),
        }
    }

    /// Rebuilds the sorted sparse form (demotion after removals).
    fn to_sparse(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    fn iter(&self) -> HolderIter<'_> {
        match self {
            HolderSet::Sparse(v) => HolderIter::Sparse(v.iter()),
            HolderSet::Dense(words) => HolderIter::Dense {
                words,
                word_ix: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }
}

/// Ascending-`NodeId` iterator over one segment's holders, independent of
/// the set's current representation.
#[derive(Debug, Clone)]
pub enum HolderIter<'a> {
    #[doc(hidden)]
    Sparse(std::slice::Iter<'a, NodeId>),
    #[doc(hidden)]
    Dense {
        words: &'a [u64],
        word_ix: usize,
        current: u64,
    },
}

impl Iterator for HolderIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            HolderIter::Sparse(it) => it.next().copied(),
            HolderIter::Dense {
                words,
                word_ix,
                current,
            } => {
                while *current == 0 {
                    *word_ix += 1;
                    *current = *words.get(*word_ix)?;
                }
                let bit = current.trailing_zeros() as usize;
                *current &= *current - 1;
                Some(NodeId::from_index(*word_ix * 64 + bit))
            }
        }
    }
}

/// An incrementally maintained per-segment holder index: for each segment,
/// the set of handshaken peers known to hold it, as a hybrid
/// [`HolderSet`].
///
/// This replaces the O(peers) rescan of every `PeerView` per scheduling
/// decision with an O(holders-of-one-segment) walk. Maintenance happens at
/// the points where knowledge changes — `Bitfield`/`Have`/`HaveBundle`
/// arrival, handshake completion, and peer eviction — which are each cheap
/// and already O(changed bits).
///
/// Determinism contract: iterating [`HolderIndex::of`] visits candidates
/// in ascending `NodeId` order in both representations, so picks are
/// bit-identical to walking the `BTreeMap` of peer views (and to a
/// sparse-only index — see the sparse-vs-hybrid differential test).
///
/// Known-complete peers are *not* in this index at all: the leecher
/// summarizes them out ([`HolderIndex::remove_peer`] at promotion time)
/// and merges them back in at pick time as implicit holders of
/// everything, the same sorted-position merge the CDN already uses.
#[derive(Debug, Clone)]
pub struct HolderIndex {
    per_segment: Vec<HolderSet>,
    /// Sparse sets promote to dense when their population exceeds this.
    promote_at: usize,
    /// When `true`, never promote (differential-testing reference mode).
    sparse_only: bool,
    /// Cumulative sparse→dense promotions.
    dense_promotions: u64,
}

impl Default for HolderIndex {
    fn default() -> Self {
        HolderIndex::new(0)
    }
}

/// Promotion threshold for a swarm of `universe` node slots: the
/// break-even point where a dense bitset (`universe/8` bytes) costs no
/// more than the sparse vector it replaces (4 bytes per holder), with a
/// floor so tiny swarms never bother promoting.
fn promote_threshold(universe: usize) -> usize {
    (universe / 32).max(8)
}

impl HolderIndex {
    /// An empty index over `segment_count` segments with a minimal
    /// promotion threshold (tests and tiny swarms).
    pub fn new(segment_count: u32) -> Self {
        HolderIndex::with_universe(segment_count, 0)
    }

    /// An empty index over `segment_count` segments sized for a swarm of
    /// `universe` node slots: the sparse→dense promotion threshold is set
    /// at the memory break-even point `max(8, universe/32)`.
    pub fn with_universe(segment_count: u32, universe: usize) -> Self {
        HolderIndex {
            per_segment: vec![HolderSet::default(); segment_count as usize],
            promote_at: promote_threshold(universe),
            sparse_only: false,
            dense_promotions: 0,
        }
    }

    /// Pins every set to the sparse representation forever. Reference
    /// mode for the sparse-vs-hybrid differential test; behaviour must be
    /// bit-identical to the hybrid default.
    pub fn sparse_only(mut self) -> Self {
        self.sparse_only = true;
        self
    }

    /// Records `peer` as a holder of `segment`. Returns `true` when the
    /// entry is new. Out-of-range segments are ignored. A sparse set that
    /// crosses the promotion threshold converts to the dense form.
    pub fn insert(&mut self, segment: u32, peer: NodeId) -> bool {
        let Some(holders) = self.per_segment.get_mut(segment as usize) else {
            return false;
        };
        match holders {
            HolderSet::Sparse(v) => match v.binary_search(&peer) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, peer);
                    if !self.sparse_only && v.len() > self.promote_at {
                        let top = v.last().expect("non-empty after insert").index();
                        let mut words = vec![0u64; top / 64 + 1].into_boxed_slice();
                        for n in v.iter() {
                            let i = n.index();
                            words[i / 64] |= 1u64 << (i % 64);
                        }
                        *holders = HolderSet::Dense(words);
                        self.dense_promotions += 1;
                    }
                    true
                }
            },
            HolderSet::Dense(words) => {
                let i = peer.index();
                if i / 64 >= words.len() {
                    let mut grown = vec![0u64; i / 64 + 1].into_boxed_slice();
                    grown[..words.len()].copy_from_slice(words);
                    *words = grown;
                }
                let fresh = words[i / 64] & (1u64 << (i % 64)) == 0;
                words[i / 64] |= 1u64 << (i % 64);
                fresh
            }
        }
    }

    /// Removes `peer` as a holder of `segment`. Returns `true` when an
    /// entry was removed. A dense set that drains below half the
    /// promotion threshold demotes back to sparse (hysteresis, so a set
    /// hovering at the threshold does not flap).
    pub fn remove(&mut self, segment: u32, peer: NodeId) -> bool {
        let Some(holders) = self.per_segment.get_mut(segment as usize) else {
            return false;
        };
        let removed = match holders {
            HolderSet::Sparse(v) => match v.binary_search(&peer) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            HolderSet::Dense(words) => {
                let i = peer.index();
                let had = words
                    .get(i / 64)
                    .is_some_and(|w| w & (1u64 << (i % 64)) != 0);
                if had {
                    words[i / 64] &= !(1u64 << (i % 64));
                }
                had
            }
        };
        if removed {
            Self::maybe_shrink(holders, self.promote_at);
        }
        removed
    }

    /// Removes `peer` from every segment's holder set (peer eviction).
    /// Returns the number of entries removed.
    ///
    /// Shrinks-on-evict: a sparse set whose capacity has drifted to more
    /// than twice its population is reallocated down, and a dense set
    /// that drained below half the promotion threshold demotes back to
    /// sparse — so long-lived swarms with churn do not keep
    /// peak-population storage pinned for every segment.
    pub fn remove_peer(&mut self, peer: NodeId) -> u64 {
        let mut removed = 0;
        for holders in &mut self.per_segment {
            match holders {
                HolderSet::Sparse(v) => {
                    if let Ok(pos) = v.binary_search(&peer) {
                        v.remove(pos);
                        removed += 1;
                        Self::maybe_shrink(holders, self.promote_at);
                    }
                }
                HolderSet::Dense(words) => {
                    let i = peer.index();
                    if words
                        .get(i / 64)
                        .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
                    {
                        words[i / 64] &= !(1u64 << (i % 64));
                        removed += 1;
                        Self::maybe_shrink(holders, self.promote_at);
                    }
                }
            }
        }
        removed
    }

    /// Post-removal storage hygiene for one set: demote a drained dense
    /// set, shrink an over-capacity sparse one.
    fn maybe_shrink(holders: &mut HolderSet, promote_at: usize) {
        match holders {
            HolderSet::Sparse(v) => {
                if v.capacity() > 8 && v.capacity() > v.len() * 2 {
                    v.shrink_to_fit();
                }
            }
            HolderSet::Dense(_) => {
                if holders.len() < promote_at / 2 {
                    *holders = HolderSet::Sparse(holders.to_sparse());
                }
            }
        }
    }

    /// Frees one segment's holder set entirely, returning its memory to
    /// the allocator and resetting it to the sparse representation. The
    /// leecher calls this for segments it has acquired (and has no raced
    /// in-flight entry left for): the scheduler can never pick them
    /// again, so their sets would be dead weight.
    pub fn purge_segment(&mut self, segment: u32) {
        if let Some(holders) = self.per_segment.get_mut(segment as usize) {
            *holders = HolderSet::default();
        }
    }

    /// Iterates the holders of `segment` in ascending `NodeId` order.
    pub fn of(&self, segment: u32) -> HolderIter<'_> {
        static EMPTY: [NodeId; 0] = [];
        self.per_segment
            .get(segment as usize)
            .map(HolderSet::iter)
            .unwrap_or(HolderIter::Sparse(EMPTY.iter()))
    }

    /// Whether `peer` is indexed as a holder of `segment`.
    pub fn contains(&self, segment: u32, peer: NodeId) -> bool {
        self.per_segment
            .get(segment as usize)
            .is_some_and(|h| h.contains(peer))
    }

    /// Whether `segment`'s set is currently in the dense representation.
    pub fn is_dense(&self, segment: u32) -> bool {
        matches!(
            self.per_segment.get(segment as usize),
            Some(HolderSet::Dense(_))
        )
    }

    /// Cumulative sparse→dense promotions over this index's lifetime.
    pub fn dense_promotions(&self) -> u64 {
        self.dense_promotions
    }

    /// Point-in-time representation census: `(non-empty sparse sets,
    /// dense sets)`.
    pub fn census(&self) -> (u64, u64) {
        let mut sparse = 0;
        let mut dense = 0;
        for holders in &self.per_segment {
            match holders {
                HolderSet::Sparse(v) if !v.is_empty() => sparse += 1,
                HolderSet::Sparse(_) => {}
                HolderSet::Dense(_) => dense += 1,
            }
        }
        (sparse, dense)
    }

    /// Bytes of heap behind this index: the per-segment spine plus every
    /// set's *capacity* (allocator-visible cost, not just population).
    pub fn heap_bytes(&self) -> usize {
        let spine = self.per_segment.capacity() * std::mem::size_of::<HolderSet>();
        let sets: usize = self.per_segment.iter().map(HolderSet::heap_bytes).sum();
        spine + sets
    }

    /// Live entries across every segment (input to the pre-diet model:
    /// without purge-on-acquire the index would hold every added entry
    /// that was not explicitly removed).
    pub fn live_entries(&self) -> u64 {
        self.per_segment.iter().map(|h| h.len() as u64).sum()
    }
}

/// A candidate upload source with its current load (requests we already
/// have outstanding to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCandidate {
    /// The peer that holds the segment.
    pub peer: NodeId,
    /// Our outstanding requests to that peer.
    pub outstanding: u32,
}

/// Picks the least-loaded candidate, breaking ties uniformly at random.
/// Spreading by load is what lets the swarm shift traffic off the seeder as
/// replicas appear.
pub fn pick_source(candidates: &[SourceCandidate], rng: &mut StdRng) -> Option<NodeId> {
    let min = candidates.iter().map(|c| c.outstanding).min()?;
    let tied = candidates.iter().filter(|c| c.outstanding == min).count();
    // The second filter pass replaces collecting the tied peers into a
    // Vec; the RNG is consulted exactly as before, so seeded runs pick
    // the same sources.
    let pick = if tied == 1 { 0 } else { rng.gen_range(0..tied) };
    candidates
        .iter()
        .filter(|c| c.outstanding == min)
        .nth(pick)
        .map(|c| c.peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn next_wanted_is_sequential() {
        let held = [true, true, false, false, true];
        let in_flight = [false, false, true, false, false];
        let next = next_wanted(5, |i| held[i as usize], |i| in_flight[i as usize]);
        assert_eq!(next, Some(3));
    }

    #[test]
    fn next_wanted_exhausted() {
        assert_eq!(next_wanted(3, |_| true, |_| false), None);
        assert_eq!(next_wanted(3, |_| false, |_| true), None);
        assert_eq!(next_wanted(0, |_| false, |_| false), None);
    }

    #[test]
    fn pick_source_prefers_least_loaded() {
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 3,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(3),
                outstanding: 1,
            },
        ];
        for _ in 0..10 {
            assert_eq!(pick_source(&candidates, &mut rng), Some(node(2)));
        }
    }

    #[test]
    fn pick_source_breaks_ties_randomly() {
        let mut rng = StdRng::seed_from_u64(7);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
        ];
        let picks: std::collections::HashSet<NodeId> = (0..64)
            .map(|_| pick_source(&candidates, &mut rng).unwrap())
            .collect();
        assert_eq!(
            picks.len(),
            2,
            "both tied candidates should be picked eventually"
        );
    }

    #[test]
    fn pick_source_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pick_source(&[], &mut rng), None);
    }

    fn holders(idx: &HolderIndex, segment: u32) -> Vec<NodeId> {
        idx.of(segment).collect()
    }

    #[test]
    fn holder_index_insert_is_sorted_and_deduplicated() {
        let mut idx = HolderIndex::new(3);
        assert!(idx.insert(0, node(5)));
        assert!(idx.insert(0, node(2)));
        assert!(idx.insert(0, node(9)));
        assert!(!idx.insert(0, node(5)), "duplicate insert is a no-op");
        assert_eq!(holders(&idx, 0), vec![node(2), node(5), node(9)]);
        assert_eq!(idx.of(1).count(), 0);
    }

    #[test]
    fn holder_index_remove() {
        let mut idx = HolderIndex::new(2);
        idx.insert(1, node(3));
        idx.insert(1, node(4));
        assert!(idx.remove(1, node(3)));
        assert!(!idx.remove(1, node(3)), "double remove is a no-op");
        assert_eq!(holders(&idx, 1), vec![node(4)]);
    }

    #[test]
    fn holder_index_remove_peer_sweeps_all_segments() {
        let mut idx = HolderIndex::new(4);
        for seg in 0..4 {
            idx.insert(seg, node(7));
        }
        idx.insert(2, node(8));
        assert_eq!(idx.remove_peer(node(7)), 4);
        assert_eq!(idx.remove_peer(node(7)), 0);
        assert_eq!(holders(&idx, 2), vec![node(8)]);
    }

    #[test]
    fn holder_index_out_of_range_is_ignored() {
        let mut idx = HolderIndex::new(1);
        assert!(!idx.insert(5, node(1)));
        assert!(!idx.remove(5, node(1)));
        assert_eq!(idx.of(5).count(), 0);
    }

    /// Crossing the promotion threshold flips a set to the dense bitset;
    /// membership and ascending iteration order are unchanged.
    #[test]
    fn holder_set_promotes_to_dense_past_threshold() {
        // `new` uses the floor threshold of 8.
        let mut idx = HolderIndex::new(2);
        // Insert in a scrambled order, crossing the threshold mid-way.
        let order = [13usize, 2, 30, 7, 21, 4, 18, 9, 26, 11, 5];
        for (k, &i) in order.iter().enumerate() {
            assert!(idx.insert(0, node(i)));
            assert_eq!(idx.is_dense(0), k + 1 > 8, "after {} inserts", k + 1);
        }
        assert_eq!(idx.dense_promotions(), 1);
        let mut expected: Vec<NodeId> = order.iter().map(|&i| node(i)).collect();
        expected.sort();
        assert_eq!(holders(&idx, 0), expected);
        assert!(idx.contains(0, node(30)) && !idx.contains(0, node(3)));
        assert!(!idx.insert(0, node(21)), "duplicate insert in dense form");
        assert_eq!(idx.census(), (0, 1));

        // The sparse-only reference never promotes but sees the same set.
        let mut sparse = HolderIndex::new(2).sparse_only();
        for &i in &order {
            sparse.insert(0, node(i));
        }
        assert!(!sparse.is_dense(0));
        assert_eq!(sparse.dense_promotions(), 0);
        assert_eq!(holders(&sparse, 0), expected);
        assert_eq!(sparse.census(), (1, 0));
    }

    /// Removals drain a dense set back below half the threshold and it
    /// demotes to sparse (hysteresis: not at the threshold itself).
    #[test]
    fn holder_set_demotes_with_hysteresis() {
        let mut idx = HolderIndex::new(1);
        for i in 0..12 {
            idx.insert(0, node(i));
        }
        assert!(idx.is_dense(0));
        // Down to 4 = threshold/2: still dense.
        for i in 0..8 {
            assert!(idx.remove(0, node(i)));
        }
        assert!(idx.is_dense(0), "hysteresis holds at threshold/2");
        // One more removal crosses the demotion floor.
        assert!(idx.remove(0, node(8)));
        assert!(!idx.is_dense(0));
        assert_eq!(holders(&idx, 0), vec![node(9), node(10), node(11)]);

        // `remove_peer` sweeps demote too.
        let mut idx = HolderIndex::new(1);
        for i in 0..12 {
            idx.insert(0, node(i));
        }
        for i in 0..9 {
            assert_eq!(idx.remove_peer(node(i)), 1);
        }
        assert!(!idx.is_dense(0));
        assert_eq!(holders(&idx, 0), vec![node(9), node(10), node(11)]);
    }

    /// A dense set grows its word array when a higher node index arrives
    /// than the set was sized for at promotion time.
    #[test]
    fn dense_set_grows_for_late_high_indices() {
        let mut idx = HolderIndex::new(1);
        for i in 0..10 {
            idx.insert(0, node(i));
        }
        assert!(idx.is_dense(0));
        assert!(idx.insert(0, node(700)));
        assert!(idx.contains(0, node(700)));
        let got = holders(&idx, 0);
        assert_eq!(got.len(), 11);
        assert_eq!(*got.last().unwrap(), node(700));
    }

    /// The universe hint raises the promotion threshold to the memory
    /// break-even point.
    #[test]
    fn universe_hint_sets_promotion_threshold() {
        let mut idx = HolderIndex::with_universe(1, 2048);
        for i in 0..64 {
            idx.insert(0, node(i));
        }
        assert!(!idx.is_dense(0), "64 holders sit at the 2048/32 threshold");
        idx.insert(0, node(64));
        assert!(idx.is_dense(0), "65th holder crosses it");
    }

    /// `purge_segment` resets a dense set back to an empty sparse one.
    #[test]
    fn purge_resets_representation() {
        let mut idx = HolderIndex::new(1);
        for i in 0..10 {
            idx.insert(0, node(i));
        }
        assert!(idx.is_dense(0));
        idx.purge_segment(0);
        assert!(!idx.is_dense(0));
        assert_eq!(idx.of(0).count(), 0);
        assert_eq!(idx.census(), (0, 0));
        assert_eq!(idx.heap_bytes(), std::mem::size_of::<HolderSet>());
    }
}
