//! Pure scheduling decisions: which segment next, from which source.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;
use splicecast_netsim::NodeId;

/// Process-wide accumulator of wall-clock time spent inside scheduling
/// passes, in nanoseconds. Summed across every leecher of every swarm run
/// in this process — a benchmarking probe, not a metric: it is
/// non-deterministic and deliberately kept out of [`SwarmMetrics`]
/// (which determinism tests compare bit-for-bit).
///
/// [`SwarmMetrics`]: crate::SwarmMetrics
static SCHED_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Resets the process-wide scheduling wall-clock accumulator to zero.
pub fn reset_sched_wall() {
    SCHED_WALL_NS.store(0, Ordering::Relaxed);
}

/// Nanoseconds spent inside scheduling passes since the last
/// [`reset_sched_wall`], summed across all runs in this process. Callers
/// comparing configurations (e.g. the `fig_sched` bench) reset between
/// runs and run them sequentially.
pub fn sched_wall_ns() -> u64 {
    SCHED_WALL_NS.load(Ordering::Relaxed)
}

pub(crate) fn sched_wall_add(elapsed: Duration) {
    SCHED_WALL_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Picks the next segment to request: streaming is sequential, so it is the
/// lowest-indexed segment that is neither held nor already in flight.
pub fn next_wanted<H, F>(segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    next_wanted_from(0, segment_count, held, in_flight)
}

/// Like [`next_wanted`], but starts scanning at `from`. Callers that track a
/// low-water mark (segments below it are all held) avoid re-walking the
/// played-out prefix on every scheduling pass.
pub fn next_wanted_from<H, F>(from: u32, segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    (from..segment_count).find(|&i| !held(i) && !in_flight(i))
}

/// An incrementally maintained per-segment holder index: for each segment,
/// the sorted set of handshaken peers known to hold it.
///
/// This replaces the O(peers) rescan of every `PeerView` per scheduling
/// decision with an O(holders-of-one-segment) walk. Maintenance happens at
/// the points where knowledge changes — `Bitfield`/`Have`/`HaveBundle`
/// arrival, handshake completion, and peer eviction — which are each cheap
/// and already O(changed bits).
///
/// Determinism contract: each per-segment set is kept sorted by `NodeId`,
/// so iterating `of(segment)` visits candidates in the same ascending order
/// as walking the `BTreeMap` of peer views did.
#[derive(Debug, Clone, Default)]
pub struct HolderIndex {
    per_segment: Vec<Vec<NodeId>>,
}

impl HolderIndex {
    /// An empty index over `segment_count` segments.
    pub fn new(segment_count: u32) -> Self {
        HolderIndex {
            per_segment: vec![Vec::new(); segment_count as usize],
        }
    }

    /// Records `peer` as a holder of `segment`. Returns `true` when the
    /// entry is new. Out-of-range segments are ignored.
    pub fn insert(&mut self, segment: u32, peer: NodeId) -> bool {
        let Some(holders) = self.per_segment.get_mut(segment as usize) else {
            return false;
        };
        match holders.binary_search(&peer) {
            Ok(_) => false,
            Err(pos) => {
                holders.insert(pos, peer);
                true
            }
        }
    }

    /// Removes `peer` as a holder of `segment`. Returns `true` when an
    /// entry was removed.
    pub fn remove(&mut self, segment: u32, peer: NodeId) -> bool {
        let Some(holders) = self.per_segment.get_mut(segment as usize) else {
            return false;
        };
        match holders.binary_search(&peer) {
            Ok(pos) => {
                holders.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes `peer` from every segment's holder set (peer eviction).
    /// Returns the number of entries removed.
    ///
    /// Shrinks-on-evict: a set whose capacity has drifted to more than
    /// twice its population (plus slack for small sets) is reallocated
    /// down, so long-lived swarms with churn do not keep peak-population
    /// capacity pinned for every segment.
    pub fn remove_peer(&mut self, peer: NodeId) -> u64 {
        let mut removed = 0;
        for holders in &mut self.per_segment {
            if let Ok(pos) = holders.binary_search(&peer) {
                holders.remove(pos);
                removed += 1;
                if holders.capacity() > 8 && holders.capacity() > holders.len() * 2 {
                    holders.shrink_to_fit();
                }
            }
        }
        removed
    }

    /// Frees one segment's holder set entirely, returning its memory to
    /// the allocator. The leecher calls this for segments it has acquired
    /// (and has no raced in-flight entry left for): the scheduler can
    /// never pick them again, so their sets are dead weight — the largest
    /// single share of a big swarm's holder-index footprint.
    pub fn purge_segment(&mut self, segment: u32) {
        if let Some(holders) = self.per_segment.get_mut(segment as usize) {
            *holders = Vec::new();
        }
    }

    /// The holders of `segment`, in ascending `NodeId` order.
    pub fn of(&self, segment: u32) -> &[NodeId] {
        self.per_segment
            .get(segment as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Bytes of heap behind this index: the per-segment spine plus every
    /// set's *capacity* (allocator-visible cost, not just population).
    pub fn heap_bytes(&self) -> usize {
        let spine = self.per_segment.capacity() * std::mem::size_of::<Vec<NodeId>>();
        let sets: usize = self
            .per_segment
            .iter()
            .map(|h| h.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        spine + sets
    }

    /// Live entries across every segment (input to the pre-diet model:
    /// without purge-on-acquire the index would hold every added entry
    /// that was not explicitly removed).
    pub fn live_entries(&self) -> u64 {
        self.per_segment.iter().map(|h| h.len() as u64).sum()
    }
}

/// A candidate upload source with its current load (requests we already
/// have outstanding to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCandidate {
    /// The peer that holds the segment.
    pub peer: NodeId,
    /// Our outstanding requests to that peer.
    pub outstanding: u32,
}

/// Picks the least-loaded candidate, breaking ties uniformly at random.
/// Spreading by load is what lets the swarm shift traffic off the seeder as
/// replicas appear.
pub fn pick_source(candidates: &[SourceCandidate], rng: &mut StdRng) -> Option<NodeId> {
    let min = candidates.iter().map(|c| c.outstanding).min()?;
    let tied = candidates.iter().filter(|c| c.outstanding == min).count();
    // The second filter pass replaces collecting the tied peers into a
    // Vec; the RNG is consulted exactly as before, so seeded runs pick
    // the same sources.
    let pick = if tied == 1 { 0 } else { rng.gen_range(0..tied) };
    candidates
        .iter()
        .filter(|c| c.outstanding == min)
        .nth(pick)
        .map(|c| c.peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn next_wanted_is_sequential() {
        let held = [true, true, false, false, true];
        let in_flight = [false, false, true, false, false];
        let next = next_wanted(5, |i| held[i as usize], |i| in_flight[i as usize]);
        assert_eq!(next, Some(3));
    }

    #[test]
    fn next_wanted_exhausted() {
        assert_eq!(next_wanted(3, |_| true, |_| false), None);
        assert_eq!(next_wanted(3, |_| false, |_| true), None);
        assert_eq!(next_wanted(0, |_| false, |_| false), None);
    }

    #[test]
    fn pick_source_prefers_least_loaded() {
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 3,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(3),
                outstanding: 1,
            },
        ];
        for _ in 0..10 {
            assert_eq!(pick_source(&candidates, &mut rng), Some(node(2)));
        }
    }

    #[test]
    fn pick_source_breaks_ties_randomly() {
        let mut rng = StdRng::seed_from_u64(7);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
        ];
        let picks: std::collections::HashSet<NodeId> = (0..64)
            .map(|_| pick_source(&candidates, &mut rng).unwrap())
            .collect();
        assert_eq!(
            picks.len(),
            2,
            "both tied candidates should be picked eventually"
        );
    }

    #[test]
    fn pick_source_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pick_source(&[], &mut rng), None);
    }

    #[test]
    fn holder_index_insert_is_sorted_and_deduplicated() {
        let mut idx = HolderIndex::new(3);
        assert!(idx.insert(0, node(5)));
        assert!(idx.insert(0, node(2)));
        assert!(idx.insert(0, node(9)));
        assert!(!idx.insert(0, node(5)), "duplicate insert is a no-op");
        assert_eq!(idx.of(0), &[node(2), node(5), node(9)]);
        assert!(idx.of(1).is_empty());
    }

    #[test]
    fn holder_index_remove() {
        let mut idx = HolderIndex::new(2);
        idx.insert(1, node(3));
        idx.insert(1, node(4));
        assert!(idx.remove(1, node(3)));
        assert!(!idx.remove(1, node(3)), "double remove is a no-op");
        assert_eq!(idx.of(1), &[node(4)]);
    }

    #[test]
    fn holder_index_remove_peer_sweeps_all_segments() {
        let mut idx = HolderIndex::new(4);
        for seg in 0..4 {
            idx.insert(seg, node(7));
        }
        idx.insert(2, node(8));
        assert_eq!(idx.remove_peer(node(7)), 4);
        assert_eq!(idx.remove_peer(node(7)), 0);
        assert_eq!(idx.of(2), &[node(8)]);
    }

    #[test]
    fn holder_index_out_of_range_is_ignored() {
        let mut idx = HolderIndex::new(1);
        assert!(!idx.insert(5, node(1)));
        assert!(!idx.remove(5, node(1)));
        assert!(idx.of(5).is_empty());
    }
}
