//! Pure scheduling decisions: which segment next, from which source.

use rand::rngs::StdRng;
use rand::Rng;
use splicecast_netsim::NodeId;

/// Picks the next segment to request: streaming is sequential, so it is the
/// lowest-indexed segment that is neither held nor already in flight.
pub fn next_wanted<H, F>(segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    next_wanted_from(0, segment_count, held, in_flight)
}

/// Like [`next_wanted`], but starts scanning at `from`. Callers that track a
/// low-water mark (segments below it are all held) avoid re-walking the
/// played-out prefix on every scheduling pass.
pub fn next_wanted_from<H, F>(from: u32, segment_count: u32, held: H, in_flight: F) -> Option<u32>
where
    H: Fn(u32) -> bool,
    F: Fn(u32) -> bool,
{
    (from..segment_count).find(|&i| !held(i) && !in_flight(i))
}

/// A candidate upload source with its current load (requests we already
/// have outstanding to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCandidate {
    /// The peer that holds the segment.
    pub peer: NodeId,
    /// Our outstanding requests to that peer.
    pub outstanding: u32,
}

/// Picks the least-loaded candidate, breaking ties uniformly at random.
/// Spreading by load is what lets the swarm shift traffic off the seeder as
/// replicas appear.
pub fn pick_source(candidates: &[SourceCandidate], rng: &mut StdRng) -> Option<NodeId> {
    let min = candidates.iter().map(|c| c.outstanding).min()?;
    let tied = candidates.iter().filter(|c| c.outstanding == min).count();
    // The second filter pass replaces collecting the tied peers into a
    // Vec; the RNG is consulted exactly as before, so seeded runs pick
    // the same sources.
    let pick = if tied == 1 { 0 } else { rng.gen_range(0..tied) };
    candidates
        .iter()
        .filter(|c| c.outstanding == min)
        .nth(pick)
        .map(|c| c.peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn next_wanted_is_sequential() {
        let held = [true, true, false, false, true];
        let in_flight = [false, false, true, false, false];
        let next = next_wanted(5, |i| held[i as usize], |i| in_flight[i as usize]);
        assert_eq!(next, Some(3));
    }

    #[test]
    fn next_wanted_exhausted() {
        assert_eq!(next_wanted(3, |_| true, |_| false), None);
        assert_eq!(next_wanted(3, |_| false, |_| true), None);
        assert_eq!(next_wanted(0, |_| false, |_| false), None);
    }

    #[test]
    fn pick_source_prefers_least_loaded() {
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 3,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(3),
                outstanding: 1,
            },
        ];
        for _ in 0..10 {
            assert_eq!(pick_source(&candidates, &mut rng), Some(node(2)));
        }
    }

    #[test]
    fn pick_source_breaks_ties_randomly() {
        let mut rng = StdRng::seed_from_u64(7);
        let candidates = [
            SourceCandidate {
                peer: node(1),
                outstanding: 0,
            },
            SourceCandidate {
                peer: node(2),
                outstanding: 0,
            },
        ];
        let picks: std::collections::HashSet<NodeId> = (0..64)
            .map(|_| pick_source(&candidates, &mut rng).unwrap())
            .collect();
        assert_eq!(
            picks.len(),
            2,
            "both tied candidates should be picked eventually"
        );
    }

    #[test]
    fn pick_source_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pick_source(&[], &mut rng), None);
    }
}
