//! The adaptive-bitrate baseline (§I).
//!
//! The paper motivates duration-adaptive splicing against the industry
//! practice it describes for Netflix/Hulu: "their clients determine a
//! bit-rate based on the available bandwidth... it will degrade the video
//! quality when the bandwidth becomes low". This module implements that
//! baseline faithfully so the two approaches can be compared on the same
//! substrate: CDN-served clients that fetch segments sequentially and pick
//! a rendition of a [`Ladder`] per segment.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use rand::{Rng, SeedableRng};
use splicecast_media::{Ladder, Manifest};
use splicecast_netsim::{
    star, Ctx, FlowId, LinkSpec, NodeBehavior, NodeEvent, NodeId, NullBehavior, SimDuration,
    SimTime, Simulator,
};
use splicecast_player::{Playback, PlaybackState, QoeMetrics, StallEvent};
use splicecast_protocol::{decode_single, encode_to_bytes, Message};

use crate::peer::{UploadManager, UploadRequest};
use crate::policy::{BandwidthEstimator, EstimatorKind};

const TOKEN_BOOT: u64 = 1;
const TOKEN_PUMP: u64 = 2;

/// How a client picks the next segment's rendition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbrAlgorithm {
    /// Always fetch the given rung (clamped to the ladder) — the
    /// non-adaptive control arm, e.g. "always 1 Mbps".
    FixedRendition(usize),
    /// Throughput rule: the highest rendition whose bitrate is at most
    /// `safety ×` the estimated throughput.
    RateBased {
        /// Fraction of the estimated throughput to spend (e.g. 0.8).
        safety: f64,
    },
    /// Buffer-based rate adaptation in the spirit of the paper's reference
    /// \[7\] (Huang et al.): below `low_secs` of buffer pick the lowest rung,
    /// above `high_secs` the highest, linear in between.
    BufferBased {
        /// Buffer level mapped to the lowest rendition, seconds.
        low_secs: f64,
        /// Buffer level mapped to the highest rendition, seconds.
        high_secs: f64,
    },
}

impl AbrAlgorithm {
    /// Picks a rung for the next segment.
    pub fn choose(
        &self,
        ladder: &[u64],
        buffered_secs: f64,
        estimated_bytes_per_sec: f64,
    ) -> usize {
        let top = ladder.len() - 1;
        match *self {
            AbrAlgorithm::FixedRendition(r) => r.min(top),
            AbrAlgorithm::RateBased { safety } => {
                let budget_bps = estimated_bytes_per_sec * 8.0 * safety;
                ladder
                    .iter()
                    .rposition(|&b| (b as f64) <= budget_bps)
                    .unwrap_or(0)
            }
            AbrAlgorithm::BufferBased {
                low_secs,
                high_secs,
            } => {
                if buffered_secs <= low_secs {
                    0
                } else if buffered_secs >= high_secs {
                    top
                } else {
                    let frac = (buffered_secs - low_secs) / (high_secs - low_secs);
                    ((frac * top as f64).floor() as usize).min(top)
                }
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            AbrAlgorithm::FixedRendition(r) => format!("fixed-{r}"),
            AbrAlgorithm::RateBased { .. } => "rate-based".to_owned(),
            AbrAlgorithm::BufferBased { .. } => "buffer-based".to_owned(),
        }
    }
}

/// Configuration of an ABR (CDN-served) streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbrConfig {
    /// Number of clients.
    pub n_clients: usize,
    /// Client access-link capacity, bytes per second.
    pub client_bandwidth_bytes_per_sec: f64,
    /// Origin (CDN) access-link capacity, bytes per second.
    pub origin_bandwidth_bytes_per_sec: f64,
    /// One-way client↔origin latency, seconds.
    pub one_way_latency_secs: f64,
    /// End-to-end packet loss.
    pub end_to_end_loss: f64,
    /// Concurrent uploads the origin serves.
    pub origin_upload_slots: usize,
    /// The rendition-selection algorithm.
    pub algorithm: AbrAlgorithm,
    /// Clients join uniformly within this window, seconds.
    pub join_stagger_secs: f64,
    /// Player re-buffering threshold, seconds.
    pub resume_buffer_secs: f64,
    /// Hard cap on simulated time, seconds.
    pub max_sim_secs: f64,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig {
            n_clients: 19,
            client_bandwidth_bytes_per_sec: 256_000.0,
            origin_bandwidth_bytes_per_sec: 8_000_000.0,
            one_way_latency_secs: 0.05,
            end_to_end_loss: 0.05,
            origin_upload_slots: 64,
            algorithm: AbrAlgorithm::BufferBased {
                low_secs: 4.0,
                high_secs: 16.0,
            },
            join_stagger_secs: 1.0,
            resume_buffer_secs: 0.25,
            max_sim_secs: 1_800.0,
        }
    }
}

impl AbrConfig {
    fn validate(&self) {
        assert!(self.n_clients >= 1, "need at least one client");
        assert!(
            self.client_bandwidth_bytes_per_sec > 0.0,
            "client bandwidth must be positive"
        );
        assert!(
            self.origin_bandwidth_bytes_per_sec > 0.0,
            "origin bandwidth must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.end_to_end_loss),
            "loss must be in [0,1)"
        );
        assert!(self.origin_upload_slots > 0, "origin needs upload slots");
        assert!(self.max_sim_secs > 0.0, "sim cap must be positive");
    }
}

/// Final accounting for one ABR client.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AbrReport {
    /// Client index.
    pub client: usize,
    /// Startup / stall / completion summary.
    pub qoe: QoeMetrics,
    /// The individual stall events.
    pub stalls: Vec<StallEvent>,
    /// Duration-weighted mean bitrate of the segments actually played,
    /// bits per second — the "video quality" the paper says bitrate
    /// adaptation sacrifices.
    pub mean_bitrate_bps: f64,
    /// Number of rendition switches.
    pub switches: usize,
    /// How many segments were fetched at each rung.
    pub rung_counts: Vec<usize>,
}

/// Results of one ABR run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AbrMetrics {
    /// Per-client reports, ordered by client index.
    pub reports: Vec<AbrReport>,
    /// Simulated end time, seconds.
    pub sim_end_secs: f64,
}

impl AbrMetrics {
    /// Mean stalls per client.
    pub fn mean_stalls(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.qoe.stall_count as f64))
    }

    /// Mean total stall duration per client, seconds.
    pub fn mean_stall_secs(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.qoe.total_stall_secs))
    }

    /// Mean startup time, seconds.
    pub fn mean_startup_secs(&self) -> f64 {
        mean(self.reports.iter().filter_map(|r| r.qoe.startup_secs))
    }

    /// Mean delivered bitrate across clients, bits per second.
    pub fn mean_bitrate_bps(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.mean_bitrate_bps))
    }

    /// Fraction of clients that finished the video.
    pub fn completion_rate(&self) -> f64 {
        mean(self.reports.iter().map(|r| {
            if r.qoe.finished_secs.is_some() {
                1.0
            } else {
                0.0
            }
        }))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Per-(rendition, segment) byte table shared by origin and clients.
type ByteTable = Rc<Vec<Vec<u64>>>;

fn byte_table(ladder: &Ladder) -> Vec<Vec<u64>> {
    (0..ladder.len())
        .map(|r| {
            (0..ladder.segment_count())
                .map(|s| ladder.segment_bytes(r, s))
                .collect()
        })
        .collect()
}

fn tag_of(rendition: usize, index: u32) -> u64 {
    ((rendition as u64) << 32) | u64::from(index)
}

fn untag(tag: u64) -> (usize, u32) {
    ((tag >> 32) as usize, tag as u32)
}

/// The CDN origin: holds every rendition, serves rendition requests over
/// bounded slots.
#[derive(Debug)]
struct OriginNode {
    bytes: ByteTable,
    manifest_wire: Bytes,
    slots: UploadManager,
    active: std::collections::HashMap<FlowId, ()>,
}

impl OriginNode {
    fn new(ladder: &Ladder, bytes: ByteTable, slots: usize) -> Self {
        let manifest = Manifest::from_segments("abr", ladder.segments(0));
        OriginNode {
            bytes,
            manifest_wire: Bytes::from(manifest.to_m3u8().into_bytes()),
            slots: UploadManager::new(slots),
            active: std::collections::HashMap::new(),
        }
    }
}

impl NodeBehavior for OriginNode {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        match event {
            NodeEvent::Message { from, payload } => {
                let Ok(message) = decode_single(&payload) else {
                    return;
                };
                match message {
                    Message::ManifestRequest => {
                        let reply = Message::ManifestData {
                            payload: self.manifest_wire.clone(),
                        };
                        let _ = ctx.send(from, encode_to_bytes(&reply));
                    }
                    Message::RequestRendition { rendition, index } => {
                        self.start_upload(ctx, from, rendition as usize, index);
                    }
                    _ => {}
                }
            }
            NodeEvent::UploadComplete { flow, .. } | NodeEvent::TransferFailed { flow, .. }
                if self.active.remove(&flow).is_some() =>
            {
                if let Some(next) = self.slots.release(|_| true) {
                    let (rendition, index) = untag_request(&next);
                    self.begin_transfer(ctx, next.peer, rendition, index);
                }
            }
            _ => {}
        }
    }
}

fn tag_request(peer: NodeId, rendition: usize, index: u32) -> UploadRequest {
    // UploadRequest.segment is 32 bits; pack the rendition into the top
    // byte (ladders are tiny, segment counts < 2^24).
    UploadRequest {
        peer,
        segment: ((rendition as u32) << 24) | index,
    }
}

fn untag_request(request: &UploadRequest) -> (usize, u32) {
    (
        (request.segment >> 24) as usize,
        request.segment & 0x00FF_FFFF,
    )
}

impl OriginNode {
    fn start_upload(&mut self, ctx: &mut Ctx<'_>, to: NodeId, rendition: usize, index: u32) {
        if rendition >= self.bytes.len() || index as usize >= self.bytes[rendition].len() {
            return; // malformed request
        }
        let request = tag_request(to, rendition, index);
        if self.slots.offer(request, |_| true) {
            self.begin_transfer(ctx, to, rendition, index);
        } else {
            let _ = ctx.send(to, encode_to_bytes(&Message::Choke));
        }
    }

    fn begin_transfer(&mut self, ctx: &mut Ctx<'_>, to: NodeId, rendition: usize, index: u32) {
        let bytes = self.bytes[rendition][index as usize];
        let header = Message::SegmentHeader { index, bytes };
        let _ = ctx.send(to, encode_to_bytes(&header));
        match ctx.start_transfer_warm(to, bytes, tag_of(rendition, index)) {
            Ok(flow) => {
                self.active.insert(flow, ());
            }
            Err(_) => {
                if let Some(next) = self.slots.release(|_| true) {
                    let (r, i) = untag_request(&next);
                    self.begin_transfer(ctx, next.peer, r, i);
                }
            }
        }
    }
}

/// A sequential HLS-style client: fetch, measure, adapt, repeat.
#[derive(Debug)]
struct AbrClientNode {
    index: usize,
    origin: NodeId,
    bitrates: Vec<u64>,
    durations: Vec<f64>,
    algorithm: AbrAlgorithm,
    estimator: BandwidthEstimator,
    playback: Playback,
    join_delay: SimDuration,
    pump: SimDuration,
    streaming: bool,
    in_flight: Option<(usize, u32)>,
    requested_at: SimTime,
    rung_counts: Vec<usize>,
    last_rung: Option<usize>,
    switches: usize,
    reported: bool,
    sink: Rc<RefCell<Vec<AbrReport>>>,
}

impl AbrClientNode {
    fn next_segment(&self) -> Option<u32> {
        (0..self.durations.len() as u32).find(|&i| !self.playback.buffer().has(i as usize))
    }

    fn request_next(&mut self, ctx: &mut Ctx<'_>) {
        if !self.streaming || self.in_flight.is_some() {
            return;
        }
        let Some(index) = self.next_segment() else {
            return;
        };
        let now = ctx.now().as_secs_f64();
        let buffered = self.playback.buffered_ahead(now).as_secs_f64();
        let rung = self
            .algorithm
            .choose(&self.bitrates, buffered, self.estimator.bytes_per_sec());
        let message = Message::RequestRendition {
            rendition: rung as u8,
            index,
        };
        if ctx.send(self.origin, encode_to_bytes(&message)).is_ok() {
            self.in_flight = Some((rung, index));
            self.requested_at = ctx.now();
        }
    }

    fn write_report(&mut self, ctx: &mut Ctx<'_>) {
        if self.reported {
            return;
        }
        self.reported = true;
        self.playback.finish(ctx.now().as_secs_f64());
        // Duration-weighted mean bitrate over fetched segments.
        let mut weighted = 0.0;
        let mut covered = 0.0;
        for (seg, &dur) in self.durations.iter().enumerate() {
            if self.playback.buffer().has(seg) {
                covered += dur;
            }
        }
        // rung_counts tracks how many segments came at each rung; segments
        // share (approximately) equal durations, so weight by count.
        let fetched: usize = self.rung_counts.iter().sum();
        if fetched > 0 && covered > 0.0 {
            let per = covered / fetched as f64;
            for (rung, &count) in self.rung_counts.iter().enumerate() {
                weighted += self.bitrates[rung] as f64 * count as f64 * per;
            }
            weighted /= covered;
        }
        self.sink.borrow_mut().push(AbrReport {
            client: self.index,
            qoe: self.playback.metrics(),
            stalls: self.playback.stalls().to_vec(),
            mean_bitrate_bps: weighted,
            switches: self.switches,
            rung_counts: self.rung_counts.clone(),
        });
    }
}

impl NodeBehavior for AbrClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.join_delay, TOKEN_BOOT);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        match event {
            NodeEvent::Timer { token: TOKEN_BOOT } => {
                let _ = ctx.send(self.origin, encode_to_bytes(&Message::ManifestRequest));
                ctx.set_timer(self.pump, TOKEN_PUMP);
            }
            NodeEvent::Timer { token: TOKEN_PUMP } => {
                self.playback.advance(ctx.now().as_secs_f64());
                // Re-request if a request was lost in a choke/drop race.
                if self.in_flight.is_some()
                    && ctx.now().saturating_since(self.requested_at) > SimDuration::from_secs(30)
                {
                    self.in_flight = None;
                }
                self.request_next(ctx);
                if self.playback.state() != PlaybackState::Finished {
                    ctx.set_timer(self.pump, TOKEN_PUMP);
                }
            }
            NodeEvent::Timer { .. } => {}
            NodeEvent::Message { payload, .. } => {
                let Ok(message) = decode_single(&payload) else {
                    return;
                };
                if let Message::ManifestData { .. } = message {
                    if !self.streaming {
                        self.streaming = true;
                        self.request_next(ctx);
                    }
                }
            }
            NodeEvent::TransferComplete {
                tag,
                bytes,
                started,
                ..
            } => {
                let (rung, index) = untag(tag);
                let now = ctx.now();
                self.estimator
                    .observe(bytes, now.saturating_since(started).as_secs_f64());
                if self.in_flight == Some((rung, index)) {
                    self.in_flight = None;
                }
                if rung < self.rung_counts.len() {
                    self.rung_counts[rung] += 1;
                    if let Some(last) = self.last_rung {
                        if last != rung {
                            self.switches += 1;
                        }
                    }
                    self.last_rung = Some(rung);
                }
                self.playback.on_segment(index as usize, now.as_secs_f64());
                self.request_next(ctx);
            }
            NodeEvent::TransferFailed { tag, .. } => {
                let (rung, index) = untag(tag);
                if self.in_flight == Some((rung, index)) {
                    self.in_flight = None;
                    self.request_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_sim_end(&mut self, ctx: &mut Ctx<'_>) {
        self.write_report(ctx);
    }
}

/// Runs a CDN-served adaptive-bitrate session for every client and
/// collects per-client quality/stall metrics. Deterministic per
/// `(ladder, config, seed)`.
///
/// # Panics
///
/// Panics on an invalid configuration or an inconsistent ladder.
///
/// # Examples
///
/// ```no_run
/// use splicecast_media::Ladder;
/// use splicecast_swarm::{run_abr, AbrConfig};
///
/// let ladder = Ladder::builder().duration_secs(60.0).seed(1).build();
/// let metrics = run_abr(&ladder, &AbrConfig::default(), 42);
/// println!("delivered {:.2} Mbps with {:.1} stalls",
///          metrics.mean_bitrate_bps() / 1e6, metrics.mean_stalls());
/// ```
pub fn run_abr(ladder: &Ladder, config: &AbrConfig, seed: u64) -> AbrMetrics {
    config.validate();
    ladder.validate().expect("consistent ladder");

    let per_link_loss = 1.0 - (1.0 - config.end_to_end_loss).sqrt();
    let link_latency = SimDuration::from_secs_f64(config.one_way_latency_secs / 2.0);
    let mut leaf_specs = vec![LinkSpec::from_bytes_per_sec(
        config.origin_bandwidth_bytes_per_sec,
        link_latency,
        per_link_loss,
    )];
    leaf_specs.extend(std::iter::repeat_n(
        LinkSpec::from_bytes_per_sec(
            config.client_bandwidth_bytes_per_sec,
            link_latency,
            per_link_loss,
        ),
        config.n_clients,
    ));
    let star = star(&leaf_specs);
    let origin_id = star.leaves[0];

    let bytes: ByteTable = Rc::new(byte_table(ladder));
    let bitrates: Vec<u64> = (0..ladder.len()).map(|r| ladder.bitrate_bps(r)).collect();
    let durations: Vec<f64> = (0..ladder.segment_count())
        .map(|s| ladder.segment_secs(s))
        .collect();

    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xAB12_AB12_AB12_AB12);
    let sink = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulator::new(star.network, seed);
    sim.add_node(Box::new(NullBehavior)); // hub
    sim.add_node(Box::new(OriginNode::new(
        ladder,
        bytes.clone(),
        config.origin_upload_slots,
    )));
    for index in 0..config.n_clients {
        let mut playback = Playback::new(ladder.segments(0));
        playback.set_resume_threshold(config.resume_buffer_secs);
        sim.add_node(Box::new(AbrClientNode {
            index,
            origin: origin_id,
            bitrates: bitrates.clone(),
            durations: durations.clone(),
            algorithm: config.algorithm,
            estimator: BandwidthEstimator::new(
                EstimatorKind::Ewma { alpha: 0.4 },
                config.client_bandwidth_bytes_per_sec,
            ),
            playback,
            join_delay: SimDuration::from_secs_f64(
                setup_rng.gen_range(0.0..=config.join_stagger_secs),
            ),
            pump: SimDuration::from_millis(500),
            streaming: false,
            in_flight: None,
            requested_at: SimTime::ZERO,
            rung_counts: vec![0; ladder.len()],
            last_rung: None,
            switches: 0,
            reported: false,
            sink: sink.clone(),
        }));
    }
    let end = sim.run_until_idle(SimTime::from_secs_f64(config.max_sim_secs));
    let mut reports = sink.take();
    reports.sort_by_key(|r| r.client);
    AbrMetrics {
        reports,
        sim_end_secs: end.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ladder() -> Ladder {
        Ladder::builder()
            .duration_secs(24.0)
            .bitrates(&[250_000, 500_000, 1_000_000])
            .segment_secs(4.0)
            .seed(3)
            .build()
    }

    fn small_config(algorithm: AbrAlgorithm) -> AbrConfig {
        AbrConfig {
            n_clients: 4,
            client_bandwidth_bytes_per_sec: 200_000.0,
            algorithm,
            max_sim_secs: 600.0,
            ..AbrConfig::default()
        }
    }

    #[test]
    fn algorithms_choose_sane_rungs() {
        let ladder = [250_000u64, 500_000, 1_000_000];
        let fixed = AbrAlgorithm::FixedRendition(9);
        assert_eq!(fixed.choose(&ladder, 0.0, 0.0), 2, "clamped to the top");
        let rate = AbrAlgorithm::RateBased { safety: 0.8 };
        assert_eq!(rate.choose(&ladder, 0.0, 1_000_000.0 / 8.0 * 0.5), 0); // 0.4 Mbps budget
        assert_eq!(rate.choose(&ladder, 0.0, 200_000.0), 2); // 1.28 Mbps budget
        let buffer = AbrAlgorithm::BufferBased {
            low_secs: 4.0,
            high_secs: 12.0,
        };
        assert_eq!(buffer.choose(&ladder, 0.0, 1e9), 0);
        assert_eq!(buffer.choose(&ladder, 20.0, 0.0), 2);
        assert_eq!(buffer.choose(&ladder, 8.0, 0.0), 1);
        assert_eq!(AbrAlgorithm::RateBased { safety: 0.8 }.name(), "rate-based");
    }

    #[test]
    fn fixed_top_rendition_delivers_full_quality() {
        let metrics = run_abr(
            &small_ladder(),
            &small_config(AbrAlgorithm::FixedRendition(2)),
            7,
        );
        assert_eq!(metrics.reports.len(), 4);
        assert_eq!(metrics.completion_rate(), 1.0);
        assert!((metrics.mean_bitrate_bps() - 1_000_000.0).abs() < 1.0);
        for report in &metrics.reports {
            assert_eq!(report.switches, 0);
            assert_eq!(report.rung_counts, vec![0, 0, 6]);
        }
    }

    #[test]
    fn buffer_based_abr_trades_quality_for_fewer_stalls() {
        // At 160 kB/s (1.28 Mbps) the top 1 Mbps rendition is marginal;
        // ABR should stall less than fixed-top while delivering less
        // quality than the full 1 Mbps.
        let config_of = |algorithm| AbrConfig {
            client_bandwidth_bytes_per_sec: 160_000.0,
            ..small_config(algorithm)
        };
        let abr = run_abr(
            &small_ladder(),
            &config_of(AbrAlgorithm::BufferBased {
                low_secs: 4.0,
                high_secs: 16.0,
            }),
            11,
        );
        let fixed = run_abr(
            &small_ladder(),
            &config_of(AbrAlgorithm::FixedRendition(2)),
            11,
        );
        assert!(
            abr.mean_bitrate_bps() < fixed.mean_bitrate_bps(),
            "quality was sacrificed"
        );
        assert!(
            abr.mean_stall_secs() <= fixed.mean_stall_secs(),
            "abr stall time {} should not exceed fixed-top {}",
            abr.mean_stall_secs(),
            fixed.mean_stall_secs()
        );
        assert_eq!(abr.completion_rate(), 1.0);
    }

    #[test]
    fn abr_runs_are_deterministic() {
        let ladder = small_ladder();
        let config = small_config(AbrAlgorithm::RateBased { safety: 0.8 });
        assert_eq!(run_abr(&ladder, &config, 5), run_abr(&ladder, &config, 5));
        assert_ne!(run_abr(&ladder, &config, 5), run_abr(&ladder, &config, 6));
    }

    #[test]
    fn request_tags_round_trip() {
        for (r, i) in [(0usize, 0u32), (3, 77), (255, 0x00FF_FFFF)] {
            let req = tag_request(NodeId::from_index(1), r, i);
            assert_eq!(untag_request(&req), (r, i));
        }
        assert_eq!(untag(tag_of(2, 9)), (2, 9));
    }
}
