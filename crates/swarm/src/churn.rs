//! Peer churn: the arrival/departure dynamics of §III's motivation
//! ("peers can leave the swarm anytime").

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configures which peers leave and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Fraction of leechers that will depart before finishing.
    pub volatile_fraction: f64,
    /// Mean lifetime of a volatile peer after joining, seconds
    /// (exponentially distributed).
    pub mean_lifetime_secs: f64,
}

impl ChurnConfig {
    /// Creates a churn config.
    ///
    /// # Panics
    ///
    /// Panics if `volatile_fraction` is outside `[0, 1]` or the lifetime is
    /// not positive.
    pub fn new(volatile_fraction: f64, mean_lifetime_secs: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&volatile_fraction),
            "volatile fraction must be in [0,1], got {volatile_fraction}"
        );
        assert!(mean_lifetime_secs > 0.0, "mean lifetime must be positive");
        ChurnConfig {
            volatile_fraction,
            mean_lifetime_secs,
        }
    }

    /// Samples a departure delay (seconds after joining) for each of
    /// `n_peers` leechers; `None` means the peer stays.
    pub fn sample_departures(&self, n_peers: usize, rng: &mut StdRng) -> Vec<Option<f64>> {
        (0..n_peers)
            .map(|_| {
                if rng.gen::<f64>() < self.volatile_fraction {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    Some(-u.ln() * self.mean_lifetime_secs)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_fraction_means_no_departures() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ChurnConfig::new(0.0, 10.0).sample_departures(50, &mut rng);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn full_fraction_means_all_depart() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ChurnConfig::new(1.0, 10.0).sample_departures(50, &mut rng);
        assert!(d.iter().all(Option::is_some));
        assert!(d.iter().flatten().all(|&t| t > 0.0));
    }

    #[test]
    fn mean_lifetime_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ChurnConfig::new(1.0, 30.0).sample_departures(4_000, &mut rng);
        let mean: f64 = d.iter().flatten().sum::<f64>() / 4_000.0;
        assert!((mean - 30.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = ChurnConfig::new(0.5, 20.0);
        let a = cfg.sample_departures(10, &mut StdRng::seed_from_u64(3));
        let b = cfg.sample_departures(10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_fraction_panics() {
        let _ = ChurnConfig::new(1.5, 10.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_lifetime_panics() {
        let _ = ChurnConfig::new(0.5, 0.0);
    }
}
