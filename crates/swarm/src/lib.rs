//! # splicecast-swarm
//!
//! The **P2P video-streaming application** of *"Video Splicing Techniques
//! for P2P Video Streaming"* (ICDCS 2015): a seeder and a set of leechers
//! exchanging spliced MPEG-4 segments over a BitTorrent-like protocol on a
//! simulated star network.
//!
//! - [`SeederNode`] / [`LeecherNode`]: the node behaviours (manifest
//!   exchange, handshakes, bitfields, requests, bulk transfers, playback);
//! - [`AdaptivePooling`] / [`FixedPool`]: the §III download policies, with
//!   [`optimal_pool_size`] implementing Eq. 1 directly;
//! - [`ChurnConfig`]: peers leaving mid-stream; [`CdnConfig`]: the §IV
//!   hybrid-CDN mode with the [`max_cdn_segment_bytes`] sizing bound;
//! - [`FaultPlanConfig`] / [`DefenseConfig`]: deterministic fault injection
//!   (crash-stop churn, control-message loss/delay, link flaps, CDN
//!   outages) and the peer-side defenses it exercises (inactivity
//!   eviction, keepalives, source backoff, CDN fallback, watchdog);
//! - [`DiscoveryMode`]: full-knowledge or tracker-based peer discovery
//!   (the seeder doubles as the tracker);
//! - [`run_abr`]: the §I adaptive-bitrate baseline (CDN-served ladder
//!   clients) the paper motivates against;
//! - [`run_swarm`]: build, run, and measure one swarm deterministically.
//!
//! ## Example
//!
//! ```no_run
//! use splicecast_media::{GopSplicer, Splicer, Video};
//! use splicecast_swarm::{run_swarm, SwarmConfig};
//!
//! let video = Video::builder().seed(1).build(); // the paper's 2-min clip
//! let segments = GopSplicer.splice(&video);
//! let metrics = run_swarm(&segments, &SwarmConfig::default(), 42);
//! println!("stalls per viewer: {:.1}", metrics.mean_stalls());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abr;
mod cdn;
mod churn;
mod cross;
mod fault;
mod leecher;
mod metrics;
mod peer;
mod policy;
mod scheduler;
mod seeder;
mod swarm;
mod upload;

pub use abr::{run_abr, AbrAlgorithm, AbrConfig, AbrMetrics, AbrReport};
pub use cdn::{max_cdn_segment_bytes, CdnConfig};
pub use churn::ChurnConfig;
pub use cross::{CrossTrafficConfig, CrossTrafficNode};
pub use fault::{
    CdnOutageConfig, CrashChurnConfig, DefenseConfig, FaultPlanConfig, LinkFlapConfig,
};
pub use leecher::{LeecherConfig, LeecherNode};
pub use metrics::{
    ControlPlaneStats, DisseminationStats, MetricsSink, PeerFaultStats, PeerMemStats, PeerReport,
    SchedulerStats, SwarmMetrics,
};
pub use peer::{PeerClock, PeerView, UploadManager, UploadRequest};
pub use policy::{
    optimal_pool_size, AdaptivePooling, BandwidthEstimator, DownloadPolicy, EstimatorKind,
    FixedPool, PolicyConfig, PolicyInput, WEstimate,
};
pub use scheduler::{
    next_wanted, pick_source, reset_sched_wall, sched_wall_ns, HolderIndex, SourceCandidate,
};
pub use seeder::{info_hash_of, SeederNode};
pub use swarm::{
    auto_coalesce_secs, run_swarm, run_swarm_shared, ControlPlane, DiscoveryMode,
    DisseminationMode, SchedulerMode, SwarmConfig,
};
pub use upload::UploadSide;
