//! Property-based tests for the playback model.

use proptest::prelude::*;

use splicecast_media::{DurationSplicer, MediaTicks, Splicer, Video};
use splicecast_player::{Playback, PlaybackState, SegmentBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffer_matches_a_reference_model(
        secs in 4.0f64..40.0,
        target in 1.0f64..8.0,
        seed in any::<u64>(),
        inserts in prop::collection::vec(any::<u16>(), 0..64),
        probe in 0.0f64..1.0,
    ) {
        let video = Video::builder().duration_secs(secs).seed(seed).build();
        let list = DurationSplicer::new(target).splice(&video);
        let mut buffer = SegmentBuffer::new(&list);
        let mut model = vec![false; list.len()];
        for raw in inserts {
            let idx = raw as usize % list.len();
            let newly = buffer.insert(idx);
            prop_assert_eq!(newly, !model[idx]);
            model[idx] = true;
        }
        prop_assert_eq!(buffer.held_count(), model.iter().filter(|&&h| h).count());
        prop_assert_eq!(buffer.is_complete(), model.iter().all(|&h| h));

        // playable_until agrees with a linear walk over the model.
        let pts = MediaTicks::from_ticks((probe * video.duration().ticks() as f64) as u64);
        let reference = {
            match list.iter().position(|s| s.start_pts <= pts && pts < s.end_pts()) {
                None => buffer.media_end().max(pts),
                Some(mut i) => {
                    if !model[i] {
                        pts
                    } else {
                        while i + 1 < model.len() && model[i + 1] {
                            i += 1;
                        }
                        list[i].end_pts()
                    }
                }
            }
        };
        prop_assert_eq!(buffer.playable_until(pts), reference);
        prop_assert_eq!(buffer.buffered_from(pts), reference.saturating_sub(pts));
    }

    #[test]
    fn playback_time_is_conserved(
        secs in 4.0f64..30.0,
        target in 1.0f64..6.0,
        content_seed in any::<u64>(),
        delays in prop::collection::vec(0.0f64..8.0, 1..48),
        threshold in 0.0f64..4.0,
    ) {
        let video = Video::builder().duration_secs(secs).seed(content_seed).build();
        let list = DurationSplicer::new(target).splice(&video);
        let mut playback = Playback::new(&list);
        playback.set_resume_threshold(threshold);

        // Segments arrive in order with random inter-arrival delays.
        let mut now = 0.0;
        for i in 0..list.len() {
            now += delays[i % delays.len()];
            playback.on_segment(i, now);
            // Interleave some advance calls at odd times.
            playback.advance(now + 0.1);
        }
        let end = now + secs + threshold + 1.0;
        playback.finish(end);
        prop_assert_eq!(playback.state(), PlaybackState::Finished);

        let metrics = playback.metrics();
        let startup = metrics.startup_secs.expect("started");
        let finish = metrics.finished_secs.expect("finished");
        // Conservation: wall time = startup + media + stalls.
        let expected = startup + video.duration().as_secs_f64() + metrics.total_stall_secs;
        prop_assert!((finish - expected).abs() < 1e-3, "finish {finish} expected {expected}");
        // Stalls never overlap and never precede startup.
        let mut last = startup;
        for stall in playback.stalls() {
            prop_assert!(stall.start_secs >= last - 1e-9);
            prop_assert!(stall.end_secs >= stall.start_secs);
            last = stall.end_secs;
        }
        // With in-order arrival, the number of stalls is bounded by the
        // number of segments.
        prop_assert!(metrics.stall_count <= list.len());
    }

    #[test]
    fn resume_threshold_never_increases_stall_count(
        secs in 8.0f64..24.0,
        delays in prop::collection::vec(0.5f64..6.0, 4..24),
    ) {
        let video = Video::builder().duration_secs(secs).seed(3).build();
        let list = DurationSplicer::new(2.0).splice(&video);
        let run = |threshold: f64| {
            let mut playback = Playback::new(&list);
            playback.set_resume_threshold(threshold);
            let mut now = 0.0;
            for i in 0..list.len() {
                now += delays[i % delays.len()];
                playback.on_segment(i, now);
            }
            playback.finish(now + secs + threshold + 1.0);
            playback.metrics().stall_count
        };
        prop_assert!(run(4.0) <= run(0.0), "a re-buffering threshold merges stalls");
    }
}
