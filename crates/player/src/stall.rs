//! Stall events and quality-of-experience metrics.

use serde::{Deserialize, Serialize};

/// One playback interruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallEvent {
    /// Wall-clock second the play-out ran dry.
    pub start_secs: f64,
    /// Wall-clock second playback resumed (or the run ended).
    pub end_secs: f64,
}

impl StallEvent {
    /// Length of the interruption in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// Accumulates startup time and stall events for one viewer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StallTracker {
    startup_secs: Option<f64>,
    finished_secs: Option<f64>,
    stalls: Vec<StallEvent>,
    open_since: Option<f64>,
}

impl StallTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        StallTracker::default()
    }

    /// Records when playback first started (first segment available).
    ///
    /// # Panics
    ///
    /// Panics if startup was already recorded.
    pub fn record_startup(&mut self, at_secs: f64) {
        assert!(self.startup_secs.is_none(), "startup recorded twice");
        self.startup_secs = Some(at_secs);
    }

    /// Opens a stall at the given time.
    ///
    /// # Panics
    ///
    /// Panics if a stall is already open.
    pub fn begin_stall(&mut self, at_secs: f64) {
        assert!(self.open_since.is_none(), "stall already open");
        self.open_since = Some(at_secs);
    }

    /// Closes the open stall.
    ///
    /// # Panics
    ///
    /// Panics if no stall is open or time runs backwards.
    pub fn end_stall(&mut self, at_secs: f64) {
        let start = self.open_since.take().expect("no stall open");
        assert!(at_secs >= start, "stall ends before it starts");
        self.stalls.push(StallEvent {
            start_secs: start,
            end_secs: at_secs,
        });
    }

    /// True while a stall is open.
    pub fn stalled(&self) -> bool {
        self.open_since.is_some()
    }

    /// Records playback completion.
    pub fn record_finished(&mut self, at_secs: f64) {
        self.finished_secs.get_or_insert(at_secs);
    }

    /// Ends accounting at `at_secs`: an open stall is closed there so its
    /// duration is counted.
    pub fn close(&mut self, at_secs: f64) {
        if self.open_since.is_some() {
            self.end_stall(at_secs);
        }
    }

    /// The stalls recorded so far.
    pub fn stalls(&self) -> &[StallEvent] {
        &self.stalls
    }

    /// Summarises into [`QoeMetrics`].
    pub fn metrics(&self) -> QoeMetrics {
        QoeMetrics {
            startup_secs: self.startup_secs,
            stall_count: self.stalls.len(),
            total_stall_secs: self.stalls.iter().map(StallEvent::duration_secs).sum(),
            finished_secs: self.finished_secs,
        }
    }
}

/// Quality-of-experience summary for one viewer — exactly the quantities
/// the paper measures ("total number of stalls, total stall duration, and
/// startup time", §V).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QoeMetrics {
    /// Seconds from join to first frame, if playback started.
    pub startup_secs: Option<f64>,
    /// Number of interruptions after startup.
    pub stall_count: usize,
    /// Summed interruption time in seconds.
    pub total_stall_secs: f64,
    /// When the whole video finished playing, if it did.
    pub finished_secs: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates() {
        let mut t = StallTracker::new();
        t.record_startup(2.0);
        t.begin_stall(10.0);
        assert!(t.stalled());
        t.end_stall(12.5);
        assert!(!t.stalled());
        t.begin_stall(20.0);
        t.end_stall(21.0);
        t.record_finished(130.0);
        let m = t.metrics();
        assert_eq!(m.startup_secs, Some(2.0));
        assert_eq!(m.stall_count, 2);
        assert!((m.total_stall_secs - 3.5).abs() < 1e-9);
        assert_eq!(m.finished_secs, Some(130.0));
    }

    #[test]
    fn close_truncates_open_stall() {
        let mut t = StallTracker::new();
        t.begin_stall(5.0);
        t.close(8.0);
        assert_eq!(t.stalls().len(), 1);
        assert!((t.metrics().total_stall_secs - 3.0).abs() < 1e-9);
        // Closing again is a no-op.
        t.close(9.0);
        assert_eq!(t.stalls().len(), 1);
    }

    #[test]
    fn metrics_of_untouched_tracker() {
        let m = StallTracker::new().metrics();
        assert_eq!(m.startup_secs, None);
        assert_eq!(m.stall_count, 0);
        assert_eq!(m.total_stall_secs, 0.0);
        assert_eq!(m.finished_secs, None);
    }

    #[test]
    #[should_panic(expected = "stall already open")]
    fn double_begin_panics() {
        let mut t = StallTracker::new();
        t.begin_stall(1.0);
        t.begin_stall(2.0);
    }

    #[test]
    #[should_panic(expected = "no stall open")]
    fn end_without_begin_panics() {
        StallTracker::new().end_stall(1.0);
    }

    #[test]
    fn stall_event_duration() {
        let e = StallEvent {
            start_secs: 1.5,
            end_secs: 4.0,
        };
        assert!((e.duration_secs() - 2.5).abs() < 1e-12);
    }
}
