//! The segment buffer: which parts of the timeline are downloaded.

use splicecast_media::{MediaTicks, SegmentList};

/// Tracks which segments of a spliced video have been fully downloaded and
/// answers timeline questions: "can playback proceed at pts X?" and "how
/// much is buffered ahead of X?" (the paper's `T`).
///
/// # Examples
///
/// ```
/// use splicecast_media::{DurationSplicer, MediaTicks, Splicer, Video};
/// use splicecast_player::SegmentBuffer;
///
/// let video = Video::builder().duration_secs(12.0).seed(1).build();
/// let segments = DurationSplicer::new(4.0).splice(&video);
/// let mut buffer = SegmentBuffer::new(&segments);
/// buffer.insert(0);
/// buffer.insert(1);
/// let t = buffer.buffered_from(MediaTicks::from_secs_f64(1.0));
/// assert!((t.as_secs_f64() - 7.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentBuffer {
    starts: Vec<MediaTicks>,
    ends: Vec<MediaTicks>,
    have: Vec<bool>,
    held: usize,
    /// Lowest index not held: every segment below it is held. Downloads
    /// are near-sequential, so timeline queries answer from this mark in
    /// O(1) instead of walking the contiguous run each time.
    first_missing: usize,
}

impl SegmentBuffer {
    /// Creates an empty buffer for the given splice.
    pub fn new(segments: &SegmentList) -> Self {
        let starts = segments.iter().map(|s| s.start_pts).collect::<Vec<_>>();
        let ends = segments.iter().map(|s| s.end_pts()).collect::<Vec<_>>();
        let have = vec![false; segments.len()];
        SegmentBuffer {
            starts,
            ends,
            have,
            held: 0,
            first_missing: 0,
        }
    }

    /// Number of segments in the splice.
    pub fn segment_count(&self) -> usize {
        self.have.len()
    }

    /// Number of segments held.
    pub fn held_count(&self) -> usize {
        self.held
    }

    /// Whether every segment is held.
    pub fn is_complete(&self) -> bool {
        self.held == self.have.len()
    }

    /// Whether segment `index` is held.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn has(&self, index: usize) -> bool {
        self.have[index]
    }

    /// Marks segment `index` as downloaded. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn insert(&mut self, index: usize) -> bool {
        if self.have[index] {
            false
        } else {
            self.have[index] = true;
            self.held += 1;
            while self.first_missing < self.have.len() && self.have[self.first_missing] {
                self.first_missing += 1;
            }
            true
        }
    }

    /// End of the video timeline.
    pub fn media_end(&self) -> MediaTicks {
        self.ends.last().copied().unwrap_or(MediaTicks::ZERO)
    }

    /// The segment whose interval contains `pts`, if any.
    pub fn segment_at(&self, pts: MediaTicks) -> Option<usize> {
        let idx = self.ends.partition_point(|&end| end <= pts);
        (idx < self.starts.len() && self.starts[idx] <= pts).then_some(idx)
    }

    /// The first missing segment at or after `index`, if any.
    pub fn next_missing(&self, index: usize) -> Option<usize> {
        // Everything below `first_missing` is held, so start there.
        (index.max(self.first_missing)..self.have.len()).find(|&i| !self.have[i])
    }

    /// The timeline point up to which playback can run without interruption
    /// starting from `position`: the end of the contiguous run of held
    /// segments covering `position`. Returns `position` itself when the
    /// segment under it is missing.
    pub fn playable_until(&self, position: MediaTicks) -> MediaTicks {
        let Some(mut idx) = self.segment_at(position) else {
            // At or beyond the end of the timeline.
            return self.media_end().max(position);
        };
        if !self.have[idx] {
            return position;
        }
        if idx < self.first_missing {
            // The common sequential case: the run covering `position` ends
            // exactly at the first gap.
            return self.ends[self.first_missing - 1];
        }
        while idx + 1 < self.have.len() && self.have[idx + 1] {
            idx += 1;
        }
        self.ends[idx]
    }

    /// Buffered playback time ahead of `position` — the paper's `T`.
    pub fn buffered_from(&self, position: MediaTicks) -> MediaTicks {
        self.playable_until(position).saturating_sub(position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splicecast_media::{DurationSplicer, Splicer, Video};

    fn buffer() -> SegmentBuffer {
        // 20 s video in 4 s segments → 5 segments.
        let v = Video::builder().duration_secs(20.0).seed(2).build();
        SegmentBuffer::new(&DurationSplicer::new(4.0).splice(&v))
    }

    fn secs(s: f64) -> MediaTicks {
        MediaTicks::from_secs_f64(s)
    }

    #[test]
    fn insert_tracks_held_count() {
        let mut b = buffer();
        assert_eq!(b.segment_count(), 5);
        assert_eq!(b.held_count(), 0);
        assert!(b.insert(2));
        assert!(!b.insert(2), "double insert is not new");
        assert_eq!(b.held_count(), 1);
        assert!(b.has(2));
        assert!(!b.is_complete());
        for i in [0, 1, 3, 4] {
            b.insert(i);
        }
        assert!(b.is_complete());
    }

    #[test]
    fn playable_until_stops_at_first_gap() {
        let mut b = buffer();
        b.insert(0);
        b.insert(1);
        b.insert(3); // gap at 2
        assert!((b.playable_until(secs(0.0)).as_secs_f64() - 8.0).abs() < 1e-6);
        assert!((b.buffered_from(secs(3.0)).as_secs_f64() - 5.0).abs() < 1e-6);
        // Standing inside the missing segment: nothing playable.
        assert_eq!(b.buffered_from(secs(9.0)), MediaTicks::ZERO);
        // Standing inside segment 3 plays to 16 s only.
        assert!((b.playable_until(secs(13.0)).as_secs_f64() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn position_at_segment_boundary_needs_the_next_segment() {
        let mut b = buffer();
        b.insert(0);
        // At exactly 4 s the play head is in segment 1, which is missing.
        assert_eq!(b.buffered_from(secs(4.0)), MediaTicks::ZERO);
        b.insert(1);
        assert!((b.buffered_from(secs(4.0)).as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn end_of_timeline_is_always_playable() {
        let b = buffer();
        let end = b.media_end();
        assert_eq!(b.segment_at(end), None);
        assert_eq!(b.buffered_from(end), MediaTicks::ZERO);
        assert_eq!(b.playable_until(end), end);
    }

    #[test]
    fn next_missing_scans_forward() {
        let mut b = buffer();
        b.insert(0);
        b.insert(2);
        assert_eq!(b.next_missing(0), Some(1));
        assert_eq!(b.next_missing(2), Some(3));
        for i in 0..5 {
            b.insert(i);
        }
        assert_eq!(b.next_missing(0), None);
    }

    #[test]
    fn segment_at_maps_timeline_points() {
        let b = buffer();
        assert_eq!(b.segment_at(secs(0.0)), Some(0));
        assert_eq!(b.segment_at(secs(3.999)), Some(0));
        assert_eq!(b.segment_at(secs(4.0)), Some(1));
        assert_eq!(b.segment_at(secs(19.9)), Some(4));
        assert_eq!(b.segment_at(secs(20.0)), None);
    }
}
