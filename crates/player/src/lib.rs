//! # splicecast-player
//!
//! The **playback model**: a sequential viewer that plays segmented video
//! in real time and accounts exactly the quantities the paper measures —
//! startup time, stall count, and total stall duration (§V–VI).
//!
//! - [`SegmentBuffer`] tracks downloaded segments and answers "how much is
//!   buffered ahead of the play head" (the `T` of the paper's Eq. 1);
//! - [`Playback`] is the play-out state machine (waiting → playing ⇄
//!   stalled → finished) with exact stall-boundary computation;
//! - [`StallTracker`] / [`QoeMetrics`] accumulate the per-viewer results.
//!
//! ## Example
//!
//! ```
//! use splicecast_media::{DurationSplicer, Splicer, Video};
//! use splicecast_player::Playback;
//!
//! let video = Video::builder().duration_secs(8.0).seed(1).build();
//! let segments = DurationSplicer::new(2.0).splice(&video);
//! let mut playback = Playback::new(&segments);
//! playback.on_segment(0, 0.5);
//! playback.on_segment(1, 4.0); // arrives 1.5 s after the buffer ran dry
//! let stalls = playback.stalls();
//! assert_eq!(stalls.len(), 1);
//! assert!((stalls[0].duration_secs() - 1.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod playback;
mod stall;

pub use buffer::SegmentBuffer;
pub use playback::{Playback, PlaybackState};
pub use stall::{QoeMetrics, StallEvent, StallTracker};
