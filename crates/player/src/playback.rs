//! The sequential play-out state machine.

use splicecast_media::{MediaTicks, SegmentList};

use crate::buffer::SegmentBuffer;
use crate::stall::{QoeMetrics, StallTracker};

/// Where the player is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlaybackState {
    /// Waiting for the first segment; nothing has played yet.
    WaitingForStart,
    /// Playing normally.
    Playing,
    /// Play-out ran dry; waiting for the segment under the play head.
    Stalled,
    /// The whole video has played.
    Finished,
}

/// A sequential viewer: plays the video front to back in real time,
/// stalling whenever the play head reaches undownloaded media.
///
/// The machine is driven by two calls: [`Playback::on_segment`] when a
/// segment finishes downloading, and [`Playback::advance`] with the current
/// wall-clock time (call it on any event; precision of *when* it is called
/// does not affect accounting, because stall boundaries are computed from
/// the timeline, not from call times).
///
/// # Examples
///
/// ```
/// use splicecast_media::{DurationSplicer, Splicer, Video};
/// use splicecast_player::{Playback, PlaybackState};
///
/// let video = Video::builder().duration_secs(8.0).seed(1).build();
/// let segments = DurationSplicer::new(4.0).splice(&video);
/// let mut playback = Playback::new(&segments);
///
/// playback.on_segment(0, 1.0); // first segment at t=1s → playback starts
/// playback.on_segment(1, 2.0);
/// playback.advance(9.0);       // 8s of media played by t=9
/// assert_eq!(playback.state(), PlaybackState::Finished);
/// assert_eq!(playback.metrics().stall_count, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Playback {
    buffer: SegmentBuffer,
    tracker: StallTracker,
    state: PlaybackState,
    /// Play-head position on the media timeline.
    position: MediaTicks,
    /// Wall time when the current `Playing` stretch began.
    playing_since_secs: f64,
    /// Play-head position when the current `Playing` stretch began.
    position_at_since: MediaTicks,
    /// Media that must be buffered ahead before resuming from a stall.
    resume_threshold: MediaTicks,
}

impl Playback {
    /// Creates a player for the given splice, waiting for segment 0.
    /// Stalls resume as soon as the segment under the play head arrives;
    /// see [`Playback::set_resume_threshold`] for re-buffering behaviour.
    pub fn new(segments: &SegmentList) -> Self {
        Playback {
            buffer: SegmentBuffer::new(segments),
            tracker: StallTracker::new(),
            state: PlaybackState::WaitingForStart,
            position: MediaTicks::ZERO,
            playing_since_secs: 0.0,
            position_at_since: MediaTicks::ZERO,
            resume_threshold: MediaTicks::ZERO,
        }
    }

    /// Requires at least `secs` of contiguous media ahead of the play head
    /// before resuming from a stall (or the rest of the video, when less
    /// remains) — the re-buffering behaviour of real players like the
    /// paper's vlcj/LibVLC setup. Zero (the default) resumes on the next
    /// segment.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn set_resume_threshold(&mut self, secs: f64) {
        self.resume_threshold = MediaTicks::from_secs_f64(secs);
    }

    /// The current lifecycle state.
    pub fn state(&self) -> PlaybackState {
        self.state
    }

    /// The play-head position on the media timeline.
    pub fn position(&self) -> MediaTicks {
        self.position
    }

    /// The downloaded-segment buffer.
    pub fn buffer(&self) -> &SegmentBuffer {
        &self.buffer
    }

    /// Buffered playback time ahead of the play head — the paper's `T`.
    /// Zero before startup, while stalled, and after finishing.
    pub fn buffered_ahead(&mut self, now_secs: f64) -> MediaTicks {
        self.advance(now_secs);
        match self.state {
            PlaybackState::Playing => self.buffer.buffered_from(self.position),
            _ => MediaTicks::ZERO,
        }
    }

    /// Records that `index` finished downloading at `now_secs`, starting or
    /// resuming playback if that unblocks the play head.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `now_secs` moves backwards
    /// while playing.
    pub fn on_segment(&mut self, index: usize, now_secs: f64) {
        self.advance(now_secs);
        self.buffer.insert(index);
        match self.state {
            PlaybackState::WaitingForStart => {
                if self.buffer.has(0) {
                    self.tracker.record_startup(now_secs);
                    self.state = PlaybackState::Playing;
                    self.playing_since_secs = now_secs;
                    self.position_at_since = MediaTicks::ZERO;
                    self.position = MediaTicks::ZERO;
                }
            }
            PlaybackState::Stalled => {
                let playable = self.buffer.playable_until(self.position);
                let goal = (self.position + self.resume_threshold).min(self.buffer.media_end());
                if playable > self.position && playable >= goal {
                    self.tracker.end_stall(now_secs);
                    self.state = PlaybackState::Playing;
                    self.playing_since_secs = now_secs;
                    self.position_at_since = self.position;
                }
            }
            PlaybackState::Playing | PlaybackState::Finished => {}
        }
    }

    /// Moves the play head to where it would be at `now_secs`, recording a
    /// stall if the head catches up with the buffer.
    ///
    /// The stall start time is computed exactly (the moment the buffered
    /// media ran out), so calling `advance` late does not distort metrics.
    pub fn advance(&mut self, now_secs: f64) {
        if self.state != PlaybackState::Playing {
            return;
        }
        let elapsed = now_secs - self.playing_since_secs;
        debug_assert!(elapsed >= -1e-9, "time ran backwards");
        let target = self.position_at_since + MediaTicks::from_secs_f64(elapsed.max(0.0));
        let playable_until = self.buffer.playable_until(self.position_at_since);
        if target < playable_until {
            self.position = target;
            return;
        }
        self.position = playable_until;
        if self.position >= self.buffer.media_end() {
            // Played the last frame. (Clamped to `now`: media-tick rounding
            // can land the computed instant a hair past the current event.)
            let finished_at = (self.playing_since_secs
                + (self.buffer.media_end() - self.position_at_since).as_secs_f64())
            .min(now_secs);
            self.tracker.record_finished(finished_at);
            self.state = PlaybackState::Finished;
        } else {
            // Ran dry at the exact moment the buffered stretch ended.
            let dry_at = (self.playing_since_secs
                + (playable_until - self.position_at_since).as_secs_f64())
            .min(now_secs);
            self.tracker.begin_stall(dry_at);
            self.state = PlaybackState::Stalled;
        }
    }

    /// Ends the session at `now_secs`: advances the head one final time and
    /// closes any open stall so its duration counts.
    pub fn finish(&mut self, now_secs: f64) {
        self.advance(now_secs);
        self.tracker.close(now_secs);
    }

    /// The QoE summary so far.
    pub fn metrics(&self) -> QoeMetrics {
        self.tracker.metrics()
    }

    /// The individual stall events recorded so far.
    pub fn stalls(&self) -> &[crate::stall::StallEvent] {
        self.tracker.stalls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splicecast_media::{ContentProfile, DurationSplicer, Splicer, Video};

    /// 20 s video in 4 s segments (5 segments), deterministic GOPs.
    fn playback() -> Playback {
        let v = Video::builder()
            .duration_secs(20.0)
            .profile(ContentProfile::Uniform { gop_secs: 1.0 })
            .seed(3)
            .build();
        Playback::new(&DurationSplicer::new(4.0).splice(&v))
    }

    #[test]
    fn startup_waits_for_segment_zero() {
        let mut p = playback();
        assert_eq!(p.state(), PlaybackState::WaitingForStart);
        p.on_segment(2, 1.0); // out-of-order arrival does not start playback
        assert_eq!(p.state(), PlaybackState::WaitingForStart);
        p.on_segment(0, 3.0);
        assert_eq!(p.state(), PlaybackState::Playing);
        assert_eq!(p.metrics().startup_secs, Some(3.0));
    }

    #[test]
    fn smooth_playback_has_no_stalls() {
        let mut p = playback();
        for i in 0..5 {
            p.on_segment(i, i as f64);
        }
        p.finish(25.0);
        let m = p.metrics();
        assert_eq!(m.stall_count, 0);
        assert_eq!(m.total_stall_secs, 0.0);
        // Started at t=0, 20 s of media → finished at t=20.
        assert_eq!(m.finished_secs, Some(20.0));
        assert_eq!(p.state(), PlaybackState::Finished);
    }

    #[test]
    fn late_segment_causes_an_exact_stall() {
        let mut p = playback();
        p.on_segment(0, 0.0); // play starts at t=0, runs to media 4 s
        p.on_segment(1, 1.0); // runs to media 8 s
                              // Segment 2 arrives at t=11, but the head ran dry at t=8.
        p.on_segment(2, 11.0);
        assert_eq!(p.state(), PlaybackState::Playing);
        let stalls = p.stalls();
        assert_eq!(stalls.len(), 1);
        assert!((stalls[0].start_secs - 8.0).abs() < 1e-6, "{stalls:?}");
        assert!((stalls[0].end_secs - 11.0).abs() < 1e-6);
        // Finish the rest smoothly.
        p.on_segment(3, 12.0);
        p.on_segment(4, 13.0);
        p.finish(40.0);
        let m = p.metrics();
        assert_eq!(m.stall_count, 1);
        assert!((m.total_stall_secs - 3.0).abs() < 1e-6);
        // 20 s media + 3 s stall = finished at t=23.
        assert!((m.finished_secs.unwrap() - 23.0).abs() < 1e-6);
    }

    #[test]
    fn stall_detection_does_not_depend_on_advance_cadence() {
        // Same scenario, but advance() is called at odd times.
        let mut p = playback();
        p.on_segment(0, 0.0);
        p.advance(0.5);
        p.advance(3.9);
        p.on_segment(1, 1.0); // (delivered earlier in wall time than advance calls — fine)
        p.advance(10.0); // head dry since t=8
        assert_eq!(p.state(), PlaybackState::Stalled);
        p.on_segment(2, 11.0);
        let stalls = p.stalls();
        assert!((stalls[0].start_secs - 8.0).abs() < 1e-6);
    }

    #[test]
    fn gap_in_buffer_stalls_even_with_later_segments() {
        let mut p = playback();
        p.on_segment(0, 0.0);
        p.on_segment(2, 0.5); // 1 missing
        p.on_segment(3, 0.5);
        p.on_segment(4, 0.5);
        p.advance(30.0);
        assert_eq!(p.state(), PlaybackState::Stalled);
        // Head stuck at media 4 s.
        assert!((p.position().as_secs_f64() - 4.0).abs() < 1e-6);
        p.on_segment(1, 30.0);
        p.advance(46.0);
        assert_eq!(p.state(), PlaybackState::Finished);
        let m = p.metrics();
        assert_eq!(m.stall_count, 1);
        assert!((m.total_stall_secs - 26.0).abs() < 1e-6);
    }

    #[test]
    fn finish_truncates_open_stall() {
        let mut p = playback();
        p.on_segment(0, 0.0);
        p.finish(10.0);
        let m = p.metrics();
        assert_eq!(m.stall_count, 1);
        // Dry at t=4 (4 s of media), closed at t=10.
        assert!((m.total_stall_secs - 6.0).abs() < 1e-6);
        assert_eq!(m.finished_secs, None);
    }

    #[test]
    fn buffered_ahead_reports_t() {
        let mut p = playback();
        p.on_segment(0, 0.0);
        p.on_segment(1, 0.0);
        // At t=1 the head is at media 1 s with 8 s buffered → T = 7 s.
        let t = p.buffered_ahead(1.0);
        assert!((t.as_secs_f64() - 7.0).abs() < 1e-6);
        // Before startup T is zero.
        let mut fresh = playback();
        assert_eq!(fresh.buffered_ahead(5.0), MediaTicks::ZERO);
    }

    #[test]
    fn never_started_session_has_no_metrics() {
        let mut p = playback();
        p.finish(60.0);
        let m = p.metrics();
        assert_eq!(m.startup_secs, None);
        assert_eq!(m.stall_count, 0);
        assert_eq!(m.finished_secs, None);
    }
}
