//! Property-based tests for the media model.

use proptest::prelude::*;

use rand::SeedableRng;
use splicecast_media::*;

fn arbitrary_profile() -> impl Strategy<Value = ContentProfile> {
    prop_oneof![
        (0.2f64..10.0).prop_map(|gop_secs| ContentProfile::Uniform { gop_secs }),
        Just(ContentProfile::paper_default()),
        Just(ContentProfile::action()),
        Just(ContentProfile::talking_head()),
        ((0.1f64..0.9), (0.2f64..2.0), (2.0f64..20.0)).prop_map(|(p, short, long)| {
            ContentProfile::Mixture {
                classes: vec![
                    SceneClass::new(p, 0.1, short),
                    SceneClass::new(1.0 - p, short, short + long),
                ],
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profiles_cover_the_requested_duration_exactly(
        profile in arbitrary_profile(),
        total in 1.0f64..300.0,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let durations = profile.sample_gop_durations(&mut rng, total);
        prop_assert!(!durations.is_empty());
        let sum: f64 = durations.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6, "sum {sum} vs total {total}");
        prop_assert!(durations.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn encoded_videos_always_validate_and_hit_bitrate(
        profile in arbitrary_profile(),
        secs in 2.0f64..90.0,
        bitrate in 100_000u64..8_000_000,
        seed in any::<u64>(),
    ) {
        let video = Video::builder()
            .duration_secs(secs)
            .profile(profile)
            .bitrate_bps(bitrate)
            .seed(seed)
            .build();
        prop_assert!(video.validate().is_ok());
        // CBR scaling: actual bitrate within 2% of the target.
        let err = (video.bitrate_bps() - bitrate as f64).abs() / bitrate as f64;
        prop_assert!(err < 0.02, "bitrate off by {err}");
        // Duration matches the request to within one frame per GOP.
        prop_assert!((video.duration().as_secs_f64() - secs).abs() < 0.5 + video.gop_count() as f64 / 30.0);
        // GOP index invariants.
        let frames: usize = video.gops().map(|g| g.frame_count()).sum();
        prop_assert_eq!(frames, video.frames().len());
    }

    #[test]
    fn duration_splicer_segments_never_exceed_target_by_more_than_a_frame(
        secs in 5.0f64..60.0,
        target in 0.5f64..10.0,
        seed in any::<u64>(),
    ) {
        let video = Video::builder().duration_secs(secs).seed(seed).build();
        let list = DurationSplicer::new(target).splice(&video);
        list.validate(&video).unwrap();
        let frame = 1.0 / f64::from(video.fps());
        for seg in list.segments() {
            prop_assert!(
                seg.duration.as_secs_f64() <= target + frame + 1e-9,
                "segment {} lasts {}",
                seg.index,
                seg.duration
            );
        }
    }

    #[test]
    fn segment_at_agrees_with_linear_scan(
        secs in 5.0f64..40.0,
        target in 0.5f64..10.0,
        seed in any::<u64>(),
        probe in 0.0f64..1.0,
    ) {
        let video = Video::builder().duration_secs(secs).seed(seed).build();
        let list = DurationSplicer::new(target).splice(&video);
        let pts = MediaTicks::from_ticks(
            (probe * video.duration().ticks() as f64) as u64,
        );
        let fast = list.segment_at(pts).map(|s| s.index);
        let slow = list
            .iter()
            .find(|s| s.start_pts <= pts && pts < s.end_pts())
            .map(|s| s.index);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn byte_splicer_respects_its_floor(
        secs in 5.0f64..40.0,
        target in 20_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let video = Video::builder().duration_secs(secs).seed(seed).build();
        let list = ByteSplicer::new(target).splice(&video);
        list.validate(&video).unwrap();
        // Every segment except the last reaches the target.
        for seg in &list.segments()[..list.len() - 1] {
            prop_assert!(seg.media_bytes() >= target.min(video.total_bytes()));
        }
    }

    #[test]
    fn manifests_round_trip(secs in 2.0f64..30.0, seed in any::<u64>(), d in 0.5f64..8.0) {
        let video = Video::builder().duration_secs(secs).seed(seed).build();
        for list in [GopSplicer.splice(&video), DurationSplicer::new(d).splice(&video)] {
            let manifest = Manifest::from_segments("v", &list);
            let parsed = Manifest::parse_m3u8(&manifest.to_m3u8()).unwrap();
            prop_assert_eq!(parsed.version, manifest.version);
            prop_assert_eq!(parsed.target_duration_secs, manifest.target_duration_secs);
            prop_assert_eq!(parsed.len(), manifest.len());
            for (a, b) in parsed.entries.iter().zip(&manifest.entries) {
                prop_assert_eq!(&a.uri, &b.uri);
                prop_assert_eq!(a.bytes, b.bytes);
                // EXTINF carries 6 decimals, so durations round-trip to µs.
                prop_assert!((a.duration_secs - b.duration_secs).abs() < 1e-6);
            }
        }
    }
}
