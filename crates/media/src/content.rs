//! Content profiles: how scene structure drives GOP durations.
//!
//! The paper's observation (§VI-A): "The duration of the GOPs can vary based
//! on the content of the video... constantly changing scenery [gives] very
//! short [GOPs]; a stationary scene... can be very long." A content profile
//! is the generative model of that variability — it produces the sequence of
//! GOP durations a real encoder would have emitted for such content.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A generative model for GOP durations.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use splicecast_media::ContentProfile;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let durations = ContentProfile::paper_default().sample_gop_durations(&mut rng, 120.0);
/// let total: f64 = durations.iter().sum();
/// assert!((total - 120.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ContentProfile {
    /// Every GOP has the same duration (an encoder with a forced keyframe
    /// interval). The degenerate case where GOP splicing equals duration
    /// splicing.
    Uniform {
        /// GOP duration in seconds.
        gop_secs: f64,
    },
    /// A mixture of scene classes, each with its own GOP-duration range.
    /// Scenes are drawn i.i.d.; durations uniformly within the class range.
    Mixture {
        /// `(probability, min_secs, max_secs)` per scene class. The
        /// probabilities must sum to 1.
        classes: Vec<SceneClass>,
    },
}

/// One scene class of a [`ContentProfile::Mixture`].
///
/// A *scene* is a stretch of footage with a consistent character; the
/// encoder emits a **run** of GOPs for it. Action footage means long runs
/// of very short GOPs (a scene cut every beat forces a keyframe); static
/// footage means one long GOP per scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneClass {
    /// Probability of drawing this class for the next scene.
    pub probability: f64,
    /// Shortest GOP this class produces, in seconds.
    pub min_secs: f64,
    /// Longest GOP this class produces, in seconds.
    pub max_secs: f64,
    /// Shortest scene duration, in seconds.
    pub scene_min_secs: f64,
    /// Longest scene duration, in seconds.
    pub scene_max_secs: f64,
}

impl SceneClass {
    /// Creates a scene class whose scenes are a single GOP long.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_secs <= max_secs` and
    /// `0 <= probability <= 1`.
    pub fn new(probability: f64, min_secs: f64, max_secs: f64) -> Self {
        Self::with_scene(probability, min_secs, max_secs, min_secs, max_secs)
    }

    /// Creates a scene class that emits runs of GOPs covering a sampled
    /// scene duration.
    ///
    /// # Panics
    ///
    /// Panics unless the probability is in `[0, 1]` and both ranges are
    /// positive and ordered.
    pub fn with_scene(
        probability: f64,
        min_secs: f64,
        max_secs: f64,
        scene_min_secs: f64,
        scene_max_secs: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "bad probability {probability}"
        );
        assert!(
            min_secs > 0.0 && min_secs <= max_secs,
            "bad duration range [{min_secs}, {max_secs}]"
        );
        assert!(
            scene_min_secs > 0.0 && scene_min_secs <= scene_max_secs,
            "bad scene range [{scene_min_secs}, {scene_max_secs}]"
        );
        SceneClass {
            probability,
            min_secs,
            max_secs,
            scene_min_secs,
            scene_max_secs,
        }
    }
}

impl ContentProfile {
    /// The mixed profile used throughout the reproduction: mostly ordinary
    /// scenes, with occasional rapid action (very short GOPs) and occasional
    /// static scenes (very long GOPs) — the variability the paper blames for
    /// GOP-based splicing's stalls.
    pub fn paper_default() -> Self {
        // Mimics an x264-style encoder (scene-cut keyframes, min/max
        // keyframe interval): mostly sub-second to ~2.5 s GOPs, with
        // occasional long static-scene GOPs — so GOP-based splicing yields
        // both confetti and monsters, exactly the variability §VI-A blames.
        ContentProfile::Mixture {
            classes: vec![
                // Action sequences: sustained runs of beat-length GOPs.
                SceneClass::with_scene(0.35, 0.15, 0.6, 6.0, 14.0),
                // Ordinary footage.
                SceneClass::with_scene(0.50, 0.9, 2.5, 4.0, 10.0),
                // Static scenery / slow pans: one monster GOP per scene.
                SceneClass::with_scene(0.15, 8.0, 16.0, 8.0, 16.0),
            ],
        }
    }

    /// All-action content: uniformly short GOPs.
    pub fn action() -> Self {
        ContentProfile::Mixture {
            classes: vec![SceneClass::new(1.0, 0.3, 1.5)],
        }
    }

    /// Talking-head content: long, stable GOPs.
    pub fn talking_head() -> Self {
        ContentProfile::Mixture {
            classes: vec![SceneClass::new(1.0, 5.0, 15.0)],
        }
    }

    /// Samples GOP durations until `total_secs` is covered. The last GOP is
    /// truncated so the durations sum to exactly `total_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `total_secs` is not positive/finite, or if a mixture's
    /// probabilities do not sum to 1 (within 1e-6).
    pub fn sample_gop_durations(&self, rng: &mut StdRng, total_secs: f64) -> Vec<f64> {
        assert!(
            total_secs.is_finite() && total_secs > 0.0,
            "bad video length {total_secs}"
        );
        const EPSILON: f64 = 1e-6;
        let mut durations = Vec::new();
        let mut covered = 0.0;
        match self {
            ContentProfile::Uniform { gop_secs } => {
                assert!(*gop_secs > 0.0, "bad uniform gop duration {gop_secs}");
                while covered + EPSILON < total_secs {
                    let next = gop_secs.min(total_secs - covered);
                    durations.push(next);
                    covered += next;
                }
            }
            ContentProfile::Mixture { classes } => {
                let total_p: f64 = classes.iter().map(|c| c.probability).sum();
                assert!(
                    (total_p - 1.0).abs() < 1e-6,
                    "mixture probabilities sum to {total_p}, expected 1"
                );
                while covered + EPSILON < total_secs {
                    let class = Self::pick_class(classes, rng);
                    let scene = rng
                        .gen_range(class.scene_min_secs..=class.scene_max_secs)
                        .min(total_secs - covered);
                    // Emit a run of GOPs covering this scene.
                    let mut scene_left = scene;
                    while scene_left > EPSILON {
                        let next = rng
                            .gen_range(class.min_secs..=class.max_secs)
                            .min(scene_left);
                        durations.push(next);
                        scene_left -= next;
                        covered += next;
                    }
                }
            }
        }
        durations
    }

    fn pick_class<'a>(classes: &'a [SceneClass], rng: &mut StdRng) -> &'a SceneClass {
        let mut draw: f64 = rng.gen();
        for class in classes {
            if draw < class.probability {
                return class;
            }
            draw -= class.probability;
        }
        // Floating-point residue: fall back to the last class.
        classes.last().expect("mixture has classes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn uniform_profile_is_exact() {
        let durations =
            ContentProfile::Uniform { gop_secs: 2.0 }.sample_gop_durations(&mut rng(), 10.0);
        assert_eq!(durations, vec![2.0; 5]);
    }

    #[test]
    fn uniform_profile_truncates_tail() {
        let durations =
            ContentProfile::Uniform { gop_secs: 4.0 }.sample_gop_durations(&mut rng(), 10.0);
        assert_eq!(durations, vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn mixture_covers_exactly() {
        let durations = ContentProfile::paper_default().sample_gop_durations(&mut rng(), 120.0);
        let total: f64 = durations.iter().sum();
        assert!((total - 120.0).abs() < 1e-9);
        assert!(durations.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn mixture_produces_both_short_and_long_gops() {
        let durations = ContentProfile::paper_default().sample_gop_durations(&mut rng(), 600.0);
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!(min < 1.0, "expected some action GOPs, min {min}");
        assert!(max > 6.0, "expected some static GOPs, max {max}");
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let a = ContentProfile::paper_default().sample_gop_durations(&mut rng(), 60.0);
        let b = ContentProfile::paper_default().sample_gop_durations(&mut rng(), 60.0);
        assert_eq!(a, b);
    }

    #[test]
    fn presets_sample_within_their_ranges() {
        for d in ContentProfile::action().sample_gop_durations(&mut rng(), 60.0) {
            assert!(d <= 1.5 + 1e-9);
        }
        let talking = ContentProfile::talking_head().sample_gop_durations(&mut rng(), 60.0);
        // GOPs never exceed the class maximum, and the bulk are full-size
        // (only scene/video truncation produces shorter ones).
        assert!(talking.iter().all(|&d| d <= 15.0 + 1e-9));
        let full = talking.iter().filter(|&&d| d >= 5.0 - 1e-9).count();
        assert!(full * 2 >= talking.len(), "{full}/{}", talking.len());
    }

    #[test]
    fn scene_runs_emit_gop_bursts() {
        // A class with long scenes of very short GOPs must produce runs.
        let profile = ContentProfile::Mixture {
            classes: vec![SceneClass::with_scene(1.0, 0.2, 0.4, 5.0, 10.0)],
        };
        let durations = profile.sample_gop_durations(&mut rng(), 30.0);
        assert!(
            durations.len() >= 30,
            "expected many tiny GOPs, got {}",
            durations.len()
        );
        assert!(durations.iter().all(|&d| d <= 0.4 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn bad_mixture_panics() {
        let p = ContentProfile::Mixture {
            classes: vec![SceneClass::new(0.4, 1.0, 2.0)],
        };
        let _ = p.sample_gop_durations(&mut rng(), 10.0);
    }

    #[test]
    #[should_panic(expected = "bad duration range")]
    fn inverted_range_panics() {
        let _ = SceneClass::new(0.5, 3.0, 2.0);
    }
}
