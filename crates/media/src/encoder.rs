//! The synthetic encoder: turns GOP durations into coded frames.
//!
//! Pixel content never matters for streaming dynamics — only the byte
//! layout over time does. The encoder therefore fabricates frames whose
//! sizes follow the structural facts of MPEG-4 coding: I-frames are several
//! times larger than P-frames, which are larger than B-frames; per-frame
//! sizes jitter; and the whole stream is scaled to hit an exact target
//! bitrate (a constant-bitrate encode).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::frame::{Frame, FrameType, MediaTicks, TICKS_PER_SEC};

/// Tunables of the synthetic encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Frames per second. Must divide 90 000 for exact timestamps.
    pub fps: u32,
    /// Target bitrate in bits per second (constant-bitrate scaling).
    pub bitrate_bps: u64,
    /// Relative size of an I-frame.
    pub i_weight: f64,
    /// Relative size of a P-frame.
    pub p_weight: f64,
    /// Relative size of a B-frame.
    pub b_weight: f64,
    /// Number of B-frames between reference frames (the classic
    /// `I B B P B B P …` pattern uses 2).
    pub b_frames: u32,
    /// Log-normal σ of per-frame size jitter (0 disables jitter).
    pub size_jitter_sigma: f64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            fps: 30,
            bitrate_bps: 1_000_000, // the paper's 1 Mbps test video
            i_weight: 12.0,
            p_weight: 3.0,
            b_weight: 1.0,
            b_frames: 2,
            size_jitter_sigma: 0.15,
        }
    }
}

impl EncoderConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive weights/bitrate or an fps that does not
    /// divide the 90 kHz clock.
    pub fn validate(&self) {
        assert!(
            self.fps > 0 && TICKS_PER_SEC.is_multiple_of(u64::from(self.fps)),
            "fps {} must divide 90000",
            self.fps
        );
        assert!(self.bitrate_bps > 0, "bitrate must be positive");
        assert!(
            self.i_weight > 0.0 && self.p_weight > 0.0 && self.b_weight > 0.0,
            "frame weights must be positive"
        );
        assert!(self.size_jitter_sigma >= 0.0, "jitter must be non-negative");
    }

    /// Duration of one frame.
    pub fn frame_duration(&self) -> MediaTicks {
        MediaTicks::from_ticks(TICKS_PER_SEC / u64::from(self.fps))
    }

    /// The frame type at position `idx` within a GOP (0 is always `I`).
    pub fn frame_type_at(&self, idx: usize) -> FrameType {
        if idx == 0 {
            return FrameType::I;
        }
        // Groups of `b_frames` B-frames, each closed by a P reference.
        let group = self.b_frames as usize + 1;
        if idx.is_multiple_of(group) {
            FrameType::P
        } else {
            FrameType::B
        }
    }

    fn weight(&self, kind: FrameType) -> f64 {
        match kind {
            FrameType::I => self.i_weight,
            FrameType::P => self.p_weight,
            FrameType::B => self.b_weight,
        }
    }
}

/// Encodes a video: one GOP per entry of `gop_durations` (seconds), frames
/// timed back-to-back, sizes scaled so total bytes equal
/// `bitrate × total_duration / 8`.
///
/// Returns the frames plus the index of each GOP's first frame.
///
/// # Panics
///
/// Panics if `gop_durations` is empty or the config is invalid.
pub fn encode(
    cfg: &EncoderConfig,
    gop_durations: &[f64],
    rng: &mut StdRng,
) -> (Vec<Frame>, Vec<u32>) {
    cfg.validate();
    assert!(
        !gop_durations.is_empty(),
        "cannot encode a video with no GOPs"
    );

    let frame_dur = cfg.frame_duration();
    let mut frames: Vec<Frame> = Vec::new();
    let mut gop_starts: Vec<u32> = Vec::new();
    let mut raw_sizes: Vec<f64> = Vec::new();

    // Frame counts come from rounding *cumulative* boundaries so the total
    // frame count never drifts, no matter how many sub-frame-rate GOPs the
    // content produces.
    let mut cum_secs = 0.0;
    let mut cum_frames = 0usize;
    for &gop_secs in gop_durations {
        assert!(gop_secs > 0.0, "GOP durations must be positive");
        cum_secs += gop_secs;
        let target_frames = (cum_secs * f64::from(cfg.fps)).round() as usize;
        let mut n = target_frames.saturating_sub(cum_frames);
        if n == 0 {
            if frames.is_empty() {
                n = 1; // a video is never empty
            } else {
                continue; // sub-frame GOP: absorbed by its neighbour
            }
        }
        cum_frames += n;
        gop_starts.push(frames.len() as u32);
        for idx in 0..n {
            let kind = cfg.frame_type_at(idx);
            let jitter = if cfg.size_jitter_sigma > 0.0 {
                splicecast_jitter(rng, cfg.size_jitter_sigma)
            } else {
                1.0
            };
            raw_sizes.push(cfg.weight(kind) * jitter);
            let pts = MediaTicks::from_ticks(frame_dur.ticks() * frames.len() as u64);
            frames.push(Frame {
                kind,
                bytes: 0,
                pts,
                duration: frame_dur,
            });
        }
    }

    // Constant-bitrate scaling: total bytes must match the target exactly
    // (up to per-frame rounding).
    let total_secs = frames.len() as f64 / f64::from(cfg.fps);
    let target_bytes = cfg.bitrate_bps as f64 * total_secs / 8.0;
    let raw_total: f64 = raw_sizes.iter().sum();
    let scale = target_bytes / raw_total;
    for (frame, raw) in frames.iter_mut().zip(&raw_sizes) {
        frame.bytes = ((raw * scale).round() as u32).max(1);
    }

    (frames, gop_starts)
}

fn splicecast_jitter(rng: &mut StdRng, sigma: f64) -> f64 {
    use rand::Rng;
    // Inline log-normal sampling (Box–Muller) to avoid a netsim dependency.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn pattern_is_ibbp() {
        let cfg = EncoderConfig::default();
        let kinds: Vec<FrameType> = (0..7).map(|i| cfg.frame_type_at(i)).collect();
        use FrameType::*;
        assert_eq!(kinds, vec![I, B, B, P, B, B, P]);
    }

    #[test]
    fn encode_hits_target_bitrate() {
        let cfg = EncoderConfig::default();
        let (frames, _) = encode(&cfg, &[2.0, 3.0, 1.0], &mut rng());
        let total: u64 = frames.iter().map(|f| u64::from(f.bytes)).sum();
        let expected = 1_000_000.0 * 6.0 / 8.0;
        let err = (total as f64 - expected).abs() / expected;
        assert!(err < 0.001, "total {total}, expected {expected}");
    }

    #[test]
    fn encode_counts_frames_per_gop() {
        let cfg = EncoderConfig::default();
        let (frames, starts) = encode(&cfg, &[2.0, 1.0], &mut rng());
        assert_eq!(frames.len(), 90);
        assert_eq!(starts, vec![0, 60]);
        assert!(frames[0].kind.is_intra());
        assert!(frames[60].kind.is_intra());
    }

    #[test]
    fn timestamps_are_contiguous() {
        let cfg = EncoderConfig::default();
        let (frames, _) = encode(&cfg, &[1.0, 1.0], &mut rng());
        for pair in frames.windows(2) {
            assert_eq!(pair[0].end_pts(), pair[1].pts);
        }
    }

    #[test]
    fn i_frames_dominate_sizes_on_average() {
        let cfg = EncoderConfig {
            size_jitter_sigma: 0.0,
            ..EncoderConfig::default()
        };
        let (frames, _) = encode(&cfg, &[4.0], &mut rng());
        let i = frames
            .iter()
            .find(|f| f.kind == FrameType::I)
            .unwrap()
            .bytes as f64;
        let p = frames
            .iter()
            .find(|f| f.kind == FrameType::P)
            .unwrap()
            .bytes as f64;
        let b = frames
            .iter()
            .find(|f| f.kind == FrameType::B)
            .unwrap()
            .bytes as f64;
        assert!((i / p - 4.0).abs() < 0.1, "I/P ratio {}", i / p);
        assert!((p / b - 3.0).abs() < 0.1, "P/B ratio {}", p / b);
    }

    #[test]
    fn tiny_gop_still_has_a_frame() {
        let cfg = EncoderConfig::default();
        let (frames, starts) = encode(&cfg, &[0.001], &mut rng());
        assert_eq!(frames.len(), 1);
        assert_eq!(starts, vec![0]);
        assert!(frames[0].kind.is_intra());
    }

    #[test]
    #[should_panic(expected = "no GOPs")]
    fn empty_input_panics() {
        let _ = encode(&EncoderConfig::default(), &[], &mut rng());
    }

    #[test]
    #[should_panic(expected = "must divide 90000")]
    fn bad_fps_panics() {
        let cfg = EncoderConfig {
            fps: 29,
            ..EncoderConfig::default()
        };
        cfg.validate();
    }
}
