//! HLS-style playlists describing a spliced video.
//!
//! The seeder serves a manifest to joining peers (like the `.m3u8` playlist
//! an HLS origin serves), listing every segment's duration and transfer
//! size. A small emitter/parser pair is provided so manifests can travel as
//! plain text.

use serde::{Deserialize, Serialize};

use crate::error::MediaError;
use crate::segment::SegmentList;

/// One entry of a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Segment file name (informational).
    pub uri: String,
    /// Display duration in seconds.
    pub duration_secs: f64,
    /// Transfer size in bytes (media + splicing overhead).
    pub bytes: u64,
}

/// A playlist describing every segment of a spliced video.
///
/// # Examples
///
/// ```
/// use splicecast_media::{DurationSplicer, Manifest, Splicer, Video};
///
/// let video = Video::builder().duration_secs(12.0).seed(1).build();
/// let segments = DurationSplicer::new(4.0).splice(&video);
/// let manifest = Manifest::from_segments("clip", &segments);
/// let text = manifest.to_m3u8();
/// let parsed = Manifest::parse_m3u8(&text).unwrap();
/// assert_eq!(parsed, manifest);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Playlist format version.
    pub version: u32,
    /// Upper bound on segment duration, in whole seconds (like
    /// `#EXT-X-TARGETDURATION`).
    pub target_duration_secs: u64,
    /// The segments in playback order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Builds a manifest from a segment list.
    pub fn from_segments(name: &str, segments: &SegmentList) -> Self {
        let entries = segments
            .iter()
            .map(|seg| ManifestEntry {
                uri: format!("{name}-{:05}.m4s", seg.index),
                duration_secs: seg.duration.as_secs_f64(),
                bytes: seg.bytes,
            })
            .collect::<Vec<_>>();
        let target = entries
            .iter()
            .map(|e| e.duration_secs.ceil() as u64)
            .max()
            .unwrap_or(0);
        Manifest {
            version: 3,
            target_duration_secs: target,
            entries,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the playlist has no segments.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total transfer bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Total playback duration in seconds.
    pub fn total_duration_secs(&self) -> f64 {
        self.entries.iter().map(|e| e.duration_secs).sum()
    }

    /// Emits the playlist as `m3u8` text. Segment byte sizes travel in a
    /// `#EXT-X-SPLICECAST-BYTES` application tag.
    pub fn to_m3u8(&self) -> String {
        let mut out = String::new();
        out.push_str("#EXTM3U\n");
        out.push_str(&format!("#EXT-X-VERSION:{}\n", self.version));
        out.push_str(&format!(
            "#EXT-X-TARGETDURATION:{}\n",
            self.target_duration_secs
        ));
        for entry in &self.entries {
            out.push_str(&format!("#EXT-X-SPLICECAST-BYTES:{}\n", entry.bytes));
            out.push_str(&format!("#EXTINF:{:.6},\n", entry.duration_secs));
            out.push_str(&entry.uri);
            out.push('\n');
        }
        out.push_str("#EXT-X-ENDLIST\n");
        out
    }

    /// Parses playlist text produced by [`Manifest::to_m3u8`].
    ///
    /// # Errors
    ///
    /// Returns [`MediaError::ParseManifest`] on malformed input.
    pub fn parse_m3u8(text: &str) -> Result<Self, MediaError> {
        let bad = |msg: &str| MediaError::ParseManifest(msg.to_owned());
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("#EXTM3U") {
            return Err(bad("missing #EXTM3U header"));
        }
        let mut version = 1;
        let mut target = 0;
        let mut entries = Vec::new();
        let mut pending_bytes: Option<u64> = None;
        let mut pending_duration: Option<f64> = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("#EXT-X-VERSION:") {
                version = v.parse().map_err(|_| bad("bad version"))?;
            } else if let Some(v) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
                target = v.parse().map_err(|_| bad("bad target duration"))?;
            } else if let Some(v) = line.strip_prefix("#EXT-X-SPLICECAST-BYTES:") {
                pending_bytes = Some(v.parse().map_err(|_| bad("bad byte count"))?);
            } else if let Some(v) = line.strip_prefix("#EXTINF:") {
                let duration = v
                    .trim_end_matches(',')
                    .parse()
                    .map_err(|_| bad("bad duration"))?;
                pending_duration = Some(duration);
            } else if line == "#EXT-X-ENDLIST" {
                break;
            } else if line.starts_with('#') {
                // Unknown tags are ignored, like real HLS clients do.
            } else {
                let duration_secs = pending_duration
                    .take()
                    .ok_or_else(|| bad("uri without #EXTINF"))?;
                let bytes = pending_bytes
                    .take()
                    .ok_or_else(|| bad("uri without byte size"))?;
                entries.push(ManifestEntry {
                    uri: line.to_owned(),
                    duration_secs,
                    bytes,
                });
            }
        }
        Ok(Manifest {
            version,
            target_duration_secs: target,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splicer::{DurationSplicer, GopSplicer, Splicer};
    use crate::video::Video;

    fn video() -> Video {
        Video::builder().duration_secs(20.0).seed(4).build()
    }

    #[test]
    fn manifest_mirrors_segments() {
        let v = video();
        let list = DurationSplicer::new(4.0).splice(&v);
        let m = Manifest::from_segments("clip", &list);
        assert_eq!(m.len(), list.len());
        assert_eq!(m.total_bytes(), list.total_bytes());
        assert!((m.total_duration_secs() - 20.0).abs() < 0.1);
        assert_eq!(m.target_duration_secs, 4);
        assert_eq!(m.entries[0].uri, "clip-00000.m4s");
    }

    #[test]
    fn m3u8_round_trips() {
        let v = video();
        for list in [GopSplicer.splice(&v), DurationSplicer::new(2.0).splice(&v)] {
            let m = Manifest::from_segments("clip", &list);
            let parsed = Manifest::parse_m3u8(&m.to_m3u8()).unwrap();
            assert_eq!(parsed.version, m.version);
            assert_eq!(parsed.target_duration_secs, m.target_duration_secs);
            assert_eq!(parsed.len(), m.len());
            for (a, b) in parsed.entries.iter().zip(&m.entries) {
                assert_eq!(a.uri, b.uri);
                assert_eq!(a.bytes, b.bytes);
                assert!((a.duration_secs - b.duration_secs).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Manifest::parse_m3u8("").is_err());
        assert!(Manifest::parse_m3u8("not a playlist").is_err());
        let missing_inf = "#EXTM3U\n#EXT-X-SPLICECAST-BYTES:10\nseg.m4s\n";
        assert!(Manifest::parse_m3u8(missing_inf).is_err());
        let missing_bytes = "#EXTM3U\n#EXTINF:2.0,\nseg.m4s\n";
        assert!(Manifest::parse_m3u8(missing_bytes).is_err());
        let bad_number = "#EXTM3U\n#EXT-X-VERSION:x\n";
        assert!(Manifest::parse_m3u8(bad_number).is_err());
    }

    #[test]
    fn parser_ignores_unknown_tags() {
        let text = "#EXTM3U\n#EXT-X-FANCY:1\n#EXT-X-SPLICECAST-BYTES:10\n#EXTINF:2.0,\nseg.m4s\n#EXT-X-ENDLIST\n";
        let m = Manifest::parse_m3u8(text).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries[0].bytes, 10);
    }

    #[test]
    fn empty_manifest_is_empty() {
        let m = Manifest::parse_m3u8("#EXTM3U\n#EXT-X-ENDLIST\n").unwrap();
        assert!(m.is_empty());
        assert_eq!(m.total_bytes(), 0);
    }
}
