//! Multi-bitrate rendition ladders.
//!
//! The paper's §I motivates duration-adaptive splicing as an alternative to
//! the industry's *bitrate* adaptation ("Netflix and Hulu ... clients
//! determine a bit-rate based on the available bandwidth. As they keep the
//! duration of the segment constant and vary the bit-rates, it will degrade
//! the video quality"). To compare the two fairly we need that baseline: a
//! ladder of renditions of the *same* content at different bitrates, cut at
//! the *same* segment boundaries, so a client can switch rendition at any
//! segment edge.

use serde::{Deserialize, Serialize};

use crate::content::ContentProfile;
use crate::encoder::EncoderConfig;
use crate::error::MediaError;
use crate::segment::SegmentList;
use crate::splicer::{DurationSplicer, Splicer};
use crate::video::Video;

/// One rung of a [`Ladder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rendition {
    /// Target bitrate of this rendition, bits per second.
    pub bitrate_bps: u64,
    /// The coded video.
    pub video: Video,
    /// The video cut at the ladder's common segment boundaries.
    pub segments: SegmentList,
}

/// An aligned set of renditions: same content, same GOP structure, same
/// segment boundaries — only the bytes differ.
///
/// # Examples
///
/// ```
/// use splicecast_media::Ladder;
///
/// let ladder = Ladder::builder()
///     .duration_secs(20.0)
///     .bitrates(&[250_000, 500_000, 1_000_000])
///     .segment_secs(4.0)
///     .seed(7)
///     .build();
/// assert_eq!(ladder.len(), 3);
/// assert_eq!(ladder.segment_count(), 5);
/// // Higher rungs cost more bytes for the same timeline.
/// assert!(ladder.segment_bytes(2, 0) > ladder.segment_bytes(0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ladder {
    renditions: Vec<Rendition>,
}

impl Ladder {
    /// Starts building a ladder.
    pub fn builder() -> LadderBuilder {
        LadderBuilder::default()
    }

    /// The renditions, ascending by bitrate.
    pub fn renditions(&self) -> &[Rendition] {
        &self.renditions
    }

    /// Number of renditions.
    pub fn len(&self) -> usize {
        self.renditions.len()
    }

    /// True when the ladder has no renditions (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.renditions.is_empty()
    }

    /// Number of segments (identical across renditions).
    pub fn segment_count(&self) -> usize {
        self.renditions[0].segments.len()
    }

    /// Transfer size of one segment of one rendition.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn segment_bytes(&self, rendition: usize, segment: usize) -> u64 {
        self.renditions[rendition].segments[segment].bytes
    }

    /// Display duration of a segment in seconds (identical across
    /// renditions).
    pub fn segment_secs(&self, segment: usize) -> f64 {
        self.renditions[0].segments[segment].duration.as_secs_f64()
    }

    /// The segment list of one rendition.
    pub fn segments(&self, rendition: usize) -> &SegmentList {
        &self.renditions[rendition].segments
    }

    /// Bitrate of a rendition, bits per second.
    pub fn bitrate_bps(&self, rendition: usize) -> u64 {
        self.renditions[rendition].bitrate_bps
    }

    /// Index of the highest rendition whose bitrate does not exceed
    /// `budget_bps`; rung 0 when even the lowest exceeds it.
    pub fn rung_for_bitrate(&self, budget_bps: f64) -> usize {
        self.renditions
            .iter()
            .rposition(|r| (r.bitrate_bps as f64) <= budget_bps)
            .unwrap_or(0)
    }

    /// Validates cross-rendition alignment: same segment count, same
    /// per-segment durations, strictly increasing bitrates.
    ///
    /// # Errors
    ///
    /// Returns a [`MediaError::SegmentCoverage`] flavoured error when
    /// alignment is broken.
    pub fn validate(&self) -> Result<(), MediaError> {
        if self.renditions.is_empty() {
            return Err(MediaError::EmptyVideo);
        }
        let reference = &self.renditions[0];
        reference.segments.validate(&reference.video)?;
        for rendition in &self.renditions[1..] {
            rendition.segments.validate(&rendition.video)?;
            if rendition.segments.len() != reference.segments.len() {
                return Err(MediaError::SegmentCoverage { frame: 0 });
            }
            for (a, b) in rendition.segments.iter().zip(reference.segments.iter()) {
                if a.duration != b.duration || a.start_pts != b.start_pts {
                    return Err(MediaError::SegmentCoverage {
                        frame: a.first_frame as usize,
                    });
                }
            }
        }
        if !self
            .renditions
            .windows(2)
            .all(|w| w[0].bitrate_bps < w[1].bitrate_bps)
        {
            return Err(MediaError::SegmentCoverage { frame: 0 });
        }
        Ok(())
    }
}

/// Builder for [`Ladder`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderBuilder {
    duration_secs: f64,
    bitrates: Vec<u64>,
    segment_secs: f64,
    profile: ContentProfile,
    fps: u32,
    seed: u64,
}

impl Default for LadderBuilder {
    fn default() -> Self {
        LadderBuilder {
            duration_secs: 120.0,
            bitrates: vec![250_000, 500_000, 1_000_000],
            segment_secs: 4.0,
            profile: ContentProfile::paper_default(),
            fps: 30,
            seed: 0,
        }
    }
}

impl LadderBuilder {
    /// Sets the clip length in seconds.
    pub fn duration_secs(&mut self, secs: f64) -> &mut Self {
        self.duration_secs = secs;
        self
    }

    /// Sets the rendition bitrates (bits per second). Sorted ascending and
    /// deduplicated at build time.
    pub fn bitrates(&mut self, bitrates: &[u64]) -> &mut Self {
        self.bitrates = bitrates.to_vec();
        self
    }

    /// Sets the common segment duration.
    pub fn segment_secs(&mut self, secs: f64) -> &mut Self {
        self.segment_secs = secs;
        self
    }

    /// Sets the content profile shared by all renditions.
    pub fn profile(&mut self, profile: ContentProfile) -> &mut Self {
        self.profile = profile;
        self
    }

    /// Sets the content seed shared by all renditions.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Encodes every rendition from the same content realisation and cuts
    /// them at the same boundaries.
    ///
    /// # Panics
    ///
    /// Panics when no bitrates are given or parameters are invalid.
    pub fn build(&self) -> Ladder {
        assert!(
            !self.bitrates.is_empty(),
            "a ladder needs at least one bitrate"
        );
        let mut bitrates = self.bitrates.clone();
        bitrates.sort_unstable();
        bitrates.dedup();
        let splicer = DurationSplicer::new(self.segment_secs);
        let renditions = bitrates
            .into_iter()
            .map(|bitrate_bps| {
                // Same profile + same seed ⇒ identical GOP structure and
                // per-frame jitter draws; only the byte scaling differs.
                let video = Video::builder()
                    .duration_secs(self.duration_secs)
                    .profile(self.profile.clone())
                    .encoder(EncoderConfig {
                        fps: self.fps,
                        bitrate_bps,
                        ..EncoderConfig::default()
                    })
                    .seed(self.seed)
                    .build();
                let segments = splicer.splice(&video);
                Rendition {
                    bitrate_bps,
                    video,
                    segments,
                }
            })
            .collect();
        let ladder = Ladder { renditions };
        debug_assert!(ladder.validate().is_ok());
        ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Ladder {
        Ladder::builder()
            .duration_secs(24.0)
            .bitrates(&[300_000, 600_000, 1_200_000])
            .segment_secs(4.0)
            .seed(5)
            .build()
    }

    #[test]
    fn renditions_are_aligned() {
        let l = ladder();
        l.validate().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.segment_count(), 6);
        for seg in 0..l.segment_count() {
            let d = l.segment_secs(seg);
            assert!(d > 0.0);
            // Bytes scale roughly with bitrate on every segment.
            let low = l.segment_bytes(0, seg) as f64;
            let high = l.segment_bytes(2, seg) as f64;
            let ratio = high / low;
            assert!((3.0..5.3).contains(&ratio), "segment {seg} ratio {ratio}");
        }
    }

    #[test]
    fn bitrates_sort_and_dedup() {
        let l = Ladder::builder()
            .duration_secs(8.0)
            .bitrates(&[800_000, 200_000, 800_000])
            .build();
        assert_eq!(l.len(), 2);
        assert_eq!(l.bitrate_bps(0), 200_000);
        assert_eq!(l.bitrate_bps(1), 800_000);
    }

    #[test]
    fn rung_for_bitrate_picks_the_highest_affordable() {
        let l = ladder();
        assert_eq!(
            l.rung_for_bitrate(10_000.0),
            0,
            "below the ladder → lowest rung"
        );
        assert_eq!(l.rung_for_bitrate(300_000.0), 0);
        assert_eq!(l.rung_for_bitrate(599_999.0), 0);
        assert_eq!(l.rung_for_bitrate(600_000.0), 1);
        assert_eq!(l.rung_for_bitrate(5e6), 2);
    }

    #[test]
    fn validate_catches_misalignment() {
        let mut l = ladder();
        // Cut the top rendition differently.
        let video = l.renditions[2].video.clone();
        l.renditions[2].segments = DurationSplicer::new(2.0).splice(&video);
        assert!(l.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one bitrate")]
    fn empty_ladder_panics() {
        let _ = Ladder::builder().bitrates(&[]).build();
    }
}
