//! # splicecast-media
//!
//! A synthetic **MPEG-4 stream model** and the **video splicers** studied in
//! *"Video Splicing Techniques for P2P Video Streaming"* (ICDCS 2015).
//!
//! Real pixel data is irrelevant to streaming dynamics; what matters is the
//! *byte layout over time* of the coded video. This crate models exactly
//! that:
//!
//! - [`Frame`]s with type-dependent sizes (I ≫ P > B) on a 90 kHz clock;
//! - closed GOPs whose durations follow a [`ContentProfile`] (scene
//!   changes → short GOPs, static scenes → very long GOPs);
//! - a constant-bitrate synthetic encoder ([`EncoderConfig`]) assembled by
//!   [`Video::builder`];
//! - the paper's splicing strategies: [`GopSplicer`] (§II-A, zero overhead,
//!   wild size variance) and [`DurationSplicer`] (§II-B, equal durations,
//!   I-frame conversion overhead), plus a PPLive-style [`ByteSplicer`];
//! - an HLS-style [`Manifest`] for shipping the segment index to peers.
//!
//! ## Example
//!
//! ```
//! use splicecast_media::{DurationSplicer, GopSplicer, Splicer, Video};
//!
//! // The paper's clip: 2 minutes of 1 Mbps MPEG-4.
//! let video = Video::builder().seed(7).build();
//!
//! let by_gop = GopSplicer.splice(&video);
//! let by_4s = DurationSplicer::new(4.0).splice(&video);
//!
//! assert_eq!(by_gop.total_overhead_bytes(), 0);
//! assert!(by_4s.total_overhead_bytes() > 0); // inserted I-frames
//! assert!(by_gop.max_segment_bytes() > by_4s.max_segment_bytes());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod content;
mod encoder;
mod error;
mod frame;
mod gop;
mod ladder;
mod manifest;
mod segment;
mod splicer;
mod video;

pub use content::{ContentProfile, SceneClass};
pub use encoder::{encode, EncoderConfig};
pub use error::MediaError;
pub use frame::{Frame, FrameType, MediaTicks, TICKS_PER_SEC};
pub use gop::GopView;
pub use ladder::{Ladder, LadderBuilder, Rendition};
pub use manifest::{Manifest, ManifestEntry};
pub use segment::{Segment, SegmentList};
pub use splicer::{ByteSplicer, DurationSplicer, GopSplicer, RampSplicer, Splicer};
pub use video::{Video, VideoBuilder};
