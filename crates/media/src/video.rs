//! The video container: frames, GOP index, and the builder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::content::ContentProfile;
use crate::encoder::{encode, EncoderConfig};
use crate::error::MediaError;
use crate::frame::{Frame, MediaTicks};
use crate::gop::GopView;

/// A coded video: a validated sequence of closed GOPs.
///
/// Construct one with [`Video::builder`] (synthetic encode) or
/// [`Video::from_parts`] (hand-assembled, e.g. in tests).
///
/// # Examples
///
/// ```
/// use splicecast_media::Video;
///
/// let video = Video::builder().duration_secs(10.0).seed(1).build();
/// assert!((video.duration().as_secs_f64() - 10.0).abs() < 0.2);
/// assert!(video.gop_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    fps: u32,
    frames: Vec<Frame>,
    gop_starts: Vec<u32>,
}

impl Video {
    /// Starts building a synthetic video.
    pub fn builder() -> VideoBuilder {
        VideoBuilder::default()
    }

    /// Assembles a video from parts, validating the closed-GOP invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: frames non-empty, strictly
    /// increasing timestamps, every GOP starting with an I-frame and
    /// containing no other I-frames.
    pub fn from_parts(
        fps: u32,
        frames: Vec<Frame>,
        gop_starts: Vec<u32>,
    ) -> Result<Self, MediaError> {
        let video = Video {
            fps,
            frames,
            gop_starts,
        };
        video.validate()?;
        Ok(video)
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// All frames, in presentation order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Frame indices where each GOP starts.
    pub fn gop_starts(&self) -> &[u32] {
        &self.gop_starts
    }

    /// Number of GOPs.
    pub fn gop_count(&self) -> usize {
        self.gop_starts.len()
    }

    /// A view of the `index`-th GOP.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.gop_count()`.
    pub fn gop(&self, index: usize) -> GopView<'_> {
        let start = self.gop_starts[index] as usize;
        let end = self
            .gop_starts
            .get(index + 1)
            .map(|&s| s as usize)
            .unwrap_or(self.frames.len());
        GopView::new(index, start, &self.frames[start..end])
    }

    /// Iterates over all GOPs.
    pub fn gops(&self) -> impl Iterator<Item = GopView<'_>> + '_ {
        (0..self.gop_count()).map(|i| self.gop(i))
    }

    /// Total display duration.
    pub fn duration(&self) -> MediaTicks {
        match self.frames.last() {
            Some(last) => last.end_pts() - self.frames[0].pts,
            None => MediaTicks::ZERO,
        }
    }

    /// Total coded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.bytes)).sum()
    }

    /// Average bitrate in bits per second.
    pub fn bitrate_bps(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 * 8.0 / secs
        }
    }

    /// Checks every container invariant.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), MediaError> {
        if self.frames.is_empty() {
            return Err(MediaError::EmptyVideo);
        }
        if self.gop_starts.first() != Some(&0) {
            return Err(MediaError::GopMissingIFrame { gop: 0 });
        }
        for (i, pair) in self.frames.windows(2).enumerate() {
            if pair[1].pts <= pair[0].pts {
                return Err(MediaError::NonMonotonicPts { frame: i + 1 });
            }
        }
        let starts: std::collections::HashSet<u32> = self.gop_starts.iter().copied().collect();
        for (g, &start) in self.gop_starts.iter().enumerate() {
            match self.frames.get(start as usize) {
                Some(f) if f.kind.is_intra() => {}
                _ => return Err(MediaError::GopMissingIFrame { gop: g }),
            }
        }
        for (i, frame) in self.frames.iter().enumerate() {
            if frame.kind.is_intra() != starts.contains(&(i as u32)) {
                return if frame.kind.is_intra() {
                    Err(MediaError::StrayIFrame { frame: i })
                } else {
                    Err(MediaError::GopMissingIFrame {
                        gop: self
                            .gop_starts
                            .iter()
                            .position(|&s| s == i as u32)
                            .unwrap_or(0),
                    })
                };
            }
        }
        Ok(())
    }
}

/// Builder for synthetic [`Video`]s.
///
/// Defaults match the paper's test clip: 2 minutes of 1 Mbps, 30 fps
/// MPEG-4 with mixed content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoBuilder {
    duration_secs: f64,
    profile: ContentProfile,
    encoder: EncoderConfig,
    seed: u64,
}

impl Default for VideoBuilder {
    fn default() -> Self {
        VideoBuilder {
            duration_secs: 120.0,
            profile: ContentProfile::paper_default(),
            encoder: EncoderConfig::default(),
            seed: 0,
        }
    }
}

impl VideoBuilder {
    /// Sets the clip length in seconds.
    pub fn duration_secs(&mut self, secs: f64) -> &mut Self {
        self.duration_secs = secs;
        self
    }

    /// Sets the content profile driving GOP durations.
    pub fn profile(&mut self, profile: ContentProfile) -> &mut Self {
        self.profile = profile;
        self
    }

    /// Sets the full encoder configuration.
    pub fn encoder(&mut self, encoder: EncoderConfig) -> &mut Self {
        self.encoder = encoder;
        self
    }

    /// Sets the target bitrate in bits per second.
    pub fn bitrate_bps(&mut self, bps: u64) -> &mut Self {
        self.encoder.bitrate_bps = bps;
        self
    }

    /// Sets the frame rate.
    pub fn fps(&mut self, fps: u32) -> &mut Self {
        self.encoder.fps = fps;
        self
    }

    /// Sets the RNG seed for content sampling and size jitter.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Encodes the video.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-positive duration or
    /// bitrate, fps that does not divide 90 000, ...).
    pub fn build(&self) -> Video {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let durations = self
            .profile
            .sample_gop_durations(&mut rng, self.duration_secs);
        let (frames, gop_starts) = encode(&self.encoder, &durations, &mut rng);
        let video = Video {
            fps: self.encoder.fps,
            frames,
            gop_starts,
        };
        debug_assert!(video.validate().is_ok());
        video
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;

    fn paper_video() -> Video {
        Video::builder().seed(42).build()
    }

    #[test]
    fn paper_clip_has_paper_numbers() {
        let v = paper_video();
        assert!((v.duration().as_secs_f64() - 120.0).abs() < 0.2);
        // 1 Mbps over 2 minutes = 15 MB.
        let mb = v.total_bytes() as f64 / 1e6;
        assert!((mb - 15.0).abs() < 0.2, "total {mb} MB");
        assert!((v.bitrate_bps() - 1_000_000.0).abs() < 20_000.0);
        assert!(v.validate().is_ok());
    }

    #[test]
    fn gop_views_tile_the_video() {
        let v = paper_video();
        let total_frames: usize = v.gops().map(|g| g.frame_count()).sum();
        assert_eq!(total_frames, v.frames().len());
        let total_bytes: u64 = v.gops().map(|g| g.bytes()).sum();
        assert_eq!(total_bytes, v.total_bytes());
        let mut expected_first = 0;
        for gop in v.gops() {
            assert_eq!(gop.first_frame, expected_first);
            expected_first += gop.frame_count();
        }
    }

    #[test]
    fn builds_are_deterministic() {
        assert_eq!(paper_video(), paper_video());
        let other = Video::builder().seed(43).build();
        assert_ne!(paper_video(), other);
    }

    #[test]
    fn from_parts_validates() {
        let f = |kind, pts| Frame {
            kind,
            bytes: 10,
            pts: MediaTicks::from_ticks(pts),
            duration: MediaTicks::from_ticks(3000),
        };
        // Valid: two GOPs.
        let ok = Video::from_parts(
            30,
            vec![
                f(FrameType::I, 0),
                f(FrameType::P, 3000),
                f(FrameType::I, 6000),
            ],
            vec![0, 2],
        );
        assert!(ok.is_ok());
        // Invalid: second GOP starts on a P-frame.
        let bad = Video::from_parts(
            30,
            vec![f(FrameType::I, 0), f(FrameType::P, 3000)],
            vec![0, 1],
        );
        assert_eq!(bad.unwrap_err(), MediaError::GopMissingIFrame { gop: 1 });
        // Invalid: stray mid-GOP I-frame.
        let stray = Video::from_parts(30, vec![f(FrameType::I, 0), f(FrameType::I, 3000)], vec![0]);
        assert_eq!(stray.unwrap_err(), MediaError::StrayIFrame { frame: 1 });
        // Invalid: non-monotonic pts.
        let order = Video::from_parts(
            30,
            vec![f(FrameType::I, 100), f(FrameType::P, 100)],
            vec![0],
        );
        assert_eq!(order.unwrap_err(), MediaError::NonMonotonicPts { frame: 1 });
        // Invalid: empty.
        assert_eq!(
            Video::from_parts(30, vec![], vec![]).unwrap_err(),
            MediaError::EmptyVideo
        );
    }

    #[test]
    fn gop_durations_vary_with_content() {
        let v = paper_video();
        let durs: Vec<f64> = v.gops().map(|g| g.duration().as_secs_f64()).collect();
        let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "expected variable GOPs, got {min}..{max}");
    }

    #[test]
    fn uniform_profile_gives_uniform_gops() {
        let v = Video::builder()
            .duration_secs(10.0)
            .profile(ContentProfile::Uniform { gop_secs: 2.0 })
            .build();
        assert_eq!(v.gop_count(), 5);
        for gop in v.gops() {
            assert!((gop.duration().as_secs_f64() - 2.0).abs() < 1e-9);
        }
    }
}
