//! Group-of-pictures views over a video's frames.

use crate::frame::{Frame, MediaTicks};

/// A borrowed view of one closed GOP: an I-frame followed by its dependent
/// P/B frames.
///
/// Produced by [`crate::Video::gop`] / [`crate::Video::gops`].
#[derive(Debug, Clone, Copy)]
pub struct GopView<'a> {
    /// Position of this GOP within the video.
    pub index: usize,
    /// Index of the first frame within the video's frame array.
    pub first_frame: usize,
    frames: &'a [Frame],
}

impl<'a> GopView<'a> {
    pub(crate) fn new(index: usize, first_frame: usize, frames: &'a [Frame]) -> Self {
        debug_assert!(!frames.is_empty(), "empty gop");
        GopView {
            index,
            first_frame,
            frames,
        }
    }

    /// The frames of this GOP, in presentation order.
    pub fn frames(&self) -> &'a [Frame] {
        self.frames
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Presentation timestamp of the first frame.
    pub fn start_pts(&self) -> MediaTicks {
        self.frames[0].pts
    }

    /// Total display duration.
    pub fn duration(&self) -> MediaTicks {
        let last = self.frames.last().expect("gop has frames");
        last.end_pts() - self.frames[0].pts
    }

    /// Total coded bytes.
    pub fn bytes(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.bytes)).sum()
    }

    /// Size of this GOP's I-frame — the cost of re-intra-coding a frame of
    /// this GOP during duration-based splicing.
    pub fn i_frame_bytes(&self) -> u32 {
        self.frames[0].bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;

    fn frame(kind: FrameType, bytes: u32, pts: u64) -> Frame {
        Frame {
            kind,
            bytes,
            pts: MediaTicks::from_ticks(pts),
            duration: MediaTicks::from_ticks(3000),
        }
    }

    #[test]
    fn gop_accessors() {
        let frames = vec![
            frame(FrameType::I, 1000, 0),
            frame(FrameType::B, 50, 3000),
            frame(FrameType::P, 200, 6000),
        ];
        let gop = GopView::new(2, 10, &frames);
        assert_eq!(gop.index, 2);
        assert_eq!(gop.first_frame, 10);
        assert_eq!(gop.frame_count(), 3);
        assert_eq!(gop.bytes(), 1250);
        assert_eq!(gop.i_frame_bytes(), 1000);
        assert_eq!(gop.start_pts(), MediaTicks::ZERO);
        assert_eq!(gop.duration(), MediaTicks::from_ticks(9000));
    }
}
