//! Segments: the units a spliced video is transferred in.

use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::error::MediaError;
use crate::frame::MediaTicks;
use crate::video::Video;

/// One spliced segment of a video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Position in the segment list.
    pub index: u32,
    /// Index of the first frame this segment carries.
    pub first_frame: u32,
    /// Number of frames carried.
    pub frame_count: u32,
    /// Presentation timestamp of the first frame.
    pub start_pts: MediaTicks,
    /// Total display duration.
    pub duration: MediaTicks,
    /// Bytes that must be transferred for this segment, **including**
    /// splicing overhead.
    pub bytes: u64,
    /// Extra bytes the splicer added (re-intra-coding the first frame when
    /// a cut lands mid-GOP). Zero for GOP-based splicing.
    pub overhead_bytes: u64,
}

impl Segment {
    /// The timestamp just after this segment's last frame.
    pub fn end_pts(&self) -> MediaTicks {
        self.start_pts + self.duration
    }

    /// Bytes of original media (excluding splicing overhead).
    pub fn media_bytes(&self) -> u64 {
        self.bytes - self.overhead_bytes
    }
}

/// The complete splice of a video: an ordered list of segments that tile
/// the video's frames.
///
/// # Examples
///
/// ```
/// use splicecast_media::{DurationSplicer, Splicer, Video};
///
/// let video = Video::builder().duration_secs(20.0).seed(3).build();
/// let segments = DurationSplicer::new(4.0).splice(&video);
/// assert_eq!(segments.len(), 5);
/// segments.validate(&video).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentList {
    segments: Vec<Segment>,
}

impl SegmentList {
    /// Wraps a list of segments. Use [`SegmentList::validate`] to check it
    /// against the video it was cut from.
    pub fn new(segments: Vec<Segment>) -> Self {
        SegmentList { segments }
    }

    /// The segments in playback order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segment at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Segment> {
        self.segments.get(index)
    }

    /// Iterates over the segments.
    pub fn iter(&self) -> std::slice::Iter<'_, Segment> {
        self.segments.iter()
    }

    /// Total transfer bytes (media + overhead).
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Total splicing overhead bytes.
    pub fn total_overhead_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.overhead_bytes).sum()
    }

    /// Overhead as a fraction of the original media bytes.
    pub fn overhead_ratio(&self) -> f64 {
        let media: u64 = self.segments.iter().map(|s| s.media_bytes()).sum();
        if media == 0 {
            0.0
        } else {
            self.total_overhead_bytes() as f64 / media as f64
        }
    }

    /// Total display duration.
    pub fn total_duration(&self) -> MediaTicks {
        match (self.segments.first(), self.segments.last()) {
            (Some(first), Some(last)) => last.end_pts() - first.start_pts,
            _ => MediaTicks::ZERO,
        }
    }

    /// The largest segment, in bytes.
    pub fn max_segment_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// The arithmetic-mean segment size, in bytes.
    pub fn mean_segment_bytes(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.segments.len() as f64
        }
    }

    /// The segment whose playback interval contains `pts`.
    pub fn segment_at(&self, pts: MediaTicks) -> Option<&Segment> {
        let idx = self.segments.partition_point(|s| s.end_pts() <= pts);
        self.segments.get(idx).filter(|s| s.start_pts <= pts)
    }

    /// Checks that the segments exactly tile `video` and that their byte
    /// counts are consistent with the frames they span.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, video: &Video) -> Result<(), MediaError> {
        let frames = video.frames();
        let mut next_frame = 0u32;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.index != i as u32 || seg.first_frame != next_frame || seg.frame_count == 0 {
                return Err(MediaError::SegmentCoverage {
                    frame: next_frame as usize,
                });
            }
            let span =
                &frames[seg.first_frame as usize..(seg.first_frame + seg.frame_count) as usize];
            let media: u64 = span.iter().map(|f| u64::from(f.bytes)).sum();
            if seg.bytes != media + seg.overhead_bytes {
                return Err(MediaError::SegmentBytes { segment: i });
            }
            if seg.start_pts != span[0].pts {
                return Err(MediaError::SegmentCoverage {
                    frame: seg.first_frame as usize,
                });
            }
            next_frame += seg.frame_count;
        }
        if next_frame as usize != frames.len() {
            return Err(MediaError::SegmentCoverage {
                frame: next_frame as usize,
            });
        }
        Ok(())
    }
}

impl Index<usize> for SegmentList {
    type Output = Segment;
    fn index(&self, index: usize) -> &Segment {
        &self.segments[index]
    }
}

impl<'a> IntoIterator for &'a SegmentList {
    type Item = &'a Segment;
    type IntoIter = std::slice::Iter<'a, Segment>;
    fn into_iter(self) -> Self::IntoIter {
        self.segments.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splicer::{GopSplicer, Splicer};

    fn video() -> Video {
        Video::builder().duration_secs(30.0).seed(9).build()
    }

    #[test]
    fn list_statistics() {
        let v = video();
        let list = GopSplicer.splice(&v);
        assert_eq!(list.total_bytes(), v.total_bytes());
        assert_eq!(list.total_overhead_bytes(), 0);
        assert_eq!(list.overhead_ratio(), 0.0);
        assert_eq!(list.total_duration(), v.duration());
        assert!(list.max_segment_bytes() >= list.mean_segment_bytes() as u64);
        assert!(!list.is_empty());
        assert_eq!(list.len(), v.gop_count());
    }

    #[test]
    fn segment_at_finds_the_right_segment() {
        let v = video();
        let list = GopSplicer.splice(&v);
        for seg in &list {
            let mid = MediaTicks::from_ticks((seg.start_pts.ticks() + seg.end_pts().ticks()) / 2);
            assert_eq!(list.segment_at(mid).unwrap().index, seg.index);
            assert_eq!(list.segment_at(seg.start_pts).unwrap().index, seg.index);
        }
        assert!(list.segment_at(v.duration()).is_none());
    }

    #[test]
    fn validate_rejects_tampered_lists() {
        let v = video();
        let list = GopSplicer.splice(&v);

        let mut wrong_bytes = list.clone();
        wrong_bytes.segments[0].bytes += 1;
        assert_eq!(
            wrong_bytes.validate(&v).unwrap_err(),
            MediaError::SegmentBytes { segment: 0 }
        );

        let mut gap = list.clone();
        gap.segments.remove(1);
        assert!(matches!(
            gap.validate(&v).unwrap_err(),
            MediaError::SegmentCoverage { .. }
        ));

        let mut truncated = list.clone();
        truncated.segments.pop();
        assert!(matches!(
            truncated.validate(&v).unwrap_err(),
            MediaError::SegmentCoverage { .. }
        ));
    }

    #[test]
    fn indexing_and_iteration() {
        let v = video();
        let list = GopSplicer.splice(&v);
        assert_eq!(list[0].index, 0);
        let count = list.iter().count();
        assert_eq!(count, list.len());
    }
}
