//! Splicers: the paper's §II, cutting a video into transferable segments.

use crate::frame::{FrameType, MediaTicks};
use crate::segment::{Segment, SegmentList};
use crate::video::Video;

/// A strategy for cutting a video into segments.
///
/// Implementations must produce segments that exactly tile the video's
/// frames (checked by [`SegmentList::validate`]).
pub trait Splicer {
    /// Cuts `video` into segments.
    fn splice(&self, video: &Video) -> SegmentList;

    /// A short human-readable name for reports ("gop", "4s", ...).
    fn name(&self) -> String;
}

/// GOP-based splicing: every closed GOP becomes one segment.
///
/// Zero byte overhead, but segment sizes inherit the full variability of
/// the content — a static scene yields one enormous segment, rapid action
/// yields confetti (§II-A).
///
/// # Examples
///
/// ```
/// use splicecast_media::{GopSplicer, Splicer, Video};
///
/// let video = Video::builder().duration_secs(10.0).seed(1).build();
/// let segments = GopSplicer.splice(&video);
/// assert_eq!(segments.len(), video.gop_count());
/// assert_eq!(segments.total_overhead_bytes(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GopSplicer;

impl Splicer for GopSplicer {
    fn splice(&self, video: &Video) -> SegmentList {
        let segments = video
            .gops()
            .map(|gop| Segment {
                index: gop.index as u32,
                first_frame: gop.first_frame as u32,
                frame_count: gop.frame_count() as u32,
                start_pts: gop.start_pts(),
                duration: gop.duration(),
                bytes: gop.bytes(),
                overhead_bytes: 0,
            })
            .collect();
        SegmentList::new(segments)
    }

    fn name(&self) -> String {
        "gop".to_owned()
    }
}

/// Duration-based splicing: frame-accurate cuts every `target_secs`
/// seconds.
///
/// When a cut lands mid-GOP the segment's first frame must be re-coded as
/// an I-frame so the segment stays independently decodable; the byte
/// overhead of that conversion is the size difference between the
/// containing GOP's I-frame and the original P/B frame (§II-B).
///
/// # Examples
///
/// ```
/// use splicecast_media::{DurationSplicer, Splicer, Video};
///
/// let video = Video::builder().duration_secs(60.0).seed(1).build();
/// let two = DurationSplicer::new(2.0).splice(&video);
/// let eight = DurationSplicer::new(8.0).splice(&video);
/// // Shorter segments mean more inserted I-frames, so more overhead.
/// assert!(two.total_overhead_bytes() > eight.total_overhead_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationSplicer {
    target_secs: f64,
}

impl DurationSplicer {
    /// Creates a splicer with the given target segment duration.
    ///
    /// # Panics
    ///
    /// Panics unless `target_secs` is positive and finite.
    pub fn new(target_secs: f64) -> Self {
        assert!(
            target_secs.is_finite() && target_secs > 0.0,
            "segment duration must be positive, got {target_secs}"
        );
        DurationSplicer { target_secs }
    }

    /// The target segment duration in seconds.
    pub fn target_secs(&self) -> f64 {
        self.target_secs
    }
}

impl Splicer for DurationSplicer {
    fn splice(&self, video: &Video) -> SegmentList {
        let frames = video.frames();
        let target = MediaTicks::from_secs_f64(self.target_secs);
        let base_pts = frames[0].pts;
        let mut cuts: Vec<usize> = vec![0];
        let mut boundary = base_pts + target;
        for (i, frame) in frames.iter().enumerate().skip(1) {
            if frame.pts >= boundary {
                cuts.push(i);
                while frame.pts >= boundary {
                    boundary += target;
                }
            }
        }
        cuts.push(frames.len());
        SegmentList::new(build_segments(video, &cuts))
    }

    fn name(&self) -> String {
        format_secs(self.target_secs)
    }
}

/// Fixed-byte splicing: cut as soon as a segment reaches `target_bytes`.
///
/// This is how PPLive slices videos (fixed ~20 MB blocks, see the paper's
/// related work). Cuts are frame-accurate, so mid-GOP cuts pay the same
/// I-frame conversion overhead as duration-based splicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteSplicer {
    target_bytes: u64,
}

impl ByteSplicer {
    /// Creates a splicer with the given target segment size.
    ///
    /// # Panics
    ///
    /// Panics if `target_bytes` is zero.
    pub fn new(target_bytes: u64) -> Self {
        assert!(target_bytes > 0, "segment size must be positive");
        ByteSplicer { target_bytes }
    }

    /// The target segment size in bytes.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }
}

impl Splicer for ByteSplicer {
    fn splice(&self, video: &Video) -> SegmentList {
        let frames = video.frames();
        let mut cuts: Vec<usize> = vec![0];
        let mut acc: u64 = 0;
        for (i, frame) in frames.iter().enumerate() {
            if acc >= self.target_bytes {
                cuts.push(i);
                acc = 0;
            }
            acc += u64::from(frame.bytes);
        }
        cuts.push(frames.len());
        SegmentList::new(build_segments(video, &cuts))
    }

    fn name(&self) -> String {
        format!("{}B", self.target_bytes)
    }
}

/// Ramped splicing: segment durations grow geometrically from
/// `initial_secs` up to `max_secs`.
///
/// This implements the "adaptive splicing technique" the paper leaves as
/// future work (§VIII: "We did not propose an algorithm to determine the
/// optimal segment size"): Fig. 4 shows small segments start fastest while
/// Figs. 2–3 show medium-to-large segments stream most efficiently — so
/// cut the head of the video small and grow toward the efficient size,
/// the way low-latency DASH deployments ramp their segment ladder.
///
/// # Examples
///
/// ```
/// use splicecast_media::{RampSplicer, Splicer, Video};
///
/// let video = Video::builder().duration_secs(60.0).seed(1).build();
/// let ramp = RampSplicer::new(1.0, 8.0, 1.5).splice(&video);
/// // First segment is short, later segments reach the cap.
/// assert!(ramp[0].duration.as_secs_f64() <= 1.1);
/// assert!(ramp.segments().iter().any(|s| s.duration.as_secs_f64() > 7.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampSplicer {
    initial_secs: f64,
    max_secs: f64,
    growth: f64,
}

impl RampSplicer {
    /// Creates a ramp from `initial_secs` to `max_secs`, multiplying the
    /// target duration by `growth` per segment.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < initial_secs <= max_secs` and `growth >= 1`.
    pub fn new(initial_secs: f64, max_secs: f64, growth: f64) -> Self {
        assert!(
            initial_secs.is_finite() && initial_secs > 0.0 && initial_secs <= max_secs,
            "bad ramp range [{initial_secs}, {max_secs}]"
        );
        assert!(
            growth.is_finite() && growth >= 1.0,
            "growth must be at least 1, got {growth}"
        );
        RampSplicer {
            initial_secs,
            max_secs,
            growth,
        }
    }

    /// The first segment's target duration.
    pub fn initial_secs(&self) -> f64 {
        self.initial_secs
    }

    /// The steady-state target duration.
    pub fn max_secs(&self) -> f64 {
        self.max_secs
    }
}

impl Splicer for RampSplicer {
    fn splice(&self, video: &Video) -> SegmentList {
        let frames = video.frames();
        let base_pts = frames[0].pts;
        let mut cuts: Vec<usize> = vec![0];
        let mut target = self.initial_secs;
        let mut boundary = base_pts + MediaTicks::from_secs_f64(target);
        for (i, frame) in frames.iter().enumerate().skip(1) {
            if frame.pts >= boundary {
                cuts.push(i);
                target = (target * self.growth).min(self.max_secs);
                while frame.pts >= boundary {
                    boundary += MediaTicks::from_secs_f64(target);
                }
            }
        }
        cuts.push(frames.len());
        SegmentList::new(build_segments(video, &cuts))
    }

    fn name(&self) -> String {
        format!(
            "ramp({}→{}s)",
            format_secs_bare(self.initial_secs),
            format_secs_bare(self.max_secs)
        )
    }
}

fn format_secs_bare(secs: f64) -> String {
    if (secs - secs.round()).abs() < 1e-9 {
        format!("{}", secs.round() as u64)
    } else {
        format!("{secs}")
    }
}

/// Builds segments from cut points (`cuts[0] == 0`,
/// `cuts.last() == frames.len()`), charging I-frame conversion overhead
/// for every segment that starts mid-GOP.
fn build_segments(video: &Video, cuts: &[usize]) -> Vec<Segment> {
    let frames = video.frames();
    let gop_starts = video.gop_starts();
    let mut segments = Vec::with_capacity(cuts.len() - 1);
    for (index, window) in cuts.windows(2).enumerate() {
        let (start, end) = (window[0], window[1]);
        let span = &frames[start..end];
        let media: u64 = span.iter().map(|f| u64::from(f.bytes)).sum();
        let first = &span[0];
        let overhead = if first.kind == FrameType::I {
            0
        } else {
            // The cut landed mid-GOP: the first frame is re-coded as an
            // I-frame sized like the containing GOP's own I-frame.
            let gop_idx = gop_starts.partition_point(|&s| (s as usize) <= start) - 1;
            let gop = video.gop(gop_idx);
            u64::from(gop.i_frame_bytes().saturating_sub(first.bytes))
        };
        let last = span.last().expect("non-empty segment span");
        segments.push(Segment {
            index: index as u32,
            first_frame: start as u32,
            frame_count: (end - start) as u32,
            start_pts: first.pts,
            duration: last.end_pts() - first.pts,
            bytes: media + overhead,
            overhead_bytes: overhead,
        });
    }
    segments
}

fn format_secs(secs: f64) -> String {
    if (secs - secs.round()).abs() < 1e-9 {
        format!("{}s", secs.round() as u64)
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;

    fn video() -> Video {
        Video::builder().duration_secs(60.0).seed(21).build()
    }

    #[test]
    fn gop_splice_is_overhead_free_and_tiles() {
        let v = video();
        let list = GopSplicer.splice(&v);
        list.validate(&v).unwrap();
        assert_eq!(list.total_overhead_bytes(), 0);
        assert_eq!(list.total_bytes(), v.total_bytes());
        assert_eq!(GopSplicer.name(), "gop");
    }

    #[test]
    fn duration_splice_tiles_and_hits_target_durations() {
        let v = video();
        for target in [1.0, 2.0, 4.0, 8.0] {
            let list = DurationSplicer::new(target).splice(&v);
            list.validate(&v).unwrap();
            // All but the last segment are within a frame of the target.
            let frame = 1.0 / f64::from(v.fps());
            for seg in &list.segments()[..list.len() - 1] {
                let d = seg.duration.as_secs_f64();
                assert!(
                    (d - target).abs() <= frame + 1e-9,
                    "target {target}: segment {} lasts {d}",
                    seg.index
                );
            }
        }
    }

    #[test]
    fn duration_splice_counts_match_division() {
        let v = video();
        let list = DurationSplicer::new(4.0).splice(&v);
        assert_eq!(list.len(), 15); // 60s / 4s
        assert_eq!(DurationSplicer::new(4.0).name(), "4s");
        assert_eq!(DurationSplicer::new(0.5).name(), "0.5s");
    }

    #[test]
    fn duration_splice_pays_overhead_where_cuts_land_mid_gop() {
        let v = video();
        let list = DurationSplicer::new(2.0).splice(&v);
        assert!(
            list.total_overhead_bytes() > 0,
            "mixed content should force conversions"
        );
        // Overhead only on segments that do not start with an I-frame.
        for seg in &list {
            let first = &v.frames()[seg.first_frame as usize];
            if first.kind == FrameType::I {
                assert_eq!(seg.overhead_bytes, 0, "segment {}", seg.index);
            }
        }
    }

    #[test]
    fn overhead_shrinks_with_segment_duration() {
        let v = video();
        let r2 = DurationSplicer::new(2.0).splice(&v).overhead_ratio();
        let r4 = DurationSplicer::new(4.0).splice(&v).overhead_ratio();
        let r8 = DurationSplicer::new(8.0).splice(&v).overhead_ratio();
        assert!(r2 > r4 && r4 > r8, "ratios {r2} {r4} {r8}");
        assert!(r2 < 0.5, "2s overhead ratio {r2} is implausibly high");
    }

    #[test]
    fn gop_aligned_duration_splice_has_zero_overhead() {
        // With a uniform 2 s GOP structure, 2 s duration cuts land exactly
        // on GOP boundaries: duration splicing degenerates to GOP splicing.
        let v = Video::builder()
            .duration_secs(20.0)
            .profile(ContentProfile::Uniform { gop_secs: 2.0 })
            .build();
        let list = DurationSplicer::new(2.0).splice(&v);
        list.validate(&v).unwrap();
        assert_eq!(list.total_overhead_bytes(), 0);
        assert_eq!(list.len(), v.gop_count());
    }

    #[test]
    fn gop_splice_sizes_vary_more_than_duration_splice() {
        let v = video();
        let gop = GopSplicer.splice(&v);
        let dur = DurationSplicer::new(2.0).splice(&v);
        let spread = |l: &SegmentList| {
            let max = l.max_segment_bytes() as f64;
            max / l.mean_segment_bytes()
        };
        assert!(
            spread(&gop) > spread(&dur),
            "gop spread {} should exceed duration spread {}",
            spread(&gop),
            spread(&dur)
        );
    }

    #[test]
    fn byte_splicer_tiles_and_bounds_sizes() {
        let v = video();
        let target = 100_000;
        let list = ByteSplicer::new(target).splice(&v);
        list.validate(&v).unwrap();
        assert_eq!(ByteSplicer::new(target).name(), "100000B");
        // Segments exceed the target by at most one frame plus conversion
        // overhead; sanity-bound at 2x.
        for seg in &list.segments()[..list.len() - 1] {
            assert!(
                seg.bytes < 2 * target,
                "segment {} is {} bytes",
                seg.index,
                seg.bytes
            );
        }
    }

    #[test]
    fn ramp_splicer_tiles_and_ramps() {
        let v = video();
        let ramp = RampSplicer::new(1.0, 8.0, 1.5);
        let list = ramp.splice(&v);
        list.validate(&v).unwrap();
        assert_eq!(ramp.name(), "ramp(1→8s)");
        let frame = 1.0 / f64::from(v.fps());
        // Durations are non-decreasing (within a frame) and bounded.
        let durs: Vec<f64> = list.segments()[..list.len() - 1]
            .iter()
            .map(|s| s.duration.as_secs_f64())
            .collect();
        for pair in durs.windows(2) {
            assert!(pair[1] >= pair[0] - frame - 1e-9, "{durs:?}");
        }
        assert!(durs[0] <= 1.0 + frame + 1e-9);
        assert!(durs.iter().all(|&d| d <= 8.0 + frame + 1e-9));
        // Growth of exactly 1 degenerates to duration splicing.
        let flat = RampSplicer::new(4.0, 4.0, 1.0).splice(&v);
        assert_eq!(flat, DurationSplicer::new(4.0).splice(&v));
    }

    #[test]
    #[should_panic(expected = "growth must be at least 1")]
    fn shrinking_ramp_panics() {
        let _ = RampSplicer::new(2.0, 8.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "bad ramp range")]
    fn inverted_ramp_panics() {
        let _ = RampSplicer::new(8.0, 2.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_duration_panics() {
        let _ = DurationSplicer::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bytes_panics() {
        let _ = ByteSplicer::new(0);
    }
}
