//! Error types for the media model.

use std::error::Error;
use std::fmt;

/// Errors surfaced by video construction, validation, and manifest parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MediaError {
    /// A video must contain at least one frame.
    EmptyVideo,
    /// Frame presentation timestamps must be strictly increasing.
    NonMonotonicPts {
        /// Index of the offending frame.
        frame: usize,
    },
    /// A (closed) GOP must begin with an I-frame.
    GopMissingIFrame {
        /// Index of the offending GOP.
        gop: usize,
    },
    /// An I-frame appeared in the middle of a GOP.
    StrayIFrame {
        /// Index of the offending frame.
        frame: usize,
    },
    /// Segments must partition the video's frames without gaps or overlap.
    SegmentCoverage {
        /// First frame index not covered correctly.
        frame: usize,
    },
    /// A segment byte count disagrees with the frames it spans.
    SegmentBytes {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A manifest could not be parsed.
    ParseManifest(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::EmptyVideo => write!(f, "video contains no frames"),
            MediaError::NonMonotonicPts { frame } => {
                write!(
                    f,
                    "frame {frame} does not advance the presentation timestamp"
                )
            }
            MediaError::GopMissingIFrame { gop } => {
                write!(f, "gop {gop} does not begin with an I-frame")
            }
            MediaError::StrayIFrame { frame } => {
                write!(f, "frame {frame} is an I-frame in the middle of a gop")
            }
            MediaError::SegmentCoverage { frame } => {
                write!(f, "segments do not cover frame {frame} exactly once")
            }
            MediaError::SegmentBytes { segment } => {
                write!(f, "segment {segment} byte count disagrees with its frames")
            }
            MediaError::ParseManifest(msg) => write!(f, "invalid manifest: {msg}"),
        }
    }
}

impl Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MediaError::EmptyVideo.to_string(),
            "video contains no frames"
        );
        assert_eq!(
            MediaError::GopMissingIFrame { gop: 3 }.to_string(),
            "gop 3 does not begin with an I-frame"
        );
        assert_eq!(
            MediaError::ParseManifest("bad header".into()).to_string(),
            "invalid manifest: bad header"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MediaError>();
    }
}
