//! Frames and the MPEG 90 kHz media clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Ticks of the MPEG system clock: 90 000 per second.
pub const TICKS_PER_SEC: u64 = 90_000;

/// A point on (or span of) the media timeline, in 90 kHz ticks.
///
/// MPEG transport uses a 90 kHz clock for presentation timestamps; keeping
/// the same unit makes frame timing exact for all common frame rates.
///
/// # Examples
///
/// ```
/// use splicecast_media::MediaTicks;
///
/// let one_frame = MediaTicks::from_secs_f64(1.0 / 30.0);
/// assert_eq!(one_frame.ticks(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MediaTicks(u64);

impl MediaTicks {
    /// The zero point / empty span.
    pub const ZERO: MediaTicks = MediaTicks(0);

    /// Constructs from raw 90 kHz ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        MediaTicks(ticks)
    }

    /// Constructs from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid media time: {secs}"
        );
        MediaTicks((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Value in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True for the zero value.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: MediaTicks) -> MediaTicks {
        MediaTicks(self.0.saturating_sub(rhs.0))
    }
}

impl Add for MediaTicks {
    type Output = MediaTicks;
    fn add(self, rhs: MediaTicks) -> MediaTicks {
        MediaTicks(self.0 + rhs.0)
    }
}

impl AddAssign for MediaTicks {
    fn add_assign(&mut self, rhs: MediaTicks) {
        self.0 += rhs.0;
    }
}

impl Sub for MediaTicks {
    type Output = MediaTicks;
    /// # Panics
    ///
    /// Panics on underflow; use [`MediaTicks::saturating_sub`] when the
    /// operands may be unordered.
    fn sub(self, rhs: MediaTicks) -> MediaTicks {
        MediaTicks(self.0.checked_sub(rhs.0).expect("MediaTicks underflow"))
    }
}

impl fmt::Display for MediaTicks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// The coding type of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded: decodable on its own. Starts every closed GOP and is by
    /// far the largest frame type.
    I,
    /// Predicted from previous reference frames.
    P,
    /// Bi-directionally predicted; the smallest frame type.
    B,
}

impl FrameType {
    /// True for I-frames.
    pub const fn is_intra(self) -> bool {
        matches!(self, FrameType::I)
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameType::I => write!(f, "I"),
            FrameType::P => write!(f, "P"),
            FrameType::B => write!(f, "B"),
        }
    }
}

/// One coded video frame: its type, its coded size, and its place on the
/// media timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Coding type.
    pub kind: FrameType,
    /// Coded size in bytes.
    pub bytes: u32,
    /// Presentation timestamp.
    pub pts: MediaTicks,
    /// Display duration (1/fps for constant-rate video).
    pub duration: MediaTicks,
}

impl Frame {
    /// The timestamp just after this frame finishes displaying.
    pub fn end_pts(&self) -> MediaTicks {
        self.pts + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_round_trip() {
        let t = MediaTicks::from_secs_f64(2.5);
        assert_eq!(t.ticks(), 225_000);
        assert_eq!(t.as_secs_f64(), 2.5);
        assert_eq!(t.to_string(), "2.500s");
    }

    #[test]
    fn exact_frame_durations_for_common_rates() {
        for fps in [24u64, 25, 30, 60] {
            assert_eq!(TICKS_PER_SEC % fps, 0, "{fps} fps is not exact at 90kHz");
        }
    }

    #[test]
    fn arithmetic() {
        let a = MediaTicks::from_ticks(100);
        let b = MediaTicks::from_ticks(40);
        assert_eq!(a + b, MediaTicks::from_ticks(140));
        assert_eq!(a - b, MediaTicks::from_ticks(60));
        assert_eq!(b.saturating_sub(a), MediaTicks::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = MediaTicks::from_ticks(1) - MediaTicks::from_ticks(2);
    }

    #[test]
    fn frame_end_pts() {
        let f = Frame {
            kind: FrameType::P,
            bytes: 1000,
            pts: MediaTicks::from_ticks(3000),
            duration: MediaTicks::from_ticks(3000),
        };
        assert_eq!(f.end_pts(), MediaTicks::from_ticks(6000));
        assert!(!f.kind.is_intra());
        assert!(FrameType::I.is_intra());
    }

    #[test]
    fn frame_type_display() {
        assert_eq!(FrameType::I.to_string(), "I");
        assert_eq!(FrameType::P.to_string(), "P");
        assert_eq!(FrameType::B.to_string(), "B");
    }
}
