//! §IV ablation: hybrid-CDN segment sizing.
//!
//! When a CDN serves the stream, peers download one segment at a time, so
//! a segment must fit within `B·T` bytes (Eq. 1 with k = 1) or the buffer
//! drains before it lands. This harness streams from a CDN only (no P2P
//! exchange) while sweeping the segment duration, and marks the §IV bound.

use splicecast_bench::{apply_scale, banner, paper_config, SEEDS};
use splicecast_core::{max_cdn_segment_secs, sweep, CdnConfig, SplicingSpec, SweepPoint, Table};

fn main() {
    banner("§IV ablation", "CDN-served streaming vs segment duration");

    let bandwidths = [("128 kB/s", 128_000.0), ("256 kB/s", 256_000.0)];
    let durations = [1.0, 2.0, 4.0, 8.0, 16.0];
    let cdn = CdnConfig {
        bandwidth_bytes_per_sec: 8_000_000.0, // a fat edge cache
        one_way_latency_secs: 0.1,
        upload_slots: 64,
    };

    let mut points = Vec::new();
    for (_, bandwidth) in bandwidths {
        for d in durations {
            let mut config =
                apply_scale(paper_config(bandwidth).with_splicing(SplicingSpec::Duration(d)));
            config.swarm.cdn = Some(cdn);
            config.swarm.p2p = false; // §IV: the CDN serves the video
            points.push(SweepPoint {
                label: format!("{d}s@{bandwidth}"),
                config,
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<String> = durations.iter().map(|d| format!("{d}s")).collect();
    let series_refs: Vec<&str> = series.iter().map(String::as_str).collect();
    let mut stalls = Table::new(
        "Total number of stalls, CDN-only delivery (mean per viewer)",
        "bandwidth",
        &series_refs,
    );
    let mut iter = results.iter();
    for (label, _) in bandwidths {
        let row: Vec<f64> = durations
            .iter()
            .map(|_| iter.next().expect("sweep result").1.stalls.mean)
            .collect();
        stalls.push_row(label, &row);
    }
    println!("{stalls}");

    println!("§IV bound: with T = one segment duration buffered, the largest");
    println!("sustainable segment duration d satisfies d ≤ 8·B·T/bitrate:");
    for (label, bandwidth) in bandwidths {
        let bound = max_cdn_segment_secs(bandwidth, 4.0, 1_000_000.0);
        println!("  at {label}, T = 4 s: d_max = {bound:.1} s");
    }
    println!("\ncsv:\n{}", stalls.to_csv());
}
