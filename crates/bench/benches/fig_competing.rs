//! §VIII ablation: competing flows.
//!
//! "We also should experiment how the splicing works in case of competing
//! flows and high congestion environment." A background bulk server keeps
//! long-lived downloads running toward every viewer, so the stream shares
//! each access link with unrelated traffic.

use splicecast_bench::{apply_scale, banner, paper_config, splicing_variants, SEEDS};
use splicecast_core::swarm::CrossTrafficConfig;
use splicecast_core::{sweep, SweepPoint, Table};

fn main() {
    banner(
        "§VIII ablation",
        "splicing under competing flows at 256 kB/s",
    );

    let bandwidth = 256_000.0;
    let loads = [("no load", 0usize), ("1 flow/peer", 1), ("2 flows/peer", 2)];
    let variants = splicing_variants();

    let mut points = Vec::new();
    for (_, flows) in loads {
        for (name, splicing) in &variants {
            let mut config = apply_scale(paper_config(bandwidth).with_splicing(*splicing));
            if flows > 0 {
                config.swarm.cross_traffic = Some(CrossTrafficConfig {
                    flows_per_peer: flows,
                    ..CrossTrafficConfig::default()
                });
            }
            points.push(SweepPoint {
                label: format!("{name}@{flows}"),
                config,
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new(
        "Stalls per viewer under background load",
        "cross traffic",
        &series,
    );
    let mut duration = Table::new("Total stall duration, seconds", "cross traffic", &series);
    let mut iter = results.iter();
    for (label, _) in loads {
        let mut s_row = Vec::new();
        let mut d_row = Vec::new();
        for _ in &variants {
            let metrics = &iter.next().expect("sweep result").1;
            s_row.push(metrics.stalls.mean);
            d_row.push(metrics.stall_secs.mean);
        }
        stalls.push_row(label, &s_row);
        duration.push_row(label, &d_row);
    }
    println!("{stalls}");
    println!("{duration}");
    println!("reading: congestion from competing flows should raise every");
    println!("column while preserving the splicing ordering (gop worst).");
}
