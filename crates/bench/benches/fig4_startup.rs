//! Figure 4: startup time vs available bandwidth for 2/4/8-second
//! segments.
//!
//! This is the one experiment the paper runs with the seeder 500 ms away
//! ("each peer contacts the seeder... latency between seeder and peer is
//! 500 milliseconds"). Paper shape: startup falls with bandwidth; larger
//! segments start much slower, dramatically so on a thin link.

use splicecast_bench::{apply_scale, banner, paper_config, FIG4_BANDWIDTHS, SEEDS};
use splicecast_core::{sweep, SplicingSpec, SweepPoint, Table};

fn main() {
    banner("Figure 4", "startup time for different bandwidths");

    let variants = [
        ("2s", SplicingSpec::Duration(2.0)),
        ("4s", SplicingSpec::Duration(4.0)),
        ("8s", SplicingSpec::Duration(8.0)),
    ];
    let mut points = Vec::new();
    for (_, bandwidth) in FIG4_BANDWIDTHS {
        for (name, splicing) in &variants {
            let mut config = apply_scale(paper_config(bandwidth).with_splicing(*splicing));
            config.swarm.seeder_one_way_latency_secs = 0.5; // the paper's fig-4 setup
            points.push(SweepPoint {
                label: format!("{name}@{bandwidth}"),
                config,
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut table = Table::new(
        "Startup time, seconds (mean per viewer)",
        "bandwidth",
        &series,
    );
    let mut iter = results.iter();
    for (label, _) in FIG4_BANDWIDTHS {
        let row: Vec<f64> = variants
            .iter()
            .map(|_| iter.next().expect("sweep result").1.startup_secs.mean)
            .collect();
        table.push_row(label, &row);
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
