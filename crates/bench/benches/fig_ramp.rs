//! §VIII ablation: the "adaptive splicing" future work.
//!
//! The paper: "We did not propose an algorithm to determine the optimal
//! segment size. An adaptive splicing technique will be able to increase
//! the performance of P2P video streaming." Fig. 4 shows small segments
//! start fastest; Figs. 2–3 show larger segments stream with fewer stalls.
//! A ramp (1 s → 8 s) should capture both ends.

use splicecast_bench::{apply_scale, banner, paper_config, FIG_BANDWIDTHS, SEEDS};
use splicecast_core::{sweep, SplicingSpec, SweepPoint, Table};

fn main() {
    banner(
        "§VIII ablation",
        "ramped segment durations vs fixed durations",
    );

    let variants = [
        ("2s", SplicingSpec::Duration(2.0)),
        ("8s", SplicingSpec::Duration(8.0)),
        (
            "ramp 1→8s",
            SplicingSpec::Ramp {
                initial: 1.0,
                max: 8.0,
            },
        ),
    ];
    let mut points = Vec::new();
    for (_, bandwidth) in FIG_BANDWIDTHS {
        for (name, splicing) in &variants {
            points.push(SweepPoint {
                label: format!("{name}@{bandwidth}"),
                config: apply_scale(paper_config(bandwidth).with_splicing(*splicing)),
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut startup = Table::new("Startup time, seconds", "bandwidth", &series);
    let mut stalls = Table::new("Stalls per viewer", "bandwidth", &series);
    let mut stall_secs = Table::new("Total stall duration, seconds", "bandwidth", &series);
    let mut iter = results.iter();
    for (label, _) in FIG_BANDWIDTHS {
        let mut su = Vec::new();
        let mut st = Vec::new();
        let mut sd = Vec::new();
        for _ in &variants {
            let metrics = &iter.next().expect("sweep result").1;
            su.push(metrics.startup_secs.mean);
            st.push(metrics.stalls.mean);
            sd.push(metrics.stall_secs.mean);
        }
        startup.push_row(label, &su);
        stalls.push_row(label, &st);
        stall_secs.push_row(label, &sd);
    }
    println!("{startup}");
    println!("{stalls}");
    println!("{stall_secs}");
    println!("reading: the ramp should start nearly as fast as 2s splicing");
    println!("while its steady state approaches 8s splicing's efficiency.");
}
