//! Figure 2: total number of stalls vs available bandwidth, for GOP-based
//! and 2/4/8-second duration-based splicing.
//!
//! Paper shape: GOP splicing stalls most at every bandwidth; 2 s is worse
//! than 4 s at low bandwidth and converges to it as bandwidth grows; 8 s
//! stalls more than 4 s; everything falls as bandwidth rises.

use splicecast_bench::{
    apply_scale, banner, paper_config, splicing_variants, FIG_BANDWIDTHS, SEEDS,
};
use splicecast_core::{sweep, SweepPoint, Table};

fn main() {
    banner(
        "Figure 2",
        "total number of stalls for different bandwidths",
    );

    let variants = splicing_variants();
    let mut points = Vec::new();
    for (_, bandwidth) in FIG_BANDWIDTHS {
        for (name, splicing) in &variants {
            points.push(SweepPoint {
                label: format!("{name}@{bandwidth}"),
                config: apply_scale(paper_config(bandwidth).with_splicing(*splicing)),
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new(
        "Total number of stalls (rounded mean per viewer)",
        "bandwidth",
        &series,
    );
    stalls.precision(0);
    let mut iter = results.iter();
    for (label, _) in FIG_BANDWIDTHS {
        let row: Vec<f64> = variants
            .iter()
            .map(|_| iter.next().expect("sweep result").1.rounded_stalls as f64)
            .collect();
        stalls.push_row(label, &row);
    }
    println!("{stalls}");
    println!("{}", splicecast_core::chart::render(&stalls, 56, 14));
    println!("csv:\n{}", stalls.to_csv());
}
