//! `fig_controlplane`: control-message volume and wall-clock cost of the
//! two swarm control planes at 100 / 250 / 500 leechers.
//!
//! The legacy control plane broadcasts one `Have` per completed segment to
//! every peer and polls a fixed 2 Hz pump per leecher, so a GoP-grained
//! stream (a 2-minute clip cut at 0.5 s) costs O(peers² × segments)
//! dissemination messages per run. The eventful plane coalesces
//! completions into `HaveBundle`s on a 2 s window, suppresses
//! announcements to peers that already hold the segments or unsubscribed,
//! and fires pumps only on armed deadlines. `BENCH_controlplane.json`
//! gates the ratio within one run: at 250 and 500 leechers the eventful
//! plane must send ≥5× fewer dissemination messages and finish ≥2× faster.
//!
//! Unlike the timing benches, each configuration runs exactly once (the
//! simulation is deterministic and minutes-long at 500 leechers); both the
//! wall-clock and the message counters of that run are printed in the
//! standard `bench:` line format so `scripts/bench_compare.py` can parse
//! them. `controlplane/msgs/*` lines carry message counts, not
//! nanoseconds — only their ratios are meaningful.

use std::time::Instant;

use splicecast_media::{DurationSplicer, SegmentList, Splicer, Video};
use splicecast_netsim::FlowModel;
use splicecast_swarm::{run_swarm, ControlPlane, SwarmConfig, SwarmMetrics};

/// Swarm seed (the video content seed is fixed separately).
const SEED: u64 = 5;
/// Have-coalescing window for the eventful plane, seconds. Two windows of
/// the paper's segment pacing: wide enough to fold several GoP-sized
/// completions into one bundle, short enough not to starve neighbours.
const WINDOW_SECS: f64 = 2.0;

fn swarm_config(n_leechers: usize, plane: ControlPlane) -> SwarmConfig {
    SwarmConfig {
        n_leechers,
        // Ample access bandwidth: the regime where data transfer is easy
        // and the control plane is what limits scale.
        peer_bandwidth_bytes_per_sec: 16_000_000.0,
        seeder_bandwidth_bytes_per_sec: 64_000_000.0,
        seeder_upload_slots: 32,
        end_to_end_loss: 0.01,
        max_sim_secs: 900.0,
        flow_model: FlowModel::Fluid,
        control_plane: plane,
        have_coalesce_secs: Some(WINDOW_SECS),
        ..SwarmConfig::default()
    }
}

fn plane_name(plane: ControlPlane) -> &'static str {
    match plane {
        ControlPlane::Legacy => "legacy",
        ControlPlane::Eventful => "eventful",
    }
}

fn run_once(segments: &SegmentList, n_leechers: usize, plane: ControlPlane) -> (f64, SwarmMetrics) {
    let start = Instant::now();
    let metrics = run_swarm(segments, &swarm_config(n_leechers, plane), SEED);
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        metrics.completion_rate(),
        1.0,
        "every {} viewer must finish at n={n_leechers}",
        plane_name(plane)
    );
    (wall_secs, metrics)
}

fn main() {
    // Smoke-test mode (no `--bench` flag, i.e. under `cargo test`): run a
    // tiny swarm through both planes once and print nothing.
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick");
    let (sizes, clip_secs): (&[usize], f64) = if !full || quick {
        (&[10], 24.0)
    } else {
        (&[100, 250, 500], 120.0)
    };

    // The paper's 2-minute clip cut at GoP granularity (0.5 s segments):
    // completions arrive several per window, so coalescing has substance.
    let video = Video::builder().duration_secs(clip_secs).seed(6).build();
    let segments = DurationSplicer::new(0.5).splice(&video);

    for &n in sizes {
        for plane in [ControlPlane::Legacy, ControlPlane::Eventful] {
            let (wall_secs, metrics) = run_once(&segments, n, plane);
            if !full {
                continue;
            }
            let name = plane_name(plane);
            let control = metrics.control_totals();
            let dissemination = control.haves_sent + control.have_bundles_sent;
            let wall_ns = wall_secs * 1e9;
            println!(
                "bench: controlplane/wall/{name}/{n} ... {wall_ns:.1} ns/iter \
                 (min {wall_ns:.1}, max {wall_ns:.1}, samples 1)"
            );
            println!(
                "bench: controlplane/msgs/{name}/{n} ... {dissemination}.0 ns/iter \
                 (min {dissemination}.0, max {dissemination}.0, samples 1)"
            );
            println!(
                "info: controlplane/{name}/{n} total-msgs {} suppressed {} \
                 mean-bundle {:.2} pumps {} stalls {:.2}",
                metrics.net.messages_sent,
                control.haves_suppressed,
                control.mean_bundle_size(),
                control.pumps(),
                metrics.mean_stalls(),
            );
        }
    }
}
