//! Churn ablation (§III's motivation: "peers can leave the swarm
//! anytime... downloading a segment ahead of time increases the chance of
//! the availability of a segment").
//!
//! Sweeps the fraction of peers that churn out mid-stream and compares
//! download policies by the stalls of the peers that stay.

use splicecast_bench::{apply_scale, banner, paper_config, SEEDS};
use splicecast_core::{sweep, ChurnConfig, PolicyConfig, SweepPoint, Table};

fn main() {
    banner(
        "Churn ablation",
        "stalls of staying viewers vs departure rate",
    );

    let bandwidth = 256_000.0;
    let policies = [
        ("adaptive", PolicyConfig::Adaptive),
        ("pool-1", PolicyConfig::Fixed(1)),
        ("pool-4", PolicyConfig::Fixed(4)),
    ];
    let volatile_fractions = [0.0, 0.2, 0.4, 0.6];

    let mut points = Vec::new();
    for fraction in volatile_fractions {
        for (name, policy) in &policies {
            let mut config = apply_scale(paper_config(bandwidth).with_policy(*policy));
            if fraction > 0.0 {
                config.swarm.churn = Some(ChurnConfig::new(fraction, 45.0));
            }
            points.push(SweepPoint {
                label: format!("{name}@{fraction}"),
                config,
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new(
        "Total number of stalls among staying viewers (mean)",
        "volatile fraction",
        &series,
    );
    let mut duration = Table::new(
        "Total stall duration, seconds (mean)",
        "volatile fraction",
        &series,
    );
    let mut iter = results.iter();
    for fraction in volatile_fractions {
        let mut stall_row = Vec::new();
        let mut dur_row = Vec::new();
        for _ in &policies {
            let metrics = &iter.next().expect("sweep result").1;
            stall_row.push(metrics.stalls.mean);
            dur_row.push(metrics.stall_secs.mean);
        }
        stalls.push_row(&format!("{fraction}"), &stall_row);
        duration.push_row(&format!("{fraction}"), &dur_row);
    }
    println!("{stalls}");
    println!("{duration}");
    println!("csv:\n{}", stalls.to_csv());
}
