//! `fig_sched`: wall-clock cost of the two source schedulers at
//! 100 / 250 / 500 leechers.
//!
//! The reference scheduler (`SchedulerMode::Scan`) rebuilds its candidate
//! list from scratch on every scheduling pass: each pass walks every known
//! peer view for every wanted segment, and every pass runs even when
//! nothing changed since the last one — O(peers² × segments) view visits
//! per run. The incremental scheduler (`SchedulerMode::Indexed`, the
//! default) maintains a per-segment holder index updated on
//! `Bitfield`/`Have`/`HaveBundle` arrival and skips passes outright while
//! the previous outcome (exhausted wants, no eligible source) still holds.
//!
//! Both modes produce bit-identical swarm behaviour (same RNG draws, same
//! message sequence — see `indexed_scheduler_matches_scan_bit_for_bit` in
//! the swarm crate), so the wall-clock delta between the two runs is pure
//! scheduling cost. `BENCH_sched.json` gates the ratio: at 250 and 500
//! leechers the indexed run must finish ≥3× faster than the scan run.
//!
//! Everything else is pinned to the cheap/scalable configuration (fluid
//! flow model, eventful control plane) so scheduling is the dominant cost.
//! Each configuration runs exactly once — the simulation is deterministic
//! and the scan runs are minutes-long at 500 leechers — and the wall clock
//! of that run is printed in the standard `bench:` line format for
//! `scripts/bench_compare.py`.

use std::time::Instant;

use splicecast_media::{DurationSplicer, SegmentList, Splicer, Video};
use splicecast_netsim::FlowModel;
use splicecast_swarm::{
    reset_sched_wall, run_swarm, sched_wall_ns, ControlPlane, SchedulerMode, SwarmConfig,
    SwarmMetrics,
};

/// Swarm seed (the video content seed is fixed separately).
const SEED: u64 = 5;
/// Have-coalescing window, seconds (same operating point as
/// `fig_controlplane`).
const WINDOW_SECS: f64 = 2.0;

fn swarm_config(n_leechers: usize, scheduler: SchedulerMode) -> SwarmConfig {
    SwarmConfig {
        n_leechers,
        // Ample access bandwidth: the regime where data transfer is easy
        // and per-pass scheduling work is what limits scale.
        peer_bandwidth_bytes_per_sec: 16_000_000.0,
        seeder_bandwidth_bytes_per_sec: 64_000_000.0,
        seeder_upload_slots: 32,
        end_to_end_loss: 0.01,
        max_sim_secs: 900.0,
        flow_model: FlowModel::Fluid,
        control_plane: ControlPlane::Eventful,
        have_coalesce_secs: Some(WINDOW_SECS),
        scheduler,
        ..SwarmConfig::default()
    }
}

fn mode_name(mode: SchedulerMode) -> &'static str {
    match mode {
        SchedulerMode::Scan => "scan",
        SchedulerMode::Indexed => "indexed",
    }
}

/// Runs one swarm and returns `(scheduling wall ns, whole-run wall secs,
/// metrics)`. The scheduling wall comes from the process-wide probe in the
/// swarm crate, reset before the run.
fn run_once(
    segments: &SegmentList,
    n_leechers: usize,
    mode: SchedulerMode,
) -> (u64, f64, SwarmMetrics) {
    reset_sched_wall();
    let start = Instant::now();
    let metrics = run_swarm(segments, &swarm_config(n_leechers, mode), SEED);
    let run_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        metrics.completion_rate(),
        1.0,
        "every {} viewer must finish at n={n_leechers}",
        mode_name(mode)
    );
    (sched_wall_ns(), run_secs, metrics)
}

fn main() {
    // Smoke-test mode (no `--bench` flag, i.e. under `cargo test`): run a
    // tiny swarm through both schedulers once and print nothing.
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick");
    let (sizes, clip_secs): (&[usize], f64) = if !full || quick {
        (&[10], 24.0)
    } else {
        (&[100, 250, 500], 120.0)
    };

    // The paper's 2-minute clip cut at GoP granularity (0.5 s segments):
    // many segments per peer makes the per-pass want walk substantial.
    let video = Video::builder().duration_secs(clip_secs).seed(6).build();
    let segments = DurationSplicer::new(0.5).splice(&video);

    for &n in sizes {
        for mode in [SchedulerMode::Scan, SchedulerMode::Indexed] {
            let (wall_ns, run_secs, metrics) = run_once(&segments, n, mode);
            if !full {
                continue;
            }
            let name = mode_name(mode);
            println!(
                "bench: sched/wall/{name}/{n} ... {wall_ns}.0 ns/iter \
                 (min {wall_ns}.0, max {wall_ns}.0, samples 1)"
            );
            let sched = metrics.sched_totals();
            println!(
                "info: sched/{name}/{n} run {run_secs:.1}s passes {} skips {} \
                 (full-pool {} no-source {} exhausted {}) holder-adds {} \
                 holder-removes {} stalls {:.2}",
                sched.passes,
                sched.skips,
                sched.full_pool,
                sched.no_source,
                sched.exhausted,
                sched.holder_adds,
                sched.holder_removes,
                metrics.mean_stalls(),
            );
        }
    }
}
