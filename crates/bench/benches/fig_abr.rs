//! §I motivation ablation: bitrate adaptation vs duration-adaptive
//! splicing.
//!
//! The paper's pitch: "Instead of varying the bit-rate, we can vary the
//! segment duration. In this way, we can adapt the segment size to avoid
//! stalls without degrading the video quality." This harness puts the two
//! on the same substrate:
//!
//! - **bitrate adaptation** (the Netflix/Hulu baseline): CDN-served
//!   clients on a 250k/500k/1M ladder with buffer-based and rate-based
//!   selection — few stalls, degraded quality at low bandwidth;
//! - **fixed top quality**: the same clients pinned to 1 Mbps — full
//!   quality, stalls when the link is thin;
//! - **duration-adaptive splicing** (the paper's direction): full-quality
//!   1 Mbps video, but spliced at the duration the §IV bound prescribes
//!   for the available bandwidth, served the same CDN-only way.

use splicecast_bench::{banner, SEEDS};
use splicecast_core::{
    max_cdn_segment_secs, run_abr, run_once, AbrAlgorithm, AbrConfig, CdnConfig, ExperimentConfig,
    Ladder, SplicingSpec, Table, VideoSpec,
};

const BANDWIDTHS: [(&str, f64); 3] = [
    ("96 kB/s", 96_000.0),
    ("160 kB/s", 160_000.0),
    ("256 kB/s", 256_000.0),
];

fn abr_point(bandwidth: f64, algorithm: AbrAlgorithm, ladder: &Ladder) -> (f64, f64, f64) {
    let mut stalls = 0.0;
    let mut stall_secs = 0.0;
    let mut quality = 0.0;
    for &seed in &SEEDS {
        let config = AbrConfig {
            client_bandwidth_bytes_per_sec: bandwidth,
            algorithm,
            ..AbrConfig::default()
        };
        let metrics = run_abr(ladder, &config, seed);
        stalls += metrics.mean_stalls();
        stall_secs += metrics.mean_stall_secs();
        quality += metrics.mean_bitrate_bps();
    }
    let n = SEEDS.len() as f64;
    (stalls / n, stall_secs / n, quality / n / 1e6)
}

fn duration_adaptive_point(bandwidth: f64) -> (f64, f64, f64) {
    // The paper's alternative: keep 1 Mbps quality, pick the segment
    // duration from the §IV bound (T = 4 s of buffer as the design point),
    // stream CDN-only like the ABR baseline.
    let d = max_cdn_segment_secs(bandwidth, 4.0, 1_000_000.0).clamp(1.0, 8.0);
    let mut stalls = 0.0;
    let mut stall_secs = 0.0;
    for &seed in &SEEDS {
        let mut config = ExperimentConfig::paper_baseline()
            .with_bandwidth(bandwidth)
            .with_splicing(SplicingSpec::Duration(d));
        config.video = VideoSpec::default();
        config.swarm.p2p = false;
        config.swarm.cdn = Some(CdnConfig {
            bandwidth_bytes_per_sec: 8_000_000.0,
            one_way_latency_secs: 0.05,
            upload_slots: 64,
        });
        let result = run_once(&config, seed);
        stalls += result.metrics.mean_stalls();
        stall_secs += result.metrics.mean_stall_secs();
    }
    let n = SEEDS.len() as f64;
    (stalls / n, stall_secs / n, 1.0)
}

/// One experiment arm: label plus a closure producing
/// (stalls, stall seconds, delivered quality) at a bandwidth.
type Arm<'a> = (&'a str, Box<dyn Fn(f64) -> (f64, f64, f64) + 'a>);

fn main() {
    banner(
        "§I ablation",
        "bitrate adaptation vs duration-adaptive splicing",
    );

    let ladder = Ladder::builder()
        .duration_secs(120.0)
        .bitrates(&[250_000, 500_000, 1_000_000])
        .segment_secs(4.0)
        .seed(2015)
        .build();

    let arms: Vec<Arm<'_>> = vec![
        (
            "buffer-abr",
            Box::new(|bw| {
                abr_point(
                    bw,
                    AbrAlgorithm::BufferBased {
                        low_secs: 4.0,
                        high_secs: 16.0,
                    },
                    &ladder,
                )
            }),
        ),
        (
            "rate-abr",
            Box::new(|bw| abr_point(bw, AbrAlgorithm::RateBased { safety: 0.8 }, &ladder)),
        ),
        (
            "fixed-1Mbps",
            Box::new(|bw| abr_point(bw, AbrAlgorithm::FixedRendition(2), &ladder)),
        ),
        ("dur-adapt", Box::new(duration_adaptive_point)),
    ];

    let series: Vec<&str> = arms.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new("Stalls per viewer (CDN-served)", "bandwidth", &series);
    let mut stall_secs = Table::new("Total stall duration, seconds", "bandwidth", &series);
    let mut quality = Table::new("Delivered quality, Mbps (1.0 = full)", "bandwidth", &series);
    quality.precision(2);
    for (label, bandwidth) in BANDWIDTHS {
        let mut s_row = Vec::new();
        let mut d_row = Vec::new();
        let mut q_row = Vec::new();
        for (_, arm) in &arms {
            let (s, d, q) = arm(bandwidth);
            s_row.push(s);
            d_row.push(d);
            q_row.push(q);
        }
        stalls.push_row(label, &s_row);
        stall_secs.push_row(label, &d_row);
        quality.push_row(label, &q_row);
    }
    println!("{stalls}");
    println!("{stall_secs}");
    println!("{quality}");
    println!("reading: ABR avoids stalls by dropping quality; duration-adaptive");
    println!("splicing holds quality at 1 Mbps and pays in stall time only when");
    println!("the link cannot carry the bitrate at all.");
    println!("\ncsv:\n{}", stalls.to_csv());
}
