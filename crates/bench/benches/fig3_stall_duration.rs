//! Figure 3: total stall duration vs available bandwidth, for GOP-based
//! and 2/4/8-second duration-based splicing.
//!
//! Paper shape: GOP-based splicing has the longest total stall duration at
//! every bandwidth; duration shrinks as bandwidth grows.

use splicecast_bench::{
    apply_scale, banner, paper_config, splicing_variants, FIG_BANDWIDTHS, SEEDS,
};
use splicecast_core::{sweep, SweepPoint, Table};

fn main() {
    banner("Figure 3", "total stall duration for different bandwidths");

    let variants = splicing_variants();
    let mut points = Vec::new();
    for (_, bandwidth) in FIG_BANDWIDTHS {
        for (name, splicing) in &variants {
            points.push(SweepPoint {
                label: format!("{name}@{bandwidth}"),
                config: apply_scale(paper_config(bandwidth).with_splicing(*splicing)),
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut table = Table::new(
        "Total stall duration, seconds (mean per viewer)",
        "bandwidth",
        &series,
    );
    let mut iter = results.iter();
    for (label, _) in FIG_BANDWIDTHS {
        let row: Vec<f64> = variants
            .iter()
            .map(|_| iter.next().expect("sweep result").1.stall_secs.mean)
            .collect();
        table.push_row(label, &row);
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
