//! `fig_holders`: holder-set representation scaling — one channel at
//! 250 / 1000 / 2000 leechers under the `scale` profile, reporting
//! whole-run wall clock and measured bytes/peer.
//!
//! `BENCH_holders.json` pins the PR 9 baseline (sparse-only holder
//! vectors, one live 40-byte `PeerView` per pair forever) and gates the
//! hybrid sparse/dense holder sets + complete-peer summaries against it:
//! measured bytes/peer at 2000 leechers must be >= 1.5x lower, and wall
//! clock must be no worse (>= 1.0x).

use std::time::Instant;

use splicecast_core::{ExperimentConfig, SplicingSpec, VideoSpec};
use splicecast_media::{DurationSplicer, Splicer};
use splicecast_swarm::{run_swarm, SwarmConfig, SwarmMetrics};

/// Swarm seed (the video content seed is fixed separately).
const SEED: u64 = 5;
/// Splicing interval, seconds: the 120 s clip cut into 60 segments, the
/// same operating point as `fig_bigswarm` so bytes/peer is comparable.
const SPLICE_SECS: f64 = 2.0;

/// The fat-link scale-profile operating point shared with `fig_bigswarm`.
fn scale_config(n_leechers: usize, clip_secs: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline()
        .with_splicing(SplicingSpec::Duration(SPLICE_SECS))
        .with_leechers(n_leechers)
        .with_scale_profile();
    cfg.video = VideoSpec {
        duration_secs: clip_secs,
        ..VideoSpec::default()
    };
    cfg.swarm.peer_bandwidth_bytes_per_sec = 16_000_000.0;
    cfg.swarm.seeder_bandwidth_bytes_per_sec = 64_000_000.0;
    cfg.swarm.seeder_upload_slots = 32;
    cfg.swarm.end_to_end_loss = 0.01;
    cfg.swarm.max_sim_secs = 1800.0;
    cfg
}

/// Runs one channel once; returns `(wall ns, metrics)`.
fn run_single(config: &ExperimentConfig) -> (u128, SwarmMetrics) {
    let video = config.video.build();
    let segments = DurationSplicer::new(SPLICE_SECS).splice(&video);
    let swarm: SwarmConfig = config.swarm.clone();
    let start = Instant::now();
    let metrics = run_swarm(&segments, &swarm, SEED);
    let wall_ns = start.elapsed().as_nanos();
    assert_eq!(
        metrics.completion_rate(),
        1.0,
        "every viewer must finish at n={}",
        swarm.n_leechers
    );
    (wall_ns, metrics)
}

fn main() {
    // Smoke-test mode (no `--bench` flag, i.e. under `cargo test`): tiny
    // size, print nothing. Quick mode runs the smallest real size only.
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick");
    let (sizes, clip_secs): (&[usize], f64) = if !full {
        (&[12], 24.0)
    } else if quick {
        (&[250], 120.0)
    } else {
        (&[250, 1000, 2000], 120.0)
    };

    for &n in sizes {
        let cfg = scale_config(n, clip_secs);
        let (wall_ns, metrics) = run_single(&cfg);
        let current = metrics.mean_mem_bytes_per_peer().round() as u64;
        let prediet = metrics.mean_prediet_bytes_per_peer().round() as u64;
        assert!(current > 0, "memory accounting must be populated");
        if !full {
            continue;
        }
        println!(
            "bench: holders/wall/{n} ... {wall_ns}.0 ns/iter \
             (min {wall_ns}.0, max {wall_ns}.0, samples 1)"
        );
        println!(
            "bench: holders/mem/{n} ... {current}.0 ns/iter \
             (min {current}.0, max {current}.0, samples 1)"
        );
        println!(
            "bench: holders/mem/prediet/{n} ... {prediet}.0 ns/iter \
             (min {prediet}.0, max {prediet}.0, samples 1)"
        );
        let sched = metrics.sched_totals();
        println!(
            "info: holders/{n} run {:.1}s stalls {:.2} bytes/peer {current} \
             (pre-diet {prediet}) messages {} holder sets {} sparse + {} \
             dense ({} promotions), {} peers complete-folded",
            wall_ns as f64 / 1e9,
            metrics.mean_stalls(),
            metrics.net.messages_sent,
            sched.sparse_sets,
            sched.dense_sets,
            sched.dense_promotions,
            sched.complete_peers,
        );
    }
}
