//! Criterion micro-benchmarks of the substrate itself: splicing speed,
//! protocol codec throughput, distribution sampling, and a full small
//! swarm simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use splicecast_core::{run_once, ExperimentConfig, SplicingSpec, VideoSpec};
use splicecast_media::{DurationSplicer, GopSplicer, Splicer, Video};
use splicecast_netsim::{
    star, Ctx, LinkSpec, NodeBehavior, NodeEvent, NodeId, NullBehavior, SimDuration, SimTime,
    Simulator,
};
use splicecast_protocol::{encode_to_bytes, Bitfield, Decoder, Message};

fn bench_splicers(c: &mut Criterion) {
    let video = Video::builder().seed(1).build();
    c.bench_function("splice/gop/2min", |b| {
        b.iter(|| GopSplicer.splice(black_box(&video)))
    });
    c.bench_function("splice/4s/2min", |b| {
        b.iter(|| DurationSplicer::new(4.0).splice(black_box(&video)))
    });
    c.bench_function("encode/2min-video", |b| {
        b.iter(|| Video::builder().seed(black_box(1)).build())
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut held = Bitfield::new(1024);
    for i in (0..1024).step_by(3) {
        held.set(i);
    }
    let messages = vec![
        Message::Handshake {
            peer_id: 7,
            info_hash: [9; 20],
            version: 1,
        },
        Message::Bitfield(held),
        Message::Request { index: 42 },
        Message::SegmentHeader {
            index: 42,
            bytes: 512_000,
        },
        Message::Have { index: 42 },
    ];
    let wire: Vec<u8> = messages
        .iter()
        .flat_map(|m| encode_to_bytes(m).to_vec())
        .collect();
    c.bench_function("codec/encode-5-messages", |b| {
        b.iter(|| {
            for m in &messages {
                black_box(encode_to_bytes(black_box(m)));
            }
        })
    });
    c.bench_function("codec/decode-5-messages", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            dec.feed(black_box(&wire));
            while let Ok(Some(m)) = dec.poll() {
                black_box(m);
            }
        })
    });
}

fn bench_sampling(c: &mut Criterion) {
    c.bench_function("rng/binomial-small-n", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| splicecast_netsim::rng::binomial(&mut rng, black_box(20), black_box(0.05)))
    });
    c.bench_function("rng/binomial-large-n", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| splicecast_netsim::rng::binomial(&mut rng, black_box(10_000), black_box(0.05)))
    });
}

fn bench_swarm(c: &mut Criterion) {
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(512_000.0)
        .with_splicing(SplicingSpec::Duration(4.0))
        .with_leechers(5);
    config.video = VideoSpec {
        duration_secs: 24.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 600.0;
    let mut group = c.benchmark_group("swarm");
    group.sample_size(10);
    group.bench_function("5-peers-24s-video", |b| {
        b.iter(|| run_once(black_box(&config), black_box(1)))
    });
    group.finish();
}

/// A sender that keeps a star busy: transfers `bytes` to `to`, then starts
/// the next transfer as soon as the upload completes, `repeats` times.
struct RepeatSender {
    to: NodeId,
    bytes: u64,
    remaining: u32,
}

impl NodeBehavior for RepeatSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.start_transfer(self.to, self.bytes, 0)
            .expect("start transfer");
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        if let NodeEvent::UploadComplete { .. } = event {
            // Exercise the per-node flow index the way the swarm layer does.
            black_box(ctx.active_transfer_count());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.start_transfer(self.to, self.bytes, 0)
                    .expect("restart transfer");
            }
        }
    }
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);

    // The TCP flow-advance hot path: 8 concurrent lossy flows stepping
    // round after round through the flow table.
    group.bench_function("flow-advance", |b| {
        b.iter(|| {
            let spec =
                LinkSpec::from_bytes_per_sec(1_000_000.0, SimDuration::from_millis(10), 0.02);
            let s = star(&vec![spec; 16]);
            let mut sim = Simulator::new(s.network, black_box(11));
            sim.add_node(Box::new(NullBehavior)); // the hub
            for pair in 0..8 {
                let to = s.leaves[pair * 2 + 1];
                sim.add_node(Box::new(RepeatSender {
                    to,
                    bytes: 512_000,
                    remaining: 4,
                }));
                sim.add_node(Box::new(NullBehavior));
            }
            sim.run_until_idle(SimTime::from_secs_f64(600.0));
            black_box(sim.stats())
        })
    });

    // The segment-request hot path: a request-dense swarm (many short
    // segments, fast links) dominated by Request/Have/scheduling traffic.
    let mut config = ExperimentConfig::paper_baseline()
        .with_bandwidth(1_024_000.0)
        .with_splicing(SplicingSpec::Duration(1.0))
        .with_leechers(8);
    config.video = VideoSpec {
        duration_secs: 60.0,
        ..VideoSpec::default()
    };
    config.swarm.max_sim_secs = 600.0;
    group.bench_function("segment-request", |b| {
        b.iter(|| run_once(black_box(&config), black_box(2)))
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_splicers,
    bench_codec,
    bench_sampling,
    bench_swarm,
    bench_hotpath
);
criterion_main!(benches);
