//! `fig_bigswarm`: big-swarm scaling — one 2000-leecher channel plus an
//! 8-channel × 250-leecher sharded workload, under the `scale` profile
//! (fluid flow model, eventful control plane, windowed interest
//! dissemination, incremental holder index).
//!
//! Three properties are gated by `BENCH_bigswarm.json`:
//!
//! - **Sharded speedup.** The 8×250 workload runs twice through
//!   [`ShardedWorkload`]: serially (`workers = 1`) and with
//!   `workers = min(8, available_parallelism)`. The committed gate
//!   requires `shard_serial ≥ shard_budget` where `shard_budget =
//!   shard_parallel × workers / 2` — i.e. the fan-out must buy at least a
//!   `workers/2`× wall-clock speedup. The budget is emitted as a
//!   pseudo-benchmark so the gate is a machine-independent within-run
//!   ratio: on a single-core runner `workers` resolves to 1 and the gate
//!   degenerates to `serial ≥ parallel/2`, which always holds.
//! - **Memory diet.** The 2000-leecher run reports measured bytes/peer
//!   (packed 40-byte views, boxed bitfields, compact holder index, lazy
//!   side tables) and the modeled pre-diet bytes/peer (64-byte views,
//!   never-shrunk holder entries, always-on clocks). The gate requires
//!   pre-diet ≥ 1.43× measured, i.e. ≥30% lower after the diet.
//! - **Wall budget.** `bigswarm/wall/single/2000` is speedup-gated
//!   against the committed baseline so the 2000-leecher run cannot
//!   quietly regress.
//!
//! Both runs also assert bit-identical sharded aggregates between the
//! serial and parallel fan-outs. Each configuration runs exactly once
//! (the simulation is deterministic); memory numbers ride as pseudo-ns in
//! the standard `bench:` format for `scripts/bench_compare.py`.

use std::time::Instant;

use splicecast_core::{ExperimentConfig, ShardedWorkload, SplicingSpec, VideoSpec};
use splicecast_media::{DurationSplicer, Splicer};
use splicecast_swarm::{run_swarm, SwarmConfig, SwarmMetrics};

/// Swarm seed (the video content seed is fixed separately).
const SEED: u64 = 5;
/// Splicing interval, seconds: the 120 s clip cut into 60 segments — the
/// coarse end of the paper's sweep, where per-segment control overhead is
/// modest and swarm size is the scaling variable.
const SPLICE_SECS: f64 = 2.0;

/// The fat-link operating point shared with `fig_sched` / `fig_dissem`:
/// ample access bandwidth so control-plane processing and memory, not
/// data transfer, limit scale. The scale-profile knobs (fluid, eventful,
/// windowed, indexed) come from `with_scale_profile`.
fn scale_config(n_leechers: usize, clip_secs: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline()
        .with_splicing(SplicingSpec::Duration(SPLICE_SECS))
        .with_leechers(n_leechers)
        .with_scale_profile();
    cfg.video = VideoSpec {
        duration_secs: clip_secs,
        ..VideoSpec::default()
    };
    cfg.swarm.peer_bandwidth_bytes_per_sec = 16_000_000.0;
    cfg.swarm.seeder_bandwidth_bytes_per_sec = 64_000_000.0;
    cfg.swarm.seeder_upload_slots = 32;
    cfg.swarm.end_to_end_loss = 0.01;
    cfg.swarm.max_sim_secs = 1800.0;
    cfg
}

/// Runs the single big channel once; returns `(wall ns, metrics)`.
fn run_single(config: &ExperimentConfig) -> (u128, SwarmMetrics) {
    let video = config.video.build();
    let segments = DurationSplicer::new(SPLICE_SECS).splice(&video);
    let swarm: SwarmConfig = config.swarm.clone();
    let start = Instant::now();
    let metrics = run_swarm(&segments, &swarm, SEED);
    let wall_ns = start.elapsed().as_nanos();
    assert_eq!(
        metrics.completion_rate(),
        1.0,
        "every viewer must finish at n={}",
        swarm.n_leechers
    );
    (wall_ns, metrics)
}

fn main() {
    // Smoke-test mode (no `--bench` flag, i.e. under `cargo test`): tiny
    // sizes, print nothing. Quick mode trims the swarm but keeps every
    // assertion and output line.
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick");
    let (single_n, channels, per_channel_n, clip_secs) = if !full {
        (12, 2, 6, 24.0)
    } else if quick {
        (250, 4, 60, 120.0)
    } else {
        (2000, 8, 250, 120.0)
    };

    // --- The big single channel: wall clock and bytes/peer. ---
    let single_cfg = scale_config(single_n, clip_secs);
    let (wall_ns, metrics) = run_single(&single_cfg);
    let current = metrics.mean_mem_bytes_per_peer().round() as u64;
    let prediet = metrics.mean_prediet_bytes_per_peer().round() as u64;
    assert!(current > 0, "memory accounting must be populated");
    if full {
        println!(
            "bench: bigswarm/wall/single/{single_n} ... {wall_ns}.0 ns/iter \
             (min {wall_ns}.0, max {wall_ns}.0, samples 1)"
        );
        println!(
            "bench: bigswarm/mem/current/{single_n} ... {current}.0 ns/iter \
             (min {current}.0, max {current}.0, samples 1)"
        );
        println!(
            "bench: bigswarm/mem/prediet/{single_n} ... {prediet}.0 ns/iter \
             (min {prediet}.0, max {prediet}.0, samples 1)"
        );
        println!(
            "info: bigswarm/single/{single_n} run {:.1}s stalls {:.2} \
             bytes/peer {current} (pre-diet {prediet}, {:.1}% lower) \
             messages {}",
            wall_ns as f64 / 1e9,
            metrics.mean_stalls(),
            100.0 * (1.0 - current as f64 / prediet as f64),
            metrics.net.messages_sent,
        );
    }

    // --- The sharded multi-channel workload: serial vs fanned out. ---
    let shard_cfg = scale_config(per_channel_n, clip_secs);
    let workload = ShardedWorkload::with_channel_count(&shard_cfg, channels, &[SEED]);

    let start = Instant::now();
    let serial = workload.run(1);
    let serial_ns = start.elapsed().as_nanos();

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8);
    let start = Instant::now();
    let parallel = workload.run(workers);
    let parallel_ns = start.elapsed().as_nanos();

    // The determinism contract: fan-out must not change a single bit.
    assert_eq!(
        serial, parallel,
        "sharded aggregate must be bit-identical across worker counts"
    );
    assert_eq!(serial.aggregate.completion_rate, 1.0);

    if full {
        // `shard_budget` is the wall clock a `workers/2`× speedup would
        // produce; the committed ratio gate checks serial ≥ budget.
        let budget_ns = (parallel_ns as f64 * workers as f64 / 2.0).round() as u128;
        println!(
            "bench: bigswarm/wall/shard_serial ... {serial_ns}.0 ns/iter \
             (min {serial_ns}.0, max {serial_ns}.0, samples 1)"
        );
        println!(
            "bench: bigswarm/wall/shard_parallel ... {parallel_ns}.0 ns/iter \
             (min {parallel_ns}.0, max {parallel_ns}.0, samples 1)"
        );
        println!(
            "bench: bigswarm/wall/shard_budget ... {budget_ns}.0 ns/iter \
             (min {budget_ns}.0, max {budget_ns}.0, samples 1)"
        );
        println!(
            "info: bigswarm/shard {channels}x{per_channel_n} workers {workers} \
             serial {:.1}s parallel {:.1}s speedup {:.2}x \
             aggregate-stalls {} bytes/peer {:.0}",
            serial_ns as f64 / 1e9,
            parallel_ns as f64 / 1e9,
            serial_ns as f64 / parallel_ns as f64,
            serial.aggregate.rounded_stalls,
            serial.aggregate.mem_bytes_per_peer(per_channel_n),
        );
    }
}
