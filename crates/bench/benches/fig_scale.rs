//! `fig_scale`: wall-clock scaling of the two network flow models.
//!
//! A swarm-shaped transfer workload — senders fanning segment-sized chunks
//! out to several receivers over paper-parameter access links (128 kB/s,
//! 50 ms peer-to-peer latency, ~5 % end-to-end loss) — pushed to 100, 250,
//! and 500 leechers under both flow models. The per-RTT round model
//! schedules one event per flow per RTT, so its cost grows with simulated
//! transfer-seconds; the fluid model recomputes max–min fair rates only
//! when the flow set changes, so its event count is O(transfers). The gap
//! between `scale/rounds/N` and `scale/fluid/N` is what makes 500+-leecher
//! experiments feasible, and `BENCH_scale.json` gates it at ≥10× for 250
//! leechers and up.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use splicecast_netsim::{
    star, Ctx, FlowModel, LinkSpec, NodeBehavior, NodeEvent, NodeId, NullBehavior, SimDuration,
    SimStats, SimTime, Simulator, TcpConfig,
};

/// Receivers per sender: each sender's uplink is shared `FAN_OUT` ways,
/// like a seeder or peer serving several upload slots.
const FAN_OUT: usize = 5;
/// One "segment" worth of bulk data per transfer. Sized so that each
/// receiver streams roughly a 2-minute VoD session's worth of video and
/// the round model's per-RTT event count dominates the wall clock.
const CHUNK_BYTES: u64 = 8_000_000;
/// Further chunks each receiver gets after its first.
const EXTRA_CHUNKS: u32 = 2;

/// Streams chunks to each of its receivers: sequentially per receiver,
/// concurrently across receivers (the upload-slot pattern of the swarm).
struct FanSender {
    receivers: Vec<NodeId>,
    remaining: Vec<u32>,
}

impl NodeBehavior for FanSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &to) in self.receivers.iter().enumerate() {
            ctx.start_transfer(to, CHUNK_BYTES, i as u64)
                .expect("start transfer");
        }
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
        if let NodeEvent::UploadComplete { to, tag, .. } = event {
            let i = tag as usize;
            if self.remaining[i] > 0 {
                self.remaining[i] -= 1;
                ctx.start_transfer(to, CHUNK_BYTES, tag)
                    .expect("next chunk");
            }
        }
    }
}

fn run_scale(n_leechers: usize, model: FlowModel) -> SimStats {
    let senders = n_leechers.div_ceil(FAN_OUT);
    let spec = LinkSpec::from_bytes_per_sec(128_000.0, SimDuration::from_millis(25), 0.025);
    let s = star(&vec![spec; senders + n_leechers]);
    let mut sim = Simulator::new(s.network, 2015);
    sim.set_tcp_config(TcpConfig {
        flow_model: model,
        ..TcpConfig::default()
    });
    sim.add_node(Box::new(NullBehavior)); // the hub
    for i in 0..senders {
        let receivers: Vec<NodeId> = (0..FAN_OUT)
            .map(|j| i * FAN_OUT + j)
            .filter(|&r| r < n_leechers)
            .map(|r| s.leaves[senders + r])
            .collect();
        let n = receivers.len();
        sim.add_node(Box::new(FanSender {
            receivers,
            remaining: vec![EXTRA_CHUNKS; n],
        }));
    }
    for _ in 0..n_leechers {
        sim.add_node(Box::new(NullBehavior));
    }
    sim.run_until_idle(SimTime::from_secs_f64(3_600.0));
    let stats = sim.stats();
    assert_eq!(
        stats.flows_completed,
        n_leechers as u64 * (EXTRA_CHUNKS as u64 + 1),
        "every chunk must be delivered within the deadline"
    );
    stats
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for &n in &[100usize, 250, 500] {
        let rounds = format!("rounds/{n}");
        group.bench_function(&rounds, |b| {
            b.iter(|| black_box(run_scale(black_box(n), FlowModel::Rounds)))
        });
        let fluid = format!("fluid/{n}");
        group.bench_function(&fluid, |b| {
            b.iter(|| black_box(run_scale(black_box(n), FlowModel::Fluid)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
