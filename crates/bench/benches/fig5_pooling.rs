//! Figure 5: total number of stalls for different download-pool policies —
//! the paper's adaptive pooling (Eq. 1) against fixed pools of 2/4/8.
//!
//! Paper shape: adaptive pooling stalls least; at low bandwidth a large
//! fixed pool overloads the peer's access link. Our simulated swarm
//! reproduces the overload (see the startup and total-delay tables below:
//! big pools pay heavily up front) but absorbs deep pools better than the
//! paper's testbed did, so the raw stall-count ordering at the lowest
//! bandwidth partially inverts — see EXPERIMENTS.md for the analysis.

use splicecast_bench::{apply_scale, banner, paper_config, FIG_BANDWIDTHS, SEEDS};
use splicecast_core::{sweep, PolicyConfig, SweepPoint, Table};

fn main() {
    banner(
        "Figure 5",
        "total number of stalls for different pool sizes",
    );

    let policies = [
        ("adaptive", PolicyConfig::Adaptive),
        ("pool-2", PolicyConfig::Fixed(2)),
        ("pool-4", PolicyConfig::Fixed(4)),
        ("pool-8", PolicyConfig::Fixed(8)),
    ];
    let mut points = Vec::new();
    for (_, bandwidth) in FIG_BANDWIDTHS {
        for (name, policy) in &policies {
            points.push(SweepPoint {
                label: format!("{name}@{bandwidth}"),
                config: apply_scale(paper_config(bandwidth).with_policy(*policy)),
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new(
        "Total number of stalls (rounded mean per viewer)",
        "bandwidth",
        &series,
    );
    stalls.precision(0);
    let mut startup = Table::new(
        "Startup time, seconds (supplementary)",
        "bandwidth",
        &series,
    );
    let mut delay = Table::new(
        "Total delay = startup + stall duration, seconds (supplementary)",
        "bandwidth",
        &series,
    );
    let mut iter = results.iter();
    for (label, _) in FIG_BANDWIDTHS {
        let mut stall_row = Vec::new();
        let mut startup_row = Vec::new();
        let mut delay_row = Vec::new();
        for _ in &policies {
            let metrics = &iter.next().expect("sweep result").1;
            stall_row.push(metrics.rounded_stalls as f64);
            startup_row.push(metrics.startup_secs.mean);
            delay_row.push(metrics.startup_secs.mean + metrics.stall_secs.mean);
        }
        stalls.push_row(label, &stall_row);
        startup.push_row(label, &startup_row);
        delay.push_row(label, &delay_row);
    }
    println!("{stalls}");
    println!("{startup}");
    println!("{delay}");
    println!("csv:\n{}", stalls.to_csv());
}
