//! Variable-bandwidth ablation (the paper's §VIII future work: "in
//! real-word scenario, available bandwidth changes over time. An
//! experiment should be conducted to measure the effect of splicing on
//! variable bandwidth environment").
//!
//! Peer access links oscillate around a 256 kB/s mean with increasing
//! amplitude; the splicing schemes are compared on stalls.

use splicecast_bench::{apply_scale, banner, paper_config, splicing_variants, SEEDS};
use splicecast_core::{sweep, SweepPoint, Table};

fn main() {
    banner(
        "Variable-bandwidth ablation",
        "stalls under oscillating peer links",
    );

    let mean_bw = 256_000.0;
    let amplitudes = [
        ("constant", 0.0),
        ("±64 kB/s", 64_000.0),
        ("±128 kB/s", 128_000.0),
    ];
    let variants = splicing_variants();

    let mut points = Vec::new();
    for (_, amplitude) in amplitudes {
        for (name, splicing) in &variants {
            let mut config = apply_scale(paper_config(mean_bw).with_splicing(*splicing));
            if amplitude > 0.0 {
                // Square-wave oscillation with a 10-second half period.
                config.swarm.bandwidth_schedule = (0..120)
                    .map(|i| {
                        let at = 10.0 * (i + 1) as f64;
                        let bw = if i % 2 == 0 {
                            mean_bw - amplitude
                        } else {
                            mean_bw + amplitude
                        };
                        (at, bw)
                    })
                    .collect();
            }
            points.push(SweepPoint {
                label: format!("{name}@{amplitude}"),
                config,
            });
        }
    }
    let results = sweep(&points, &SEEDS);

    let series: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    let mut stalls = Table::new(
        "Total number of stalls (mean per viewer)",
        "bandwidth profile",
        &series,
    );
    let mut duration = Table::new(
        "Total stall duration, seconds (mean per viewer)",
        "bandwidth profile",
        &series,
    );
    let mut iter = results.iter();
    for (label, _) in amplitudes {
        let mut stall_row = Vec::new();
        let mut dur_row = Vec::new();
        for _ in &variants {
            let metrics = &iter.next().expect("sweep result").1;
            stall_row.push(metrics.stalls.mean);
            dur_row.push(metrics.stall_secs.mean);
        }
        stalls.push_row(label, &stall_row);
        duration.push_row(label, &dur_row);
    }
    println!("{stalls}");
    println!("{duration}");
    println!("csv:\n{}", stalls.to_csv());
}
