//! `fig_dissem`: cost of availability dissemination at 100 / 250 / 500
//! leechers, full announcements vs windowed interest.
//!
//! Under full dissemination every acquisition is announced to every
//! subscribed peer and every received index is mirrored into the
//! receiver's holder index immediately — O(peers²) announcement
//! processing per segment generation, dominated by holder-index inserts
//! for segments the receiver will not want for minutes. Windowed
//! dissemination (`--dissemination windowed`) announces each leecher's
//! wanted window `[frontier, frontier + 64)` via coalescable
//! `InterestWindow` messages, suppresses bundles that fall entirely
//! outside a subscriber's window, parks received indices beyond the local
//! fold horizon in the per-peer view only, and lazily folds them into the
//! holder index as the frontier advances.
//!
//! Both modes stream to completion over the same fat-link configuration
//! as `fig_sched` (fluid flow model, eventful control plane, indexed
//! scheduler). `BENCH_dissem.json` gates, within the same run: windowed
//! must perform ≥2× fewer holder-index inserts and finish ≥1.3× faster in
//! whole-run wall clock at 250 and 500 leechers.
//!
//! Each configuration runs exactly once (the simulation is
//! deterministic); `dissem/inserts/*` lines carry the holder-index insert
//! count as pseudo-ns, `dissem/wall/*` lines the whole-run wall clock in
//! ns, both in the standard `bench:` format for
//! `scripts/bench_compare.py`.

use std::time::Instant;

use splicecast_media::{DurationSplicer, SegmentList, Splicer, Video};
use splicecast_netsim::FlowModel;
use splicecast_swarm::{run_swarm, ControlPlane, DisseminationMode, SwarmConfig, SwarmMetrics};

/// Swarm seed (the video content seed is fixed separately).
const SEED: u64 = 5;
/// Have-coalescing window, seconds (same operating point as `fig_sched`).
const WINDOW_SECS: f64 = 2.0;

fn swarm_config(n_leechers: usize, dissemination: DisseminationMode) -> SwarmConfig {
    SwarmConfig {
        n_leechers,
        // Ample access bandwidth: the regime where data transfer is easy
        // and control-plane processing is what limits scale.
        peer_bandwidth_bytes_per_sec: 16_000_000.0,
        seeder_bandwidth_bytes_per_sec: 64_000_000.0,
        seeder_upload_slots: 32,
        end_to_end_loss: 0.01,
        max_sim_secs: 900.0,
        flow_model: FlowModel::Fluid,
        control_plane: ControlPlane::Eventful,
        have_coalesce_secs: Some(WINDOW_SECS),
        dissemination,
        ..SwarmConfig::default()
    }
}

fn mode_name(mode: DisseminationMode) -> &'static str {
    match mode {
        DisseminationMode::Full => "full",
        DisseminationMode::Windowed => "windowed",
    }
}

/// Runs one swarm and returns `(whole-run wall ns, metrics)`.
fn run_once(
    segments: &SegmentList,
    n_leechers: usize,
    mode: DisseminationMode,
) -> (u128, SwarmMetrics) {
    let start = Instant::now();
    let metrics = run_swarm(segments, &swarm_config(n_leechers, mode), SEED);
    let wall_ns = start.elapsed().as_nanos();
    assert_eq!(
        metrics.completion_rate(),
        1.0,
        "every {} viewer must finish at n={n_leechers}",
        mode_name(mode)
    );
    (wall_ns, metrics)
}

fn main() {
    // Smoke-test mode (no `--bench` flag, i.e. under `cargo test`): run a
    // tiny swarm through both modes once and print nothing.
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick");
    let (sizes, clip_secs): (&[usize], f64) = if !full || quick {
        (&[10], 24.0)
    } else {
        (&[100, 250, 500], 120.0)
    };

    // The paper's 2-minute clip cut at GoP granularity (0.5 s segments):
    // many segments per peer makes announcement processing substantial.
    let video = Video::builder().duration_secs(clip_secs).seed(6).build();
    let segments = DurationSplicer::new(0.5).splice(&video);

    for &n in sizes {
        for mode in [DisseminationMode::Full, DisseminationMode::Windowed] {
            let (wall_ns, metrics) = run_once(&segments, n, mode);
            if !full {
                continue;
            }
            let name = mode_name(mode);
            let inserts = metrics.sched_totals().holder_adds;
            println!(
                "bench: dissem/inserts/{name}/{n} ... {inserts}.0 ns/iter \
                 (min {inserts}.0, max {inserts}.0, samples 1)"
            );
            println!(
                "bench: dissem/wall/{name}/{n} ... {wall_ns}.0 ns/iter \
                 (min {wall_ns}.0, max {wall_ns}.0, samples 1)"
            );
            let d = metrics.dissem_totals();
            let control = metrics.control_totals();
            println!(
                "info: dissem/{name}/{n} run {:.1}s bundles {} suppressed {} \
                 windows {} catchup-bundles {} deferred {} fold-inserts {} \
                 window-capped {} messages {} stalls {:.2}",
                wall_ns as f64 / 1e9,
                control.have_bundles_sent,
                control.haves_suppressed,
                d.windows_sent,
                d.catchup_bundles,
                d.deferred_indices,
                d.fold_inserts,
                d.window_capped,
                metrics.net.messages_sent,
                metrics.mean_stalls(),
            );
        }
    }
}
