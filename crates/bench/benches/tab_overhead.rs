//! Splicing byte-overhead table (quantifies §I/§II's "the duration based
//! splicing requires much more data to be transferred than the GOP based
//! splicing"). No swarm needed: this is a property of the splice itself.

use splicecast_core::{SplicingSpec, Table, VideoSpec};

fn main() {
    println!("Splicing overhead on the paper's 2-minute 1 Mbps clip");
    println!("(duration splicing re-intra-codes the first frame of every");
    println!(" segment whose cut lands mid-GOP; GOP splicing is free)\n");

    let video = VideoSpec::default().build();
    let variants: Vec<(String, SplicingSpec)> =
        std::iter::once(("gop".to_owned(), SplicingSpec::Gop))
            .chain(
                [1.0, 2.0, 4.0, 8.0, 16.0]
                    .iter()
                    .map(|&d| (format!("{d}s"), SplicingSpec::Duration(d))),
            )
            .collect();

    let mut table = Table::new(
        "Per-splicing segment statistics",
        "splicing",
        &["segments", "total MB", "overhead %", "mean kB", "max kB"],
    );
    table.precision(1);
    for (name, spec) in &variants {
        let list = spec.splice(&video);
        list.validate(&video).expect("splicer invariant");
        table.push_row(
            name,
            &[
                list.len() as f64,
                list.total_bytes() as f64 / 1e6,
                list.overhead_ratio() * 100.0,
                list.mean_segment_bytes() / 1e3,
                list.max_segment_bytes() as f64 / 1e3,
            ],
        );
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
