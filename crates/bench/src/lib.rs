//! Shared helpers for the figure-regeneration benches.
//!
//! Each bench target (`cargo bench -p splicecast-bench --bench figN_...`)
//! reruns one figure of the paper's evaluation and prints the same
//! rows/series the figure reports. Absolute values come from our simulated
//! substrate, so only the *shape* (orderings, trends, crossovers) is
//! expected to match the paper; `EXPERIMENTS.md` records both.

use splicecast_core::{ExperimentConfig, SplicingSpec};

/// The paper's three-runs-per-point methodology.
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// The bandwidths of Figs. 2/3/5 (bytes per second, labelled as in the
/// paper's x-axis).
pub const FIG_BANDWIDTHS: [(&str, f64); 4] = [
    ("128 kB/s", 128_000.0),
    ("256 kB/s", 256_000.0),
    ("512 kB/s", 512_000.0),
    ("768 kB/s", 768_000.0),
];

/// The bandwidths of Fig. 4 (its x-axis tops out at 1024 kB/s).
pub const FIG4_BANDWIDTHS: [(&str, f64); 4] = [
    ("128 kB/s", 128_000.0),
    ("256 kB/s", 256_000.0),
    ("512 kB/s", 512_000.0),
    ("1024 kB/s", 1_024_000.0),
];

/// The splicing schemes compared in Figs. 2 and 3.
pub fn splicing_variants() -> Vec<(&'static str, SplicingSpec)> {
    vec![
        ("gop", SplicingSpec::Gop),
        ("2s", SplicingSpec::Duration(2.0)),
        ("4s", SplicingSpec::Duration(4.0)),
        ("8s", SplicingSpec::Duration(8.0)),
    ]
}

/// The paper's full-scale experiment config at a given bandwidth.
pub fn paper_config(bandwidth_bytes_per_sec: f64) -> ExperimentConfig {
    ExperimentConfig::paper_baseline().with_bandwidth(bandwidth_bytes_per_sec)
}

/// Scale knob honoured by every bench: `SPLICECAST_SCALE=quick` shrinks the
/// swarm and video so the whole suite runs in seconds (CI smoke mode);
/// anything else (or unset) runs the paper-scale experiment.
pub fn apply_scale(mut cfg: ExperimentConfig) -> ExperimentConfig {
    if std::env::var("SPLICECAST_SCALE").as_deref() == Ok("quick") {
        cfg.video.duration_secs = 24.0;
        cfg.swarm.n_leechers = 5;
        cfg.swarm.max_sim_secs = 600.0;
    }
    cfg
}

/// Prints the standard bench header.
pub fn banner(figure: &str, what: &str) {
    println!("================================================================");
    println!("{figure}: {what}");
    println!("video: 2 min of 1 Mbps MPEG-4 (mixed content), 19 peers + seeder");
    println!("star topology, 50 ms peer-to-peer latency, 5% end-to-end loss");
    println!("each point: rounded average of {} seeded runs", SEEDS.len());
    println!("================================================================");
}
