//! Property-based tests for the wire protocol.

use proptest::prelude::*;

use bytes::BytesMut;
use splicecast_protocol::*;

fn arbitrary_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::KeepAlive),
        Just(Message::Choke),
        Just(Message::Unchoke),
        Just(Message::Interested),
        Just(Message::NotInterested),
        Just(Message::ManifestRequest),
        Just(Message::Goodbye),
        any::<u32>().prop_map(|index| Message::Have { index }),
        any::<u32>().prop_map(|index| Message::Request { index }),
        any::<u32>().prop_map(|index| Message::Cancel { index }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(index, bytes)| Message::SegmentHeader { index, bytes }),
        (any::<u64>(), any::<[u8; 20]>()).prop_map(|(peer_id, info_hash)| Message::Handshake {
            peer_id,
            info_hash,
            version: 1
        }),
        prop::collection::vec(any::<bool>(), 0..200).prop_map(|bits| {
            let mut bf = Bitfield::new(bits.len() as u32);
            for (i, &on) in bits.iter().enumerate() {
                if on {
                    bf.set(i as u32);
                }
            }
            Message::Bitfield(bf)
        }),
        prop::collection::vec(any::<u8>(), 0..500).prop_map(|data| Message::ManifestData {
            payload: data.into()
        }),
        prop::collection::vec(any::<u32>(), 0..64)
            .prop_map(|indices| Message::HaveBundle { indices }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_message_stream_survives_arbitrary_chunking(
        messages in prop::collection::vec(arbitrary_message(), 1..20),
        chunk_sizes in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut wire = BytesMut::new();
        for m in &messages {
            encode(m, &mut wire);
        }
        let mut decoder = Decoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunk_idx = 0;
        while offset < wire.len() {
            let size = chunk_sizes[chunk_idx % chunk_sizes.len()].min(wire.len() - offset);
            chunk_idx += 1;
            decoder.feed(&wire[offset..offset + size]);
            offset += size;
            while let Some(m) = decoder.poll().unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, messages);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn bitfield_matches_a_reference_model(
        ops in prop::collection::vec((any::<bool>(), any::<u16>()), 0..300),
        len in 1u32..300,
    ) {
        let mut bf = Bitfield::new(len);
        let mut model = vec![false; len as usize];
        for (set, pos) in ops {
            let i = u32::from(pos) % len;
            if set {
                bf.set(i);
                model[i as usize] = true;
            } else {
                bf.clear(i);
                model[i as usize] = false;
            }
        }
        for i in 0..len {
            prop_assert_eq!(bf.get(i), model[i as usize]);
        }
        prop_assert_eq!(bf.count_ones() as usize, model.iter().filter(|&&b| b).count());
        let set_indices: Vec<u32> = bf.iter_set().collect();
        let model_indices: Vec<u32> =
            (0..len).filter(|&i| model[i as usize]).collect();
        prop_assert_eq!(set_indices, model_indices);
        // Wire round trip preserves everything.
        let restored = Bitfield::from_wire(len, bf.as_bytes().to_vec()).unwrap();
        prop_assert_eq!(restored, bf);
    }

    #[test]
    fn truncated_frames_never_decode_to_garbage(msg in arbitrary_message()) {
        let wire = encode_to_bytes(&msg);
        for cut in 0..wire.len() {
            let mut decoder = Decoder::new();
            decoder.feed(&wire[..cut]);
            match decoder.poll() {
                Ok(None) => {}     // incomplete, as expected
                Ok(Some(other)) => prop_assert_eq!(other, Message::KeepAlive), // only a 0-len prefix can complete
                Err(_) => {}       // corrupt-but-detected is fine
            }
        }
    }

    #[test]
    fn flipping_any_length_byte_is_safe(msg in arbitrary_message(), flip in any::<u8>()) {
        let mut wire = encode_to_bytes(&msg).to_vec();
        if wire.len() >= 4 {
            wire[3] ^= flip; // corrupt the low length byte
            let mut decoder = Decoder::new();
            decoder.feed(&wire);
            // Must not panic; any result is acceptable.
            let _ = decoder.poll();
        }
    }
}
