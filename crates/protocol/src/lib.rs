//! # splicecast-protocol
//!
//! The **BitTorrent-like wire protocol** the paper's P2P streaming
//! application speaks ("we implemented our own BitTorrent like messaging
//! protocol", §V), adapted for segment streaming:
//!
//! - [`Message`]: handshake, choke/interest signalling, [`Bitfield`]
//!   availability maps, `Have` announcements, whole-segment `Request`s, a
//!   `SegmentHeader` announcing each bulk transfer, and manifest exchange.
//! - [`encode`] / [`Decoder`]: a length-prefixed binary codec with streaming
//!   (partial-buffer) decode, strict validation, and a frame-size cap.
//!
//! ## Example
//!
//! ```
//! use splicecast_protocol::{encode_to_bytes, decode_single, Bitfield, Message};
//!
//! let mut held = Bitfield::new(30);
//! held.set(4);
//! let wire = encode_to_bytes(&Message::Bitfield(held.clone()));
//! assert_eq!(decode_single(&wire).unwrap(), Message::Bitfield(held));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitfield;
mod codec;
mod error;
mod message;

pub use bitfield::Bitfield;
pub use codec::{decode_single, encode, encode_to_bytes, Decoder, EncodeBuf, MAX_FRAME_LEN};
pub use error::ProtocolError;
pub use message::{Message, PROTOCOL_MAGIC, PROTOCOL_VERSION};
