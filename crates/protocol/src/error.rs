//! Error types for the wire protocol.

use std::error::Error;
use std::fmt;

/// Errors surfaced while decoding protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The message type byte is not one we know.
    UnknownType(u8),
    /// The declared frame length exceeds the protocol maximum.
    FrameTooLarge {
        /// Declared length.
        len: u32,
    },
    /// A message body was shorter or longer than its type requires.
    BadBody {
        /// The message type byte.
        kind: u8,
        /// Bytes present in the body.
        len: usize,
    },
    /// A bitfield's declared bit count disagrees with its byte length, or a
    /// spare bit beyond the declared count is set.
    MalformedBitfield,
    /// A handshake carried an unknown protocol identifier.
    BadMagic,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownType(t) => write!(f, "unknown message type {t}"),
            ProtocolError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds limit"),
            ProtocolError::BadBody { kind, len } => {
                write!(f, "message type {kind} cannot have a {len}-byte body")
            }
            ProtocolError::MalformedBitfield => write!(f, "malformed bitfield"),
            ProtocolError::BadMagic => write!(f, "handshake carried an unknown protocol id"),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ProtocolError::UnknownType(99).to_string(),
            "unknown message type 99"
        );
        assert_eq!(
            ProtocolError::FrameTooLarge { len: 1 << 30 }.to_string(),
            format!("frame of {} bytes exceeds limit", 1u32 << 30)
        );
        assert_eq!(
            ProtocolError::MalformedBitfield.to_string(),
            "malformed bitfield"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
