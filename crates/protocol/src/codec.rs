//! Binary length-prefixed encoding of [`Message`]s.
//!
//! Framing follows BitTorrent: a big-endian `u32` length prefix, then a
//! type byte and body. The zero-length frame is a keep-alive.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitfield::Bitfield;
use crate::error::ProtocolError;
use crate::message::{Message, PROTOCOL_MAGIC};

/// Upper bound on a frame body; larger declared lengths are rejected
/// rather than buffered (a malformed peer must not make us allocate 4 GB).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Appends the wire form of `msg` to `dst`.
///
/// # Examples
///
/// ```
/// use bytes::BytesMut;
/// use splicecast_protocol::{encode, Message};
///
/// let mut buf = BytesMut::new();
/// encode(&Message::Have { index: 7 }, &mut buf);
/// assert_eq!(&buf[..], &[0, 0, 0, 5, 4, 0, 0, 0, 7]);
/// ```
pub fn encode(msg: &Message, dst: &mut BytesMut) {
    let Some(kind) = msg.wire_type() else {
        dst.put_u32(0); // keep-alive
        return;
    };
    let body_len = body_len(msg);
    dst.reserve(4 + 1 + body_len);
    dst.put_u32(1 + body_len as u32);
    dst.put_u8(kind);
    match msg {
        Message::KeepAlive => unreachable!("handled above"),
        Message::Choke
        | Message::Unchoke
        | Message::Interested
        | Message::NotInterested
        | Message::ManifestRequest
        | Message::PeerListRequest
        | Message::Goodbye => {}
        Message::Have { index } | Message::Request { index } | Message::Cancel { index } => {
            dst.put_u32(*index);
        }
        Message::RequestRendition { rendition, index } => {
            dst.put_u8(*rendition);
            dst.put_u32(*index);
        }
        Message::PeerList { peers } => {
            dst.put_u32(peers.len() as u32);
            for p in peers {
                dst.put_u32(*p);
            }
        }
        Message::HaveBundle { indices } => {
            dst.put_u32(indices.len() as u32);
            for i in indices {
                dst.put_u32(*i);
            }
        }
        Message::SegmentHeader { index, bytes } => {
            dst.put_u32(*index);
            dst.put_u64(*bytes);
        }
        Message::InterestWindow { start, end } => {
            dst.put_u32(*start);
            dst.put_u32(*end);
        }
        Message::Bitfield(bf) => {
            dst.put_u32(bf.len());
            dst.put_slice(bf.as_bytes());
        }
        Message::ManifestData { payload } => {
            dst.put_slice(payload);
        }
        Message::Handshake {
            peer_id,
            info_hash,
            version,
        } => {
            dst.put_slice(&PROTOCOL_MAGIC);
            dst.put_u8(*version);
            dst.put_u64(*peer_id);
            dst.put_slice(info_hash);
        }
    }
}

/// Encodes `msg` into a standalone buffer.
pub fn encode_to_bytes(msg: &Message) -> Bytes {
    let mut buf = BytesMut::new();
    encode(msg, &mut buf);
    buf.freeze()
}

/// A reusable encoding buffer for hot paths.
///
/// [`encode_to_bytes`] allocates a scratch buffer per call;
/// [`EncodeBuf::wire`] keeps one scratch buffer alive across calls, so each
/// encode costs only the single allocation of the returned [`Bytes`].
///
/// # Examples
///
/// ```
/// use splicecast_protocol::{decode_single, EncodeBuf, Message};
///
/// let mut buf = EncodeBuf::new();
/// let wire = buf.wire(&Message::Have { index: 7 });
/// assert_eq!(decode_single(&wire).unwrap(), Message::Have { index: 7 });
/// ```
#[derive(Debug, Default)]
pub struct EncodeBuf {
    buf: BytesMut,
}

impl EncodeBuf {
    /// Creates an empty encode buffer.
    pub fn new() -> Self {
        EncodeBuf::default()
    }

    /// Encodes `msg` into the internal scratch buffer and returns it as a
    /// standalone [`Bytes`].
    pub fn wire(&mut self, msg: &Message) -> Bytes {
        self.buf.clear();
        encode(msg, &mut self.buf);
        Bytes::copy_from_slice(&self.buf)
    }
}

fn body_len(msg: &Message) -> usize {
    match msg {
        Message::KeepAlive => 0,
        Message::Choke
        | Message::Unchoke
        | Message::Interested
        | Message::NotInterested
        | Message::ManifestRequest
        | Message::PeerListRequest
        | Message::Goodbye => 0,
        Message::Have { .. } | Message::Request { .. } | Message::Cancel { .. } => 4,
        Message::RequestRendition { .. } => 5,
        Message::PeerList { peers } => 4 + 4 * peers.len(),
        Message::HaveBundle { indices } => 4 + 4 * indices.len(),
        Message::SegmentHeader { .. } => 12,
        Message::InterestWindow { .. } => 8,
        Message::Bitfield(bf) => 4 + bf.as_bytes().len(),
        Message::ManifestData { payload } => payload.len(),
        Message::Handshake { .. } => 8 + 1 + 8 + 20,
    }
}

/// Decodes exactly one message from `data`.
///
/// Parses in place: the only allocations are for messages that carry
/// owned data (`Bitfield`, `ManifestData`, `PeerList`), which keeps the
/// per-message receive path of the simulator allocation-free.
///
/// # Errors
///
/// Fails on truncated input, trailing bytes, or any malformed frame.
pub fn decode_single(data: &[u8]) -> Result<Message, ProtocolError> {
    if data.len() < 4 {
        return Err(ProtocolError::BadBody {
            kind: 0xFF,
            len: data.len(),
        });
    }
    let len = u32::from_be_bytes(data[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let rest = &data[4..];
    if rest.len() < len as usize {
        return Err(ProtocolError::BadBody {
            kind: 0xFF,
            len: data.len(),
        });
    }
    let msg = if len == 0 {
        Message::KeepAlive
    } else {
        decode_body_slice(rest[0], &rest[1..len as usize])?
    };
    let trailing = rest.len() - len as usize;
    if trailing != 0 {
        return Err(ProtocolError::BadBody {
            kind: 0xFE,
            len: trailing,
        });
    }
    Ok(msg)
}

/// A streaming decoder: feed arbitrary chunks, poll complete messages.
///
/// # Examples
///
/// ```
/// use splicecast_protocol::{encode_to_bytes, Decoder, Message};
///
/// let wire = encode_to_bytes(&Message::Request { index: 2 });
/// let mut dec = Decoder::new();
/// dec.feed(&wire[..3]); // partial frame
/// assert!(dec.poll().unwrap().is_none());
/// dec.feed(&wire[3..]);
/// assert_eq!(dec.poll().unwrap(), Some(Message::Request { index: 2 }));
/// ```
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on malformed frames. After an error the
    /// decoder state is unspecified; drop the connection.
    pub fn poll(&mut self) -> Result<Option<Message>, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::FrameTooLarge { len });
        }
        if self.buf.len() < 4 + len as usize {
            return Ok(None);
        }
        self.buf.advance(4);
        if len == 0 {
            return Ok(Some(Message::KeepAlive));
        }
        let mut body = self.buf.split_to(len as usize).freeze();
        let kind = body.get_u8();
        decode_body(kind, body).map(Some)
    }
}

fn decode_body(kind: u8, body: Bytes) -> Result<Message, ProtocolError> {
    if kind == 10 {
        // Streaming path: hand the manifest payload over without copying.
        return Ok(Message::ManifestData { payload: body });
    }
    decode_body_slice(kind, &body)
}

/// Advances `body` past its first `n` bytes and returns them.
fn split<'a>(body: &mut &'a [u8], n: usize) -> &'a [u8] {
    let (head, tail) = body.split_at(n);
    *body = tail;
    head
}

fn read_u32(body: &mut &[u8]) -> u32 {
    u32::from_be_bytes(split(body, 4).try_into().expect("4 bytes"))
}

fn read_u64(body: &mut &[u8]) -> u64 {
    u64::from_be_bytes(split(body, 8).try_into().expect("8 bytes"))
}

fn decode_body_slice(kind: u8, mut body: &[u8]) -> Result<Message, ProtocolError> {
    let fixed = |body: &[u8], n: usize| -> Result<(), ProtocolError> {
        if body.len() != n {
            Err(ProtocolError::BadBody {
                kind,
                len: body.len(),
            })
        } else {
            Ok(())
        }
    };
    let msg = match kind {
        0 => {
            fixed(body, 0)?;
            Message::Choke
        }
        1 => {
            fixed(body, 0)?;
            Message::Unchoke
        }
        2 => {
            fixed(body, 0)?;
            Message::Interested
        }
        3 => {
            fixed(body, 0)?;
            Message::NotInterested
        }
        4 => {
            fixed(body, 4)?;
            Message::Have {
                index: read_u32(&mut body),
            }
        }
        5 => {
            if body.len() < 4 {
                return Err(ProtocolError::BadBody {
                    kind,
                    len: body.len(),
                });
            }
            let bits = read_u32(&mut body);
            let bf = Bitfield::from_wire(bits, body.to_vec())?;
            Message::Bitfield(bf)
        }
        6 => {
            fixed(body, 4)?;
            Message::Request {
                index: read_u32(&mut body),
            }
        }
        7 => {
            fixed(body, 12)?;
            Message::SegmentHeader {
                index: read_u32(&mut body),
                bytes: read_u64(&mut body),
            }
        }
        8 => {
            fixed(body, 4)?;
            Message::Cancel {
                index: read_u32(&mut body),
            }
        }
        9 => {
            fixed(body, 0)?;
            Message::ManifestRequest
        }
        10 => Message::ManifestData {
            payload: Bytes::copy_from_slice(body),
        },
        11 => {
            fixed(body, 0)?;
            Message::Goodbye
        }
        12 => {
            fixed(body, 5)?;
            let rendition = split(&mut body, 1)[0];
            Message::RequestRendition {
                rendition,
                index: read_u32(&mut body),
            }
        }
        13 => {
            fixed(body, 0)?;
            Message::PeerListRequest
        }
        14 => {
            if body.len() < 4 {
                return Err(ProtocolError::BadBody {
                    kind,
                    len: body.len(),
                });
            }
            let count = read_u32(&mut body) as usize;
            if body.len() != count * 4 {
                return Err(ProtocolError::BadBody {
                    kind,
                    len: body.len(),
                });
            }
            let peers = (0..count).map(|_| read_u32(&mut body)).collect();
            Message::PeerList { peers }
        }
        15 => {
            if body.len() < 4 {
                return Err(ProtocolError::BadBody {
                    kind,
                    len: body.len(),
                });
            }
            let count = read_u32(&mut body) as usize;
            if body.len() != count * 4 {
                return Err(ProtocolError::BadBody {
                    kind,
                    len: body.len(),
                });
            }
            let indices = (0..count).map(|_| read_u32(&mut body)).collect();
            Message::HaveBundle { indices }
        }
        16 => {
            fixed(body, 8)?;
            Message::InterestWindow {
                start: read_u32(&mut body),
                end: read_u32(&mut body),
            }
        }
        20 => {
            fixed(body, 37)?;
            if split(&mut body, 8) != PROTOCOL_MAGIC.as_slice() {
                return Err(ProtocolError::BadMagic);
            }
            let version = split(&mut body, 1)[0];
            let peer_id = read_u64(&mut body);
            let mut info_hash = [0u8; 20];
            info_hash.copy_from_slice(body);
            Message::Handshake {
                peer_id,
                info_hash,
                version,
            }
        }
        other => return Err(ProtocolError::UnknownType(other)),
    };
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        let mut bf = Bitfield::new(13);
        bf.set(0);
        bf.set(12);
        vec![
            Message::KeepAlive,
            Message::Handshake {
                peer_id: 0xDEAD_BEEF,
                info_hash: [7; 20],
                version: 1,
            },
            Message::Choke,
            Message::Unchoke,
            Message::Interested,
            Message::NotInterested,
            Message::Have { index: 42 },
            Message::HaveBundle {
                indices: vec![0, 7, 42, u32::MAX],
            },
            Message::HaveBundle { indices: vec![] },
            Message::Bitfield(bf),
            Message::InterestWindow { start: 17, end: 81 },
            Message::InterestWindow {
                start: 0,
                end: u32::MAX,
            },
            Message::Request { index: u32::MAX },
            Message::RequestRendition {
                rendition: 3,
                index: 17,
            },
            Message::PeerListRequest,
            Message::PeerList {
                peers: vec![1, 5, 900],
            },
            Message::PeerList { peers: vec![] },
            Message::Cancel { index: 0 },
            Message::SegmentHeader {
                index: 9,
                bytes: 123_456_789,
            },
            Message::ManifestRequest,
            Message::ManifestData {
                payload: Bytes::from_static(b"#EXTM3U\n"),
            },
            Message::Goodbye,
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_message() {
        for msg in all_messages() {
            let wire = encode_to_bytes(&msg);
            let back = decode_single(&wire).unwrap_or_else(|e| panic!("{}: {e}", msg.name()));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn streaming_decoder_handles_byte_at_a_time() {
        let mut wire = BytesMut::new();
        let msgs = all_messages();
        for m in &msgs {
            encode(m, &mut wire);
        }
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for &b in wire.iter() {
            dec.feed(&[b]);
            while let Some(m) = dec.poll().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversize_frame_is_rejected_without_buffering() {
        let mut dec = Decoder::new();
        dec.feed(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert_eq!(
            dec.poll().unwrap_err(),
            ProtocolError::FrameTooLarge {
                len: MAX_FRAME_LEN + 1
            }
        );
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut dec = Decoder::new();
        dec.feed(&[0, 0, 0, 1, 99]);
        assert_eq!(dec.poll().unwrap_err(), ProtocolError::UnknownType(99));
    }

    #[test]
    fn wrong_body_length_is_rejected() {
        // A `Have` with a 2-byte body.
        let mut dec = Decoder::new();
        dec.feed(&[0, 0, 0, 3, 4, 0, 0]);
        assert_eq!(
            dec.poll().unwrap_err(),
            ProtocolError::BadBody { kind: 4, len: 2 }
        );
    }

    #[test]
    fn interest_window_wire_form_is_pinned() {
        let wire = encode_to_bytes(&Message::InterestWindow { start: 1, end: 9 });
        assert_eq!(&wire[..], &[0, 0, 0, 9, 16, 0, 0, 0, 1, 0, 0, 0, 9]);
    }

    #[test]
    fn interest_window_rejects_every_wrong_body_length() {
        // The body is exactly two u32s; any other length is malformed.
        for bad_len in [0usize, 1, 4, 7, 9, 12] {
            let mut frame = BytesMut::new();
            frame.put_u32(1 + bad_len as u32);
            frame.put_u8(16);
            frame.put_slice(&vec![0u8; bad_len]);
            assert_eq!(
                decode_single(&frame).unwrap_err(),
                ProtocolError::BadBody {
                    kind: 16,
                    len: bad_len
                },
                "body length {bad_len} must be rejected"
            );
        }
    }

    #[test]
    fn interest_window_decodes_arbitrary_bounds() {
        // Property check over a deterministic sample of (start, end)
        // pairs, including inverted and empty windows — the codec carries
        // them verbatim; semantics are the swarm layer's business.
        let mut state = 0x1234_5678u64;
        for _ in 0..256 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let start = (state >> 16) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let end = (state >> 16) as u32;
            let msg = Message::InterestWindow { start, end };
            assert_eq!(decode_single(&encode_to_bytes(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn bad_handshake_magic_is_rejected() {
        let mut wire = encode_to_bytes(&Message::Handshake {
            peer_id: 1,
            info_hash: [0; 20],
            version: 1,
        })
        .to_vec();
        wire[5] = b'X'; // corrupt the magic
        assert_eq!(decode_single(&wire).unwrap_err(), ProtocolError::BadMagic);
    }

    #[test]
    fn malformed_bitfield_is_rejected() {
        // Declares 3 bits but carries 2 bytes.
        let mut frame = BytesMut::new();
        frame.put_u32(1 + 4 + 2);
        frame.put_u8(5);
        frame.put_u32(3);
        frame.put_slice(&[0xFF, 0xFF]);
        assert_eq!(
            decode_single(&frame).unwrap_err(),
            ProtocolError::MalformedBitfield
        );
    }

    #[test]
    fn decode_single_rejects_trailing_bytes() {
        let mut wire = encode_to_bytes(&Message::Choke).to_vec();
        wire.push(0);
        assert!(decode_single(&wire).is_err());
    }

    #[test]
    fn decode_single_rejects_truncation() {
        let wire = encode_to_bytes(&Message::Have { index: 1 });
        assert!(decode_single(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_prefixes() {
        // Deterministic pseudo-fuzz: every prefix of a noisy buffer.
        let noise: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for end in 0..noise.len() {
            let mut dec = Decoder::new();
            dec.feed(&noise[..end]);
            // Poll until it errors or stalls; must never panic.
            for _ in 0..16 {
                match dec.poll() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
