//! The message vocabulary of the swarm protocol.
//!
//! Modelled on the BitTorrent peer wire protocol, adapted for streaming:
//! requests name whole segments (the transfer unit of HLS-style streaming),
//! the manifest replaces the torrent metainfo, and bulk segment bytes are
//! announced by a [`Message::SegmentHeader`] and then travel as a TCP
//! transfer rather than inline `piece` messages.

use bytes::Bytes;

/// Identifies the protocol in handshakes.
pub const PROTOCOL_MAGIC: [u8; 8] = *b"SPLCAST1";

/// Current protocol version.
pub const PROTOCOL_VERSION: u8 = 1;

/// A peer-wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Message {
    /// Connection liveness probe; carries nothing.
    KeepAlive,
    /// Opens a session between two peers.
    Handshake {
        /// The sender's stable identity.
        peer_id: u64,
        /// Identifies the video being swarmed (hash of the manifest).
        info_hash: [u8; 20],
        /// Protocol version of the sender.
        version: u8,
    },
    /// The sender will not service requests for now.
    Choke,
    /// The sender will service requests again.
    Unchoke,
    /// The sender wants segments the receiver holds.
    Interested,
    /// The sender no longer wants anything from the receiver.
    NotInterested,
    /// The sender has finished downloading a segment.
    Have {
        /// Segment index.
        index: u32,
    },
    /// Several completions announced at once — the coalesced form of
    /// [`Message::Have`] used by the event-driven control plane. Indices
    /// are sorted ascending and deduplicated on the wire.
    HaveBundle {
        /// Completed segment indices, ascending.
        indices: Vec<u32>,
    },
    /// Full availability map of the sender (sent after handshake).
    Bitfield(crate::Bitfield),
    /// The half-open segment range `[start, end)` the sender currently
    /// wants to hear availability about — the windowed refinement of
    /// [`Message::Interested`]. Uploaders may suppress Have/HaveBundle
    /// indices outside the receiver's latest window; a later announcement
    /// supersedes an earlier one, so this message is droppable like the
    /// availability traffic it governs.
    InterestWindow {
        /// First wanted segment index (the receiver's frontier).
        start: u32,
        /// One past the last wanted segment index.
        end: u32,
    },
    /// Ask the receiver to upload one segment.
    Request {
        /// Segment index.
        index: u32,
    },
    /// Ask the receiver to upload one segment of a specific rendition of a
    /// multi-bitrate ladder (the adaptive-bitrate baseline).
    RequestRendition {
        /// Ladder rung, ascending by bitrate.
        rendition: u8,
        /// Segment index.
        index: u32,
    },
    /// Withdraw an earlier request.
    Cancel {
        /// Segment index.
        index: u32,
    },
    /// Announces an imminent bulk transfer of a segment's bytes.
    SegmentHeader {
        /// Segment index.
        index: u32,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Ask the seeder for the video manifest.
    ManifestRequest,
    /// The manifest playlist, as `m3u8` text.
    ManifestData {
        /// UTF-8 playlist body.
        payload: Bytes,
    },
    /// Polite departure notice before going offline.
    Goodbye,
    /// Ask the tracker (the seeder doubles as one) for peers in the swarm.
    PeerListRequest,
    /// The tracker's answer: node addresses of known swarm members.
    PeerList {
        /// Opaque per-network node addresses.
        peers: Vec<u32>,
    },
}

impl Message {
    /// The wire type byte for this message. [`Message::KeepAlive`] has no
    /// type byte (it is the zero-length frame) and returns `None`.
    pub fn wire_type(&self) -> Option<u8> {
        Some(match self {
            Message::KeepAlive => return None,
            Message::Choke => 0,
            Message::Unchoke => 1,
            Message::Interested => 2,
            Message::NotInterested => 3,
            Message::Have { .. } => 4,
            Message::Bitfield(_) => 5,
            Message::Request { .. } => 6,
            Message::SegmentHeader { .. } => 7,
            Message::Cancel { .. } => 8,
            Message::ManifestRequest => 9,
            Message::ManifestData { .. } => 10,
            Message::Goodbye => 11,
            Message::RequestRendition { .. } => 12,
            Message::PeerListRequest => 13,
            Message::PeerList { .. } => 14,
            Message::HaveBundle { .. } => 15,
            Message::InterestWindow { .. } => 16,
            Message::Handshake { .. } => 20,
        })
    }

    /// A short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Message::KeepAlive => "keep-alive",
            Message::Handshake { .. } => "handshake",
            Message::Choke => "choke",
            Message::Unchoke => "unchoke",
            Message::Interested => "interested",
            Message::NotInterested => "not-interested",
            Message::Have { .. } => "have",
            Message::HaveBundle { .. } => "have-bundle",
            Message::Bitfield(_) => "bitfield",
            Message::InterestWindow { .. } => "interest-window",
            Message::Request { .. } => "request",
            Message::RequestRendition { .. } => "request-rendition",
            Message::Cancel { .. } => "cancel",
            Message::SegmentHeader { .. } => "segment-header",
            Message::ManifestRequest => "manifest-request",
            Message::ManifestData { .. } => "manifest-data",
            Message::Goodbye => "goodbye",
            Message::PeerListRequest => "peer-list-request",
            Message::PeerList { .. } => "peer-list",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_are_distinct() {
        let msgs = [
            Message::Choke,
            Message::Unchoke,
            Message::Interested,
            Message::NotInterested,
            Message::Have { index: 0 },
            Message::HaveBundle { indices: vec![0] },
            Message::Bitfield(crate::Bitfield::new(1)),
            Message::InterestWindow { start: 0, end: 0 },
            Message::Request { index: 0 },
            Message::SegmentHeader { index: 0, bytes: 0 },
            Message::Cancel { index: 0 },
            Message::ManifestRequest,
            Message::ManifestData {
                payload: Bytes::new(),
            },
            Message::Goodbye,
            Message::RequestRendition {
                rendition: 0,
                index: 0,
            },
            Message::PeerListRequest,
            Message::PeerList { peers: vec![] },
            Message::Handshake {
                peer_id: 0,
                info_hash: [0; 20],
                version: 1,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            let t = m.wire_type().expect("typed message");
            assert!(seen.insert(t), "duplicate wire type {t} for {}", m.name());
        }
        assert_eq!(Message::KeepAlive.wire_type(), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Message::KeepAlive.name(), "keep-alive");
        assert_eq!(Message::Request { index: 3 }.name(), "request");
    }
}
