//! Piece-availability bitsets exchanged between peers.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;

thread_local! {
    /// Per-thread intern table for [`Bitfield::full_interned`], keyed by
    /// length. A simulation thread only ever sees a handful of distinct
    /// segment counts, so the table stays tiny and lives for the thread.
    static FULL_FIELDS: RefCell<HashMap<u32, Arc<Bitfield>>> = RefCell::new(HashMap::new());
}

/// A fixed-width bitset tracking which segments a peer holds.
///
/// # Examples
///
/// ```
/// use splicecast_protocol::Bitfield;
///
/// let mut held = Bitfield::new(10);
/// held.set(3);
/// held.set(7);
/// assert_eq!(held.count_ones(), 2);
/// assert!(held.get(3) && !held.get(4));
/// assert_eq!(held.iter_set().collect::<Vec<_>>(), vec![3, 7]);
/// ```
/// The backing store is a boxed slice rather than a `Vec`: a bitfield
/// never grows after construction, and dropping the capacity word keeps
/// the struct at 24 bytes — swarms hold one of these per (peer, view)
/// pair, so the word matters at 10k-peer scale.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitfield {
    len: u32,
    bits: Box<[u8]>,
}

impl Bitfield {
    /// Creates an all-zero bitfield of `len` bits.
    pub fn new(len: u32) -> Self {
        Bitfield {
            len,
            bits: vec![0; (len as usize).div_ceil(8)].into_boxed_slice(),
        }
    }

    /// Reconstructs a bitfield from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedBitfield`] when the byte length
    /// does not match `len` bits or a spare bit is set.
    pub fn from_wire(len: u32, bytes: Vec<u8>) -> Result<Self, ProtocolError> {
        if bytes.len() != (len as usize).div_ceil(8) {
            return Err(ProtocolError::MalformedBitfield);
        }
        let spare_bits = bytes.len() * 8 - len as usize;
        if spare_bits > 0 {
            let last = *bytes.last().expect("non-empty when spare bits exist");
            if last & ((1u8 << spare_bits) - 1) != 0 {
                return Err(ProtocolError::MalformedBitfield);
            }
        }
        Ok(Bitfield {
            len,
            bits: bytes.into_boxed_slice(),
        })
    }

    /// Bytes of heap this bitfield owns (exactly `len.div_ceil(8)`; a
    /// boxed slice has no spare capacity). Input to the swarm's per-peer
    /// memory accounting.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the bitfield has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw bytes, most significant bit first (BitTorrent convention).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Whether bit `index` is set.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    #[inline]
    pub fn get(&self, index: u32) -> bool {
        assert!(index < self.len, "bit {index} out of range {}", self.len);
        self.bits[(index / 8) as usize] & (0x80 >> (index % 8)) != 0
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    #[inline]
    pub fn set(&mut self, index: u32) {
        assert!(index < self.len, "bit {index} out of range {}", self.len);
        self.bits[(index / 8) as usize] |= 0x80 >> (index % 8);
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    #[inline]
    pub fn clear(&mut self, index: u32) {
        assert!(index < self.len, "bit {index} out of range {}", self.len);
        self.bits[(index / 8) as usize] &= !(0x80 >> (index % 8));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// The expected value of the trailing byte when every bit is set:
    /// all ones except the spare (past-`len`) bits, which stay clear.
    #[inline]
    fn last_byte_mask(&self) -> u8 {
        let spare = self.bits.len() * 8 - self.len as usize;
        0xFFu8 << spare
    }

    /// True when every bit is set. Compares whole 64-bit words against
    /// `u64::MAX` and short-circuits on the first one with a hole, so a
    /// wide field costs len/64 comparisons, not a per-bit (or per-byte)
    /// scan; only the sub-word tail is checked byte-wise.
    pub fn is_complete(&self) -> bool {
        let Some((&last, body)) = self.bits.split_last() else {
            return true;
        };
        let mut words = body.chunks_exact(8);
        for word in words.by_ref() {
            if u64::from_ne_bytes(word.try_into().expect("8-byte chunk")) != u64::MAX {
                return false;
            }
        }
        words.remainder().iter().all(|&b| b == 0xFF) && last == self.last_byte_mask()
    }

    /// A shared all-set bitfield of `len` bits, interned per thread: every
    /// caller on the same thread gets a handle to one allocation. Used to
    /// summarize known-complete peers — thousands of per-pair views
    /// collapse onto a single full field instead of each owning a heap
    /// copy. The value is immutable behind the `Arc`; a caller that needs
    /// to diverge clones the inner `Bitfield` (copy-on-write by hand).
    pub fn full_interned(len: u32) -> Arc<Bitfield> {
        FULL_FIELDS.with(|cache| {
            Arc::clone(
                cache
                    .borrow_mut()
                    .entry(len)
                    .or_insert_with(|| Arc::new(Bitfield::full(len))),
            )
        })
    }

    /// A bitfield of `len` bits, all set.
    pub fn full(len: u32) -> Self {
        let mut bf = Bitfield::new(len);
        for b in &mut bf.bits {
            *b = 0xFF;
        }
        let mask = bf.last_byte_mask();
        if let Some(last) = bf.bits.last_mut() {
            *last = mask;
        }
        bf
    }

    /// Iterates over the indices of set bits, ascending. Skips zero bytes
    /// wholesale and walks set bits of a nonzero byte via leading-zeros
    /// (bits are MSB-first on the wire).
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .flat_map(|(byte, &b)| SetBits {
                byte: byte as u32,
                bits: b,
            })
    }

    /// Indices set in `self` but not in `other` — what we could offer them.
    ///
    /// Diffs byte-at-a-time (`self & !other`), so runs where the two fields
    /// agree cost one comparison per byte, not one per bit.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn missing_from(&self, other: &Bitfield) -> Vec<u32> {
        assert_eq!(self.len, other.len, "bitfield lengths differ");
        let mut out = Vec::new();
        for (byte, (&s, &o)) in self.bits.iter().zip(&other.bits).enumerate() {
            let diff = s & !o;
            if diff != 0 {
                out.extend(SetBits {
                    byte: byte as u32,
                    bits: diff,
                });
            }
        }
        out
    }

    /// True when any bit set in `self` is clear in `other` — the boolean
    /// form of [`Bitfield::missing_from`], O(bytes) with early exit and no
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn has_any_not_in(&self, other: &Bitfield) -> bool {
        assert_eq!(self.len, other.len, "bitfield lengths differ");
        self.bits
            .iter()
            .zip(&other.bits)
            .any(|(&s, &o)| s & !o != 0)
    }
}

/// Iterator over the set bits of one byte, ascending (MSB-first order).
struct SetBits {
    byte: u32,
    bits: u8,
}

impl Iterator for SetBits {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.bits == 0 {
            return None;
        }
        let bit = self.bits.leading_zeros();
        self.bits &= !(0x80 >> bit);
        Some(self.byte * 8 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bf = Bitfield::new(20);
        assert_eq!(bf.count_ones(), 0);
        bf.set(0);
        bf.set(19);
        bf.set(8);
        assert!(bf.get(0) && bf.get(19) && bf.get(8));
        assert!(!bf.get(1));
        bf.clear(8);
        assert!(!bf.get(8));
        assert_eq!(bf.count_ones(), 2);
    }

    #[test]
    fn completeness() {
        let mut bf = Bitfield::new(3);
        assert!(!bf.is_complete());
        bf.set(0);
        bf.set(1);
        bf.set(2);
        assert!(bf.is_complete());
        assert_eq!(bf, Bitfield::full(3));
    }

    #[test]
    fn wire_round_trip() {
        let mut bf = Bitfield::new(11);
        bf.set(1);
        bf.set(10);
        let restored = Bitfield::from_wire(11, bf.as_bytes().to_vec()).unwrap();
        assert_eq!(restored, bf);
    }

    #[test]
    fn wire_rejects_bad_lengths_and_spare_bits() {
        assert_eq!(
            Bitfield::from_wire(9, vec![0xFF]).unwrap_err(),
            ProtocolError::MalformedBitfield
        );
        // 9 bits needs 2 bytes, with the low 7 bits of byte 1 clear.
        assert!(Bitfield::from_wire(9, vec![0xFF, 0x80]).is_ok());
        assert_eq!(
            Bitfield::from_wire(9, vec![0xFF, 0xC0]).unwrap_err(),
            ProtocolError::MalformedBitfield
        );
    }

    #[test]
    fn missing_from_diffs() {
        let mut seeder = Bitfield::full(5);
        seeder.clear(4);
        let mut leecher = Bitfield::new(5);
        leecher.set(0);
        assert_eq!(seeder.missing_from(&leecher), vec![1, 2, 3]);
        assert_eq!(leecher.missing_from(&seeder), Vec::<u32>::new());
    }

    #[test]
    fn empty_bitfield() {
        let bf = Bitfield::new(0);
        assert!(bf.is_empty());
        assert!(bf.is_complete());
        assert_eq!(bf.iter_set().count(), 0);
        assert!(Bitfield::from_wire(0, vec![]).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bf = Bitfield::new(4);
        let _ = bf.get(4);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_diff_panics() {
        let _ = Bitfield::new(4).missing_from(&Bitfield::new(5));
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_has_any_panics() {
        let _ = Bitfield::new(4).has_any_not_in(&Bitfield::new(5));
    }

    /// Deterministic LCG for the property tests (no external fuzzing deps).
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_bitfield(len: u32, density_pct: u64, state: &mut u64) -> Bitfield {
        let mut bf = Bitfield::new(len);
        for i in 0..len {
            if lcg(state) % 100 < density_pct {
                bf.set(i);
            }
        }
        bf
    }

    /// The byte-skipping fast paths must agree with the definitional
    /// per-bit implementations across lengths (including non-multiples of
    /// 8 and zero) and densities (empty, sparse, dense, full).
    #[test]
    fn word_level_ops_match_naive() {
        let mut state = 0x5EED_CAFE;
        for len in [0u32, 1, 7, 8, 9, 16, 63, 64, 65, 200, 1031] {
            for density in [0u64, 3, 50, 97, 100] {
                let a = random_bitfield(len, density, &mut state);
                let b = random_bitfield(len, density, &mut state);

                let naive_set: Vec<u32> = (0..len).filter(|&i| a.get(i)).collect();
                assert_eq!(a.iter_set().collect::<Vec<_>>(), naive_set);

                let naive_missing: Vec<u32> = (0..len).filter(|&i| a.get(i) && !b.get(i)).collect();
                assert_eq!(a.missing_from(&b), naive_missing);
                assert_eq!(a.has_any_not_in(&b), !naive_missing.is_empty());

                let naive_complete = (0..len).all(|i| a.get(i));
                assert_eq!(a.is_complete(), naive_complete);
            }
        }
    }

    /// One allocation per (thread, length): repeated interning hands back
    /// the same `Arc`, equal to the per-bit full field.
    #[test]
    fn full_interned_shares_one_allocation() {
        for len in [0u32, 5, 64, 1031] {
            let a = Bitfield::full_interned(len);
            let b = Bitfield::full_interned(len);
            assert!(Arc::ptr_eq(&a, &b), "len {len} not interned");
            assert_eq!(*a, Bitfield::full(len));
            assert!(a.is_complete());
        }
        let five = Bitfield::full_interned(5);
        let sixtyfour = Bitfield::full_interned(64);
        assert!(!Arc::ptr_eq(&five, &sixtyfour));
    }

    #[test]
    fn full_matches_per_bit_construction() {
        for len in [0u32, 1, 7, 8, 9, 63, 64, 65, 200] {
            let mut naive = Bitfield::new(len);
            for i in 0..len {
                naive.set(i);
            }
            let fast = Bitfield::full(len);
            assert_eq!(fast, naive, "len {len}");
            assert!(fast.is_complete());
            // Spare bits stay clear, so the wire form stays canonical.
            assert!(Bitfield::from_wire(len, fast.as_bytes().to_vec()).is_ok());
        }
    }
}
