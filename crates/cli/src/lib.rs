//! # splicecast-cli
//!
//! Command-line front end for the splicecast experiment stack: run single
//! swarms, sweep parameters into figure-shaped tables, evaluate the
//! paper's formulas, and compare against the adaptive-bitrate baseline —
//! all without writing Rust.
//!
//! ```text
//! splicecast run --bandwidth 256 --splicing 4s --peers 8
//! splicecast sweep --bandwidths 128,256,512 --metric stalls
//! splicecast overhead
//! splicecast formula --bandwidth 128 --buffered 8 --segment-kb 512
//! splicecast abr --bandwidth 160 --algorithm buffer
//! ```

#![warn(missing_docs)]

mod args;
mod commands;

pub use args::Args;

/// Entry point: parse and dispatch, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands or bad options.
pub fn run(raw: &[String]) -> Result<String, String> {
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        return Ok(commands::help());
    }
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "run" => commands::run_swarm_command(&args),
        "sweep" => commands::sweep_command(&args),
        "overhead" => commands::overhead_command(&args),
        "formula" => commands::formula_command(&args),
        "abr" => commands::abr_command(&args),
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(tokens: &[&str]) -> Result<String, String> {
        run(&tokens.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn help_is_always_available() {
        for invocation in [&["help"][..], &["--help"], &["-h"], &[]] {
            let text = call(invocation).unwrap();
            assert!(text.contains("splicecast"), "{invocation:?}");
            assert!(text.contains("sweep"));
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(call(&["dance"]).unwrap_err().contains("unknown command"));
    }

    #[test]
    fn formula_command_prints_eq1() {
        let text = call(&[
            "formula",
            "--bandwidth",
            "128",
            "--buffered",
            "8",
            "--segment-kb",
            "512",
        ])
        .unwrap();
        assert!(text.contains("= 2 simultaneous"), "{text}");
        assert!(text.contains("B·T"), "{text}");
    }

    #[test]
    fn overhead_command_prints_table() {
        let text = call(&["overhead", "--clip-secs", "20"]).unwrap();
        assert!(text.contains("gop"));
        assert!(text.contains("overhead"));
    }

    #[test]
    fn run_command_small_swarm() {
        let text = call(&[
            "run",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "512",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(text.contains("stalls"), "{text}");
        assert!(text.contains("startup"), "{text}");
    }

    #[test]
    fn run_command_windowed_dissemination() {
        let text = call(&[
            "run",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "512",
            "--seeds",
            "1",
            "--control-plane",
            "eventful",
            "--dissemination",
            "windowed",
        ])
        .unwrap();
        assert!(text.contains("stalls"), "{text}");
    }

    #[test]
    fn run_command_scale_profile() {
        let text = call(&[
            "run",
            "--profile",
            "scale",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "512",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(text.contains("stalls"), "{text}");
        // The scale profile's eventful plane coalesces Haves into bundles.
        assert!(text.contains("bundles"), "{text}");
        // Memory accounting rides along in every run report.
        assert!(text.contains("peer memory"), "{text}");
    }

    #[test]
    fn scale_profile_allows_explicit_overrides() {
        // --dissemination full overrides the profile's windowed default.
        let text = call(&[
            "run",
            "--profile",
            "scale",
            "--dissemination",
            "full",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "512",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(!text.contains("interest windows"), "{text}");
    }

    #[test]
    fn unknown_profile_errors() {
        let err = call(&["run", "--profile", "huge"]).unwrap_err();
        assert!(err.contains("unknown profile"), "{err}");
    }

    #[test]
    fn run_command_sharded_channels() {
        let text = call(&[
            "run",
            "--channels",
            "2",
            "--workers",
            "2",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "512",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(text.contains("2 channels"), "{text}");
        assert!(text.contains("ch0"), "{text}");
        assert!(text.contains("ch1"), "{text}");
        assert!(text.contains("aggregate over 2 runs"), "{text}");
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = call(&["sweep", "--workers", "0"]).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn run_command_rejects_windowed_without_eventful() {
        let err = call(&["run", "--dissemination", "windowed"]).unwrap_err();
        assert!(err.contains("eventful"), "{err}");
    }

    #[test]
    fn run_command_rejects_bad_splicing() {
        let err = call(&["run", "--splicing", "nonsense"]).unwrap_err();
        assert!(err.contains("splicing"), "{err}");
    }

    #[test]
    fn sweep_command_produces_rows() {
        let text = call(&[
            "sweep",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidths",
            "256,512",
            "--splicings",
            "gop,4s",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(text.contains("256"), "{text}");
        assert!(text.contains("512"), "{text}");
        assert!(text.contains("gop"), "{text}");
    }

    #[test]
    fn sweep_chart_flag_draws() {
        let text = call(&[
            "sweep",
            "--peers",
            "3",
            "--clip-secs",
            "12",
            "--bandwidths",
            "256,512",
            "--splicings",
            "4s",
            "--seeds",
            "1",
            "--chart",
        ])
        .unwrap();
        assert!(text.contains("o = 4s"), "{text}");
    }

    #[test]
    fn abr_command_reports_quality() {
        let text = call(&[
            "abr",
            "--clients",
            "3",
            "--clip-secs",
            "12",
            "--bandwidth",
            "200",
            "--algorithm",
            "buffer",
            "--seeds",
            "1",
        ])
        .unwrap();
        assert!(text.contains("Mbps"), "{text}");
    }
}
