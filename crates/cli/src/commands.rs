//! The CLI subcommands.

use splicecast_core::{
    max_cdn_segment_bytes, max_cdn_segment_secs, optimal_pool_size, run_abr, run_averaged,
    sweep_with_workers, AbrAlgorithm, AbrConfig, CdnConfig, CdnOutageConfig, ChurnConfig,
    CrashChurnConfig, DefenseConfig, DiscoveryMode, ExperimentConfig, FaultPlanConfig, Ladder,
    LinkFlapConfig, PolicyConfig, ShardedWorkload, SplicingSpec, SweepPoint, Table, VideoSpec,
};

use crate::args::Args;

/// The `help` text.
pub fn help() -> String {
    "\
splicecast — P2P video-splicing experiments (ICDCS 2015 reproduction)

USAGE:
    splicecast <COMMAND> [--option value]...

COMMANDS:
    run       stream one configuration and print its metrics
    sweep     bandwidth × splicing sweep printed as a figure-style table
    overhead  splicing byte-overhead statistics (no simulation)
    formula   evaluate Eq. 1 and the §IV CDN segment-size bound
    abr       adaptive-bitrate baseline (CDN-served ladder)
    help      this text

COMMON OPTIONS (run / sweep):
    --bandwidth KB        peer access bandwidth in kB/s        [128]
    --bandwidths A,B,...  sweep bandwidths in kB/s             [128,256,512,768]
    --splicing S          gop | <secs>s | bytes:<n>            [4s]
    --splicings A,B,...   sweep splicings                      [gop,2s,4s,8s]
    --policy P            adaptive | fixed:<k>                 [adaptive]
    --peers N             number of leechers                   [19]
    --clip-secs S         video length                         [120]
    --seeds A,B,...       seeds to average over                [101,202,303]
    --churn FRAC          volatile fraction (45 s mean life)   [off]
    --cdn                 add a CDN node (hybrid mode)
    --cdn-only            serve from the CDN only (implies --cdn)
    --tracker             tracker-based peer discovery
    --flow-model M        network model: rounds | fluid         [rounds]
    --control-plane C     swarm control plane: legacy | eventful  [legacy]
    --scheduler S         source scheduler: scan | indexed      [indexed]
    --dissemination D     availability announcements: full | windowed  [full]
    --profile P           knob preset: paper | scale            [paper]
                          (scale = fluid + eventful + windowed + indexed;
                           explicit flags still override)
    --have-window SECS    eventful Have-coalescing window  [auto: scales with
                          segment duration, clamped to 1-4 pump intervals]
    --workers N           worker threads for sweep / --channels  [all cores]
    --channels C          run C independent channel swarms (sharded)  [off]
    --metric M            sweep metric: stalls|stallsecs|startup  [stalls]
    --chart               draw the sweep as an ASCII chart
    --csv                 also print machine-readable rows

FAULT / DEFENSE OPTIONS (run / sweep):
    --crash FRAC          crash-stop fraction (silent, no Goodbye)  [off]
    --crash-uptime SECS   mean uptime before a crash           [45]
    --msg-loss P          control-message drop probability     [0]
    --msg-delay P         control-message delay probability    [0]
    --msg-delay-max SECS  max injected control delay           [2]
    --flaps N             degraded-link windows across the run [0]
    --cdn-outages N       CDN outage windows (needs --cdn)     [0]
    --defend              enable the peer-side failure defenses

FORMULA OPTIONS:
    --bandwidth KB --buffered SECS --segment-kb KB

ABR OPTIONS:
    --clients N --bandwidth KB --algorithm buffer|rate|fixed:<rung>
"
    .to_owned()
}

fn parse_splicing(raw: &str) -> Result<SplicingSpec, String> {
    if raw == "gop" {
        return Ok(SplicingSpec::Gop);
    }
    if let Some(bytes) = raw.strip_prefix("bytes:") {
        let n: u64 = bytes
            .parse()
            .map_err(|_| format!("bad splicing byte count `{bytes}`"))?;
        return Ok(SplicingSpec::Bytes(n));
    }
    let secs = raw.trim_end_matches('s');
    secs.parse::<f64>()
        .map(SplicingSpec::Duration)
        .map_err(|_| format!("bad splicing `{raw}` (expected gop, <secs>s, or bytes:<n>)"))
}

fn parse_policy(raw: &str) -> Result<PolicyConfig, String> {
    if raw == "adaptive" {
        return Ok(PolicyConfig::Adaptive);
    }
    if let Some(k) = raw.strip_prefix("fixed:") {
        let k: usize = k.parse().map_err(|_| format!("bad pool size `{k}`"))?;
        return Ok(PolicyConfig::Fixed(k));
    }
    Err(format!(
        "bad policy `{raw}` (expected adaptive or fixed:<k>)"
    ))
}

fn base_config(args: &Args) -> Result<ExperimentConfig, String> {
    // A profile sets the *defaults* for the plane/model knobs; explicit
    // flags still override any of them.
    let (default_flow, default_plane, default_sched, default_dissem) =
        match args.value("profile")?.unwrap_or("paper") {
            "paper" => ("rounds", "legacy", "indexed", "full"),
            "scale" => ("fluid", "eventful", "indexed", "windowed"),
            other => {
                return Err(format!(
                    "unknown profile `{other}` (expected paper or scale)"
                ))
            }
        };
    let mut config = ExperimentConfig::paper_baseline();
    config.video = VideoSpec {
        duration_secs: args.num("clip-secs", 120.0)?,
        ..VideoSpec::default()
    };
    let bandwidth_kb: f64 = args.num("bandwidth", 128.0)?;
    config = config.with_bandwidth(bandwidth_kb * 1_000.0);
    config = config.with_splicing(parse_splicing(args.value("splicing")?.unwrap_or("4s"))?);
    config = config.with_policy(parse_policy(args.value("policy")?.unwrap_or("adaptive"))?);
    config = config.with_leechers(args.num("peers", 19usize)?);
    config = config.with_flow_model(
        args.value("flow-model")?
            .unwrap_or(default_flow)
            .parse::<splicecast_core::netsim::FlowModel>()?,
    );
    config = config.with_control_plane(
        args.value("control-plane")?
            .unwrap_or(default_plane)
            .parse::<splicecast_core::ControlPlane>()?,
    );
    config = config.with_scheduler(
        args.value("scheduler")?
            .unwrap_or(default_sched)
            .parse::<splicecast_core::SchedulerMode>()?,
    );
    config = config.with_dissemination(
        args.value("dissemination")?
            .unwrap_or(default_dissem)
            .parse::<splicecast_core::DisseminationMode>()?,
    );
    if config.swarm.dissemination == splicecast_core::DisseminationMode::Windowed
        && config.swarm.control_plane != splicecast_core::ControlPlane::Eventful
    {
        return Err("--dissemination windowed requires --control-plane eventful".to_owned());
    }
    if let Some(raw) = args.value("have-window")? {
        let secs: f64 = raw
            .parse()
            .map_err(|_| format!("bad --have-window `{raw}`"))?;
        config.swarm.have_coalesce_secs = Some(secs);
    }
    let churn: f64 = args.num("churn", 0.0)?;
    if churn > 0.0 {
        config.swarm.churn = Some(ChurnConfig::new(churn, 45.0));
    }
    if args.flag("cdn") || args.flag("cdn-only") {
        config.swarm.cdn = Some(CdnConfig::default());
    }
    if args.flag("cdn-only") {
        config.swarm.p2p = false;
    }
    if args.flag("tracker") {
        config.swarm.discovery = DiscoveryMode::Tracker;
    }
    let crash: f64 = args.num("crash", 0.0)?;
    let crash_uptime: f64 = args.num("crash-uptime", 45.0)?;
    let msg_loss: f64 = args.num("msg-loss", 0.0)?;
    let msg_delay: f64 = args.num("msg-delay", 0.0)?;
    let msg_delay_max: f64 = args.num("msg-delay-max", 2.0)?;
    let flaps: usize = args.num("flaps", 0usize)?;
    let outages: usize = args.num("cdn-outages", 0usize)?;
    if outages > 0 && config.swarm.cdn.is_none() {
        return Err("--cdn-outages needs --cdn".to_owned());
    }
    if crash > 0.0 || msg_loss > 0.0 || msg_delay > 0.0 || flaps > 0 || outages > 0 {
        let window_secs = config.video.duration_secs;
        let degraded = config.swarm.peer_bandwidth_bytes_per_sec / 8.0;
        config = config.with_faults(FaultPlanConfig {
            crash: (crash > 0.0).then(|| CrashChurnConfig::new(crash, crash_uptime)),
            message_loss: msg_loss,
            message_delay_prob: msg_delay,
            message_delay_max_secs: msg_delay_max,
            link_flaps: (flaps > 0).then_some(LinkFlapConfig {
                count: flaps,
                degraded_bytes_per_sec: degraded,
                duration_secs: 10.0,
                window_secs,
            }),
            cdn_outages: (outages > 0).then_some(CdnOutageConfig {
                count: outages,
                duration_secs: 10.0,
                window_secs,
            }),
        });
    }
    if args.flag("defend") {
        config = config.with_defense(DefenseConfig::default());
    }
    Ok(config)
}

fn seeds(args: &Args) -> Result<Vec<u64>, String> {
    let list = args.num_list("seeds", &[101u64, 202, 303])?;
    if list.is_empty() {
        return Err("--seeds needs at least one seed".to_owned());
    }
    Ok(list)
}

/// `--workers N`, defaulting to the machine's parallelism. Results never
/// depend on the count — only wall-clock time does.
fn workers(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n: usize = args.num("workers", default)?;
    if n == 0 {
        return Err("--workers needs at least 1".to_owned());
    }
    Ok(n)
}

/// `splicecast run`.
pub fn run_swarm_command(args: &Args) -> Result<String, String> {
    let config = base_config(args)?;
    let channels: usize = args.num("channels", 0usize)?;
    if channels > 0 {
        return sharded_run(args, &config, channels);
    }
    let averaged = run_averaged(&config, &seeds(args)?);
    let mut out = String::new();
    out.push_str(&format!(
        "streaming {:.0}s of {:.1} Mbps video to {} peers at {:.0} kB/s ({} splicing, {} policy)\n\n",
        config.video.duration_secs,
        config.video.bitrate_bps as f64 / 1e6,
        config.swarm.n_leechers,
        config.swarm.peer_bandwidth_bytes_per_sec / 1e3,
        config.splicing.label(),
        match config.swarm.policy {
            PolicyConfig::Adaptive => "adaptive".to_owned(),
            PolicyConfig::Fixed(k) => format!("fixed-{k}"),
        },
    ));
    out.push_str(&format!(
        "  segments:          {}\n",
        averaged.segment_count
    ));
    out.push_str(&format!(
        "  byte overhead:     {:.1}%\n",
        averaged.overhead_ratio * 100.0
    ));
    out.push_str(&format!(
        "  stalls:            {:.1}  (rounded: {})\n",
        averaged.stalls.mean, averaged.rounded_stalls
    ));
    out.push_str(&format!(
        "  stall time:        {:.1} s\n",
        averaged.stall_secs.mean
    ));
    out.push_str(&format!(
        "  startup:           {:.1} s\n",
        averaged.startup_secs.mean
    ));
    out.push_str(&format!(
        "  completion:        {:.0}%\n",
        averaged.completion_rate * 100.0
    ));
    out.push_str(&format!(
        "  peer offload:      {:.0}%\n",
        averaged.peer_offload * 100.0
    ));
    if averaged.mem.total_bytes() > 0 {
        out.push_str(&format!(
            "  peer memory:       {:.1} kB/peer ({:.1} kB pre-diet)\n",
            averaged.mem_bytes_per_peer(config.swarm.n_leechers) / 1e3,
            averaged.prediet_bytes_per_peer(config.swarm.n_leechers) / 1e3,
        ));
        let sched = averaged.sched;
        if sched.sparse_sets + sched.dense_sets + sched.complete_peers > 0 {
            let runs = averaged.runs as f64;
            out.push_str(&format!(
                "  holder sets:       {:.0} sparse, {:.0} dense ({:.0} promotions), {:.0} peers complete-folded (per run)\n",
                sched.sparse_sets as f64 / runs,
                sched.dense_sets as f64 / runs,
                sched.dense_promotions as f64 / runs,
                sched.complete_peers as f64 / runs,
            ));
        }
    }
    let runs = averaged.runs as f64;
    let control = averaged.control;
    out.push_str(&format!(
        "  have traffic:      {:.0} haves, {:.0} bundles, {:.0} suppressed (per run)\n",
        control.haves_sent as f64 / runs,
        control.have_bundles_sent as f64 / runs,
        control.haves_suppressed as f64 / runs,
    ));
    if control.have_bundles_sent > 0 {
        out.push_str(&format!(
            "  coalescing:        {:.1} haves per bundle\n",
            control.mean_bundle_size()
        ));
    }
    if control.pumps() > 0 {
        out.push_str(&format!(
            "  pump fires:        {:.0} per run ({:.0} armed, {:.0} heartbeat)\n",
            control.pumps() as f64 / runs,
            control.pumps_armed as f64 / runs,
            control.pumps_heartbeat as f64 / runs,
        ));
    }
    let sched = averaged.sched;
    if sched.passes + sched.skips > 0 {
        out.push_str(&format!(
            "  scheduling:        {:.0} passes, {:.0} skipped (per run)\n",
            sched.passes as f64 / runs,
            sched.skips as f64 / runs,
        ));
    }
    let dissem = averaged.dissem;
    if dissem.windows_sent > 0 {
        out.push_str(&format!(
            "  interest windows:  {:.0} sent, {:.0} catch-up bundles, {:.0} indices deferred, {:.0} folded (per run)\n",
            dissem.windows_sent as f64 / runs,
            dissem.catchup_bundles as f64 / runs,
            dissem.deferred_indices as f64 / runs,
            dissem.fold_inserts as f64 / runs,
        ));
    }
    let injected = averaged.injected;
    let fault = averaged.fault;
    if injected.messages_dropped + injected.messages_delayed + injected.outages_started > 0
        || fault.crashes > 0
    {
        out.push_str(&format!(
            "  injected faults:   {:.0} msgs dropped, {:.0} delayed, {:.0} crashes, {:.0} CDN outages (per run)\n",
            injected.messages_dropped as f64 / runs,
            injected.messages_delayed as f64 / runs,
            fault.crashes as f64 / runs,
            injected.outages_started as f64 / runs,
        ));
    }
    if fault.silent_evictions
        + fault.backoff_bans
        + fault.cdn_fallbacks
        + fault.watchdog_trips
        + fault.keepalives_sent
        + fault.manifest_retries
        > 0
    {
        out.push_str(&format!(
            "  defenses:          {:.0} evictions, {:.0} bans, {:.0} CDN fallbacks, {:.0} watchdog trips, {:.0} keepalives (per run)\n",
            fault.silent_evictions as f64 / runs,
            fault.backoff_bans as f64 / runs,
            fault.cdn_fallbacks as f64 / runs,
            fault.watchdog_trips as f64 / runs,
            fault.keepalives_sent as f64 / runs,
        ));
    }
    if args.flag("csv") {
        out.push_str(&format!(
            "\ncsv:\nstalls,stall_secs,startup_secs,completion,offload\n{:.2},{:.2},{:.2},{:.3},{:.3}\n",
            averaged.stalls.mean,
            averaged.stall_secs.mean,
            averaged.startup_secs.mean,
            averaged.completion_rate,
            averaged.peer_offload,
        ));
    }
    Ok(out)
}

/// `splicecast run --channels C`: C independent channel swarms of the
/// same configuration, fanned over worker threads.
fn sharded_run(args: &Args, config: &ExperimentConfig, channels: usize) -> Result<String, String> {
    let workload = ShardedWorkload::with_channel_count(config, channels, &seeds(args)?);
    let outcome = workload.run(workers(args)?);
    let mut out = format!(
        "streaming {:.0}s of {:.1} Mbps video on {} channels × {} peers at {:.0} kB/s\n\n",
        config.video.duration_secs,
        config.video.bitrate_bps as f64 / 1e6,
        channels,
        config.swarm.n_leechers,
        config.swarm.peer_bandwidth_bytes_per_sec / 1e3,
    );
    for result in &outcome.channels {
        out.push_str(&format!(
            "  {:<6} stalls {:>5.1}  stall time {:>6.1} s  startup {:>5.1} s  completion {:>3.0}%\n",
            result.channel,
            result.averaged.stalls.mean,
            result.averaged.stall_secs.mean,
            result.averaged.startup_secs.mean,
            result.averaged.completion_rate * 100.0,
        ));
    }
    let agg = &outcome.aggregate;
    out.push_str(&format!(
        "\naggregate over {} runs:\n  stalls:            {:.1}  (rounded: {})\n  stall time:        {:.1} s\n  startup:           {:.1} s\n  completion:        {:.0}%\n  peer offload:      {:.0}%\n",
        agg.runs,
        agg.stalls.mean,
        agg.rounded_stalls,
        agg.stall_secs.mean,
        agg.startup_secs.mean,
        agg.completion_rate * 100.0,
        agg.peer_offload * 100.0,
    ));
    if agg.mem.total_bytes() > 0 {
        out.push_str(&format!(
            "  peer memory:       {:.1} kB/peer ({:.1} kB pre-diet)\n",
            agg.mem_bytes_per_peer(config.swarm.n_leechers) / 1e3,
            agg.prediet_bytes_per_peer(config.swarm.n_leechers) / 1e3,
        ));
        let sched = agg.sched;
        if sched.sparse_sets + sched.dense_sets + sched.complete_peers > 0 {
            let runs = agg.runs as f64;
            out.push_str(&format!(
                "  holder sets:       {:.0} sparse, {:.0} dense ({:.0} promotions), {:.0} peers complete-folded (per run)\n",
                sched.sparse_sets as f64 / runs,
                sched.dense_sets as f64 / runs,
                sched.dense_promotions as f64 / runs,
                sched.complete_peers as f64 / runs,
            ));
        }
    }
    Ok(out)
}

/// `splicecast sweep`.
pub fn sweep_command(args: &Args) -> Result<String, String> {
    let bandwidths = args.num_list("bandwidths", &[128.0f64, 256.0, 512.0, 768.0])?;
    let splicing_names: Vec<String> = match args.value("splicings")? {
        None => vec!["gop".into(), "2s".into(), "4s".into(), "8s".into()],
        Some(raw) => raw.split(',').map(|s| s.trim().to_owned()).collect(),
    };
    let metric = args.value("metric")?.unwrap_or("stalls");
    let seeds = seeds(args)?;

    let mut table = Table::new(
        match metric {
            "stalls" => "Stalls per viewer",
            "stallsecs" => "Total stall duration, seconds",
            "startup" => "Startup time, seconds",
            other => return Err(format!("unknown metric `{other}`")),
        },
        "bandwidth (kB/s)",
        &splicing_names
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    // Every (bandwidth, splicing) cell is an independent deterministic
    // experiment; fan them out over worker threads. Results are identical
    // for any worker count.
    let mut points = Vec::new();
    for &bandwidth in &bandwidths {
        for name in &splicing_names {
            points.push(SweepPoint {
                label: format!("{name} @ {bandwidth:.0} kB/s"),
                config: base_config(args)?
                    .with_bandwidth(bandwidth * 1_000.0)
                    .with_splicing(parse_splicing(name)?),
            });
        }
    }
    let results = sweep_with_workers(&points, &seeds, workers(args)?);
    for (i, &bandwidth) in bandwidths.iter().enumerate() {
        let row: Vec<f64> = results[i * splicing_names.len()..(i + 1) * splicing_names.len()]
            .iter()
            .map(|(_, averaged)| match metric {
                "stalls" => averaged.stalls.mean,
                "stallsecs" => averaged.stall_secs.mean,
                _ => averaged.startup_secs.mean,
            })
            .collect();
        table.push_row(&format!("{bandwidth:.0}"), &row);
    }
    let mut out = table.to_string();
    if args.flag("chart") {
        out.push('\n');
        out.push_str(&splicecast_core::chart::render(&table, 56, 14));
    }
    if args.flag("csv") {
        out.push_str("\ncsv:\n");
        out.push_str(&table.to_csv());
    }
    Ok(out)
}

/// `splicecast overhead`.
pub fn overhead_command(args: &Args) -> Result<String, String> {
    let video = VideoSpec {
        duration_secs: args.num("clip-secs", 120.0)?,
        ..VideoSpec::default()
    }
    .build();
    let durations = args.num_list("durations", &[1.0f64, 2.0, 4.0, 8.0, 16.0])?;
    let mut table = Table::new(
        "Splicing overhead",
        "splicing",
        &["segments", "total MB", "overhead %", "mean kB", "max kB"],
    );
    let mut variants: Vec<(String, SplicingSpec)> = vec![("gop".into(), SplicingSpec::Gop)];
    variants.extend(
        durations
            .iter()
            .map(|&d| (format!("{d}s"), SplicingSpec::Duration(d))),
    );
    for (name, spec) in &variants {
        let list = spec.splice(&video);
        table.push_row(
            name,
            &[
                list.len() as f64,
                list.total_bytes() as f64 / 1e6,
                list.overhead_ratio() * 100.0,
                list.mean_segment_bytes() / 1e3,
                list.max_segment_bytes() as f64 / 1e3,
            ],
        );
    }
    let mut out = table.to_string();
    if args.flag("csv") {
        out.push_str("\ncsv:\n");
        out.push_str(&table.to_csv());
    }
    Ok(out)
}

/// `splicecast formula`.
pub fn formula_command(args: &Args) -> Result<String, String> {
    let bandwidth_kb: f64 = args.num("bandwidth", 128.0)?;
    let buffered: f64 = args.num("buffered", 4.0)?;
    let segment_kb: f64 = args.num("segment-kb", 512.0)?;
    let bitrate_mbps: f64 = args.num("bitrate-mbps", 1.0)?;
    let b = bandwidth_kb * 1_000.0;
    let w = (segment_kb * 1_000.0) as u64;
    let k = optimal_pool_size(b, buffered, w);
    let cdn_bytes = max_cdn_segment_bytes(b, buffered);
    let cdn_secs = max_cdn_segment_secs(b, buffered, bitrate_mbps * 1e6);
    Ok(format!(
        "Eq. 1 (§III): with B = {bandwidth_kb:.0} kB/s, T = {buffered:.1} s, W = {segment_kb:.0} kB\n\
         \x20 k = max(⌊B·T/W⌋, 1) = {k} simultaneous downloads\n\n\
         §IV bound: a CDN-served segment must fit B·T = {} kB\n\
         \x20 at {bitrate_mbps:.1} Mbps that allows segments up to {cdn_secs:.1} s\n",
        cdn_bytes / 1000,
    ))
}

/// `splicecast abr`.
pub fn abr_command(args: &Args) -> Result<String, String> {
    let algorithm = match args.value("algorithm")?.unwrap_or("buffer") {
        "buffer" => AbrAlgorithm::BufferBased {
            low_secs: 4.0,
            high_secs: 16.0,
        },
        "rate" => AbrAlgorithm::RateBased { safety: 0.8 },
        other => {
            if let Some(rung) = other.strip_prefix("fixed:") {
                let rung: usize = rung
                    .parse()
                    .map_err(|_| format!("bad rendition `{rung}`"))?;
                AbrAlgorithm::FixedRendition(rung)
            } else {
                return Err(format!("unknown algorithm `{other}`"));
            }
        }
    };
    let ladder = Ladder::builder()
        .duration_secs(args.num("clip-secs", 120.0)?)
        .bitrates(&[250_000, 500_000, 1_000_000])
        .segment_secs(4.0)
        .seed(2015)
        .build();
    let config = AbrConfig {
        n_clients: args.num("clients", 19usize)?,
        client_bandwidth_bytes_per_sec: args.num("bandwidth", 256.0)? * 1_000.0,
        algorithm,
        max_sim_secs: 900.0,
        ..AbrConfig::default()
    };
    let seeds = seeds(args)?;
    let (mut stalls, mut stall_secs, mut startup, mut quality) = (0.0, 0.0, 0.0, 0.0);
    for &seed in &seeds {
        let metrics = run_abr(&ladder, &config, seed);
        stalls += metrics.mean_stalls();
        stall_secs += metrics.mean_stall_secs();
        startup += metrics.mean_startup_secs();
        quality += metrics.mean_bitrate_bps();
    }
    let n = seeds.len() as f64;
    Ok(format!(
        "ABR ({}) with {} clients at {:.0} kB/s, ladder 0.25/0.5/1.0 Mbps:\n\
         \x20 stalls:     {:.1}\n\
         \x20 stall time: {:.1} s\n\
         \x20 startup:    {:.1} s\n\
         \x20 delivered:  {:.2} Mbps\n",
        algorithm.name(),
        config.n_clients,
        config.client_bandwidth_bytes_per_sec / 1e3,
        stalls / n,
        stall_secs / n,
        startup / n,
        quality / n / 1e6,
    ))
}
