//! The `splicecast` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match splicecast_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `splicecast help` for usage");
            ExitCode::FAILURE
        }
    }
}
