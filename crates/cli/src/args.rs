//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The first non-flag argument.
    pub command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments.
    ///
    /// Flags take exactly one value (`--peers 8`). Bare flags are written
    /// `--cdn true` style or given the implicit value `"true"` when the
    /// next token is another flag or the end of input.
    ///
    /// # Errors
    ///
    /// Returns a message when no subcommand is present or an option is
    /// repeated.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked").clone(),
                    _ => "true".to_owned(),
                };
                if args.options.insert(key.to_owned(), value).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            } else if args.command.is_empty() {
                args.command = token.clone();
            } else {
                return Err(format!("unexpected argument `{token}`"));
            }
        }
        if args.command.is_empty() {
            return Err("no command given".to_owned());
        }
        Ok(args)
    }

    /// The raw value of an option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{raw}`")),
        }
    }

    /// A comma-separated list of numbers, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when any element does not parse.
    pub fn num_list<T>(&self, key: &str, default: &[T]) -> Result<Vec<T>, String>
    where
        T: std::str::FromStr + Clone,
    {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|piece| {
                    piece
                        .trim()
                        .parse()
                        .map_err(|_| format!("--{key}: cannot parse `{piece}`"))
                })
                .collect(),
        }
    }

    /// Names of all options that were passed.
    pub fn option_keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(&tokens.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["run", "--peers", "8", "--splicing", "gop", "--cdn"]).unwrap();
        assert_eq!(args.command, "run");
        assert_eq!(args.get("peers"), Some("8"));
        assert_eq!(args.get("splicing"), Some("gop"));
        assert!(args.flag("cdn"));
        assert!(!args.flag("tracker"));
    }

    #[test]
    fn numeric_helpers() {
        let args = parse(&["run", "--peers", "8", "--bandwidths", "128,256"]).unwrap();
        assert_eq!(args.num("peers", 3usize).unwrap(), 8);
        assert_eq!(args.num("seed", 42u64).unwrap(), 42);
        assert_eq!(
            args.num_list("bandwidths", &[64.0f64]).unwrap(),
            vec![128.0, 256.0]
        );
        assert_eq!(args.num_list("missing", &[64.0f64]).unwrap(), vec![64.0]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["run", "extra"]).is_err());
        assert!(parse(&["run", "--x", "1", "--x", "2"]).is_err());
        let args = parse(&["run", "--peers", "eight"]).unwrap();
        assert!(args.num("peers", 1usize).is_err());
    }

    #[test]
    fn bare_flag_before_another_flag() {
        let args = parse(&["run", "--cdn", "--peers", "4"]).unwrap();
        assert!(args.flag("cdn"));
        assert_eq!(args.get("peers"), Some("4"));
    }
}
