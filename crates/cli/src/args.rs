//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// The stored form of one option: its value plus whether the value was
/// implied (a bare flag) rather than written by the user. Accessors that
/// need a real value reject implicit ones instead of silently parsing the
/// stand-in `"true"` — a trailing `--peers` or a `--splicing --peers 4`
/// typo surfaces as a clear error.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OptionValue {
    value: String,
    implicit: bool,
}

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The first non-flag argument.
    pub command: String,
    options: BTreeMap<String, OptionValue>,
}

impl Args {
    /// Parses raw arguments.
    ///
    /// Flags take exactly one value, written `--peers 8` or `--peers=8`.
    /// Bare flags (`--cdn`) get the implicit value `"true"` when the next
    /// token is another flag or the end of input; options that require a
    /// value report an error in that case instead of mis-parsing. A value
    /// that itself starts with `--` must use the `=` form.
    ///
    /// # Errors
    ///
    /// Returns a message when no subcommand is present, an option is
    /// repeated, or an option name is empty.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let (key, opt) = match key.split_once('=') {
                    Some((key, value)) => (
                        key,
                        OptionValue {
                            value: value.to_owned(),
                            implicit: false,
                        },
                    ),
                    None => match iter.peek() {
                        Some(next) if !next.starts_with("--") => (
                            key,
                            OptionValue {
                                value: iter.next().expect("peeked").clone(),
                                implicit: false,
                            },
                        ),
                        _ => (
                            key,
                            OptionValue {
                                value: "true".to_owned(),
                                implicit: true,
                            },
                        ),
                    },
                };
                if key.is_empty() {
                    return Err(format!("empty option name in `{token}`"));
                }
                if args.options.insert(key.to_owned(), opt).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            } else if args.command.is_empty() {
                args.command = token.clone();
            } else {
                return Err(format!("unexpected argument `{token}`"));
            }
        }
        if args.command.is_empty() {
            return Err("no command given".to_owned());
        }
        Ok(args)
    }

    /// The raw value of an option, if present. Bare flags read as
    /// `"true"`; use [`Args::value`] for options that require an explicit
    /// value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|opt| opt.value.as_str())
    }

    fn missing_value(key: &str) -> String {
        format!("--{key} needs a value (use --{key}=<value> if it starts with `--`)")
    }

    /// The explicit value of an option, if present.
    ///
    /// # Errors
    ///
    /// Returns a message when the option was passed as a bare flag (no
    /// value, or the would-be value was another `--flag`).
    pub fn value(&self, key: &str) -> Result<Option<&str>, String> {
        match self.options.get(key) {
            None => Ok(None),
            Some(opt) if opt.implicit => Err(Self::missing_value(key)),
            Some(opt) => Ok(Some(opt.value.as_str())),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is missing or does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key)? {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{raw}`")),
        }
    }

    /// A comma-separated list of numbers, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is missing or any element does not
    /// parse.
    pub fn num_list<T>(&self, key: &str, default: &[T]) -> Result<Vec<T>, String>
    where
        T: std::str::FromStr + Clone,
    {
        match self.value(key)? {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|piece| {
                    piece
                        .trim()
                        .parse()
                        .map_err(|_| format!("--{key}: cannot parse `{piece}`"))
                })
                .collect(),
        }
    }

    /// Names of all options that were passed.
    pub fn option_keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(&tokens.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["run", "--peers", "8", "--splicing", "gop", "--cdn"]).unwrap();
        assert_eq!(args.command, "run");
        assert_eq!(args.get("peers"), Some("8"));
        assert_eq!(args.get("splicing"), Some("gop"));
        assert!(args.flag("cdn"));
        assert!(!args.flag("tracker"));
    }

    #[test]
    fn numeric_helpers() {
        let args = parse(&["run", "--peers", "8", "--bandwidths", "128,256"]).unwrap();
        assert_eq!(args.num("peers", 3usize).unwrap(), 8);
        assert_eq!(args.num("seed", 42u64).unwrap(), 42);
        assert_eq!(
            args.num_list("bandwidths", &[64.0f64]).unwrap(),
            vec![128.0, 256.0]
        );
        assert_eq!(args.num_list("missing", &[64.0f64]).unwrap(), vec![64.0]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["run", "extra"]).is_err());
        assert!(parse(&["run", "--x", "1", "--x", "2"]).is_err());
        let args = parse(&["run", "--peers", "eight"]).unwrap();
        assert!(args.num("peers", 1usize).is_err());
    }

    #[test]
    fn bare_flag_before_another_flag() {
        let args = parse(&["run", "--cdn", "--peers", "4"]).unwrap();
        assert!(args.flag("cdn"));
        assert_eq!(args.get("peers"), Some("4"));
    }

    #[test]
    fn equals_form_is_accepted() {
        let args = parse(&["run", "--peers=8", "--splicing=4s"]).unwrap();
        assert_eq!(args.num("peers", 1usize).unwrap(), 8);
        assert_eq!(args.value("splicing").unwrap(), Some("4s"));
        // The `=` form carries values that start with `--`.
        let args = parse(&["run", "--label=--weird"]).unwrap();
        assert_eq!(args.value("label").unwrap(), Some("--weird"));
    }

    #[test]
    fn trailing_valueless_option_is_an_error_when_a_value_is_needed() {
        let args = parse(&["run", "--peers"]).unwrap();
        let err = args.num("peers", 1usize).unwrap_err();
        assert!(err.contains("--peers needs a value"), "{err}");
    }

    #[test]
    fn option_swallowing_a_flag_is_an_error_when_a_value_is_needed() {
        // `--splicing` forgot its value; the next token is another flag.
        let args = parse(&["run", "--splicing", "--peers", "4"]).unwrap();
        let err = args.value("splicing").unwrap_err();
        assert!(err.contains("--splicing needs a value"), "{err}");
        // The following flag still parsed normally.
        assert_eq!(args.num("peers", 1usize).unwrap(), 4);
    }

    #[test]
    fn bare_flags_still_read_as_flags() {
        let args = parse(&["run", "--cdn"]).unwrap();
        assert!(args.flag("cdn"));
        assert!(
            args.value("cdn").is_err(),
            "bare flag has no explicit value"
        );
        let args = parse(&["run", "--cdn=true"]).unwrap();
        assert!(args.flag("cdn"));
        assert_eq!(args.value("cdn").unwrap(), Some("true"));
    }

    #[test]
    fn empty_option_name_is_rejected() {
        assert!(parse(&["run", "--"]).is_err());
        assert!(parse(&["run", "--=5"]).is_err());
    }
}
