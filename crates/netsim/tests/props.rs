//! Property-based tests for the network simulator.

use proptest::prelude::*;

use bytes::Bytes;
use splicecast_netsim::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_stays_in_range(n in 0u64..100_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = rng::binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        let later = t + d;
        prop_assert!(later >= t);
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(later), SimDuration::ZERO);
    }

    #[test]
    fn random_trees_route_between_all_pairs(
        parents in prop::collection::vec(any::<u32>(), 1..24),
        capacity in 1_000.0f64..1e9,
        latency_ms in 0u64..500,
        loss in 0.0f64..0.5,
    ) {
        // Build a random tree: node i+1 attaches to a previous node.
        let mut net = Network::new();
        let mut nodes = vec![net.add_node()];
        let spec = LinkSpec::new(capacity, SimDuration::from_millis(latency_ms), loss);
        for (i, p) in parents.iter().enumerate() {
            let node = net.add_node();
            let parent = nodes[(*p as usize) % (i + 1)];
            net.connect_symmetric(node, parent, spec);
            nodes.push(node);
        }
        // Every pair routes; path properties are sane.
        for &a in &nodes {
            for &b in &nodes {
                let path = net.path(a, b).unwrap();
                if a == b {
                    prop_assert!(path.is_empty());
                    continue;
                }
                prop_assert!(!path.is_empty());
                prop_assert!(path.len() < nodes.len());
                let props = net.path_properties(&path);
                prop_assert!(props.loss < 1.0);
                prop_assert!(props.min_capacity_bps > 0.0);
                // Reverse route has the same hop count.
                prop_assert_eq!(net.path(b, a).unwrap().len(), path.len());
            }
        }
    }

    #[test]
    fn transfers_deliver_exactly_once_regardless_of_size(
        bytes in 1u64..2_000_000,
        loss in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Sender { to: NodeId, bytes: u64 }
        impl NodeBehavior for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.start_transfer(self.to, self.bytes, 1).unwrap();
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        #[derive(Default)]
        struct Sink { got: Rc<RefCell<Vec<u64>>> }
        impl NodeBehavior for Sink {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::TransferComplete { bytes, .. } = event {
                    self.got.borrow_mut().push(bytes);
                }
            }
        }

        let spec = LinkSpec::from_bytes_per_sec(250_000.0, SimDuration::from_millis(10), loss);
        let star = star(&[spec; 2]);
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(star.network, seed);
        sim.add_node(Box::new(NullBehavior));
        sim.add_node(Box::new(Sender { to: star.leaves[1], bytes }));
        sim.add_node(Box::new(Sink { got: got.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(3_600.0));
        prop_assert_eq!(&*got.borrow(), &vec![bytes], "exactly one complete delivery");
        prop_assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn messages_arrive_reliably_and_in_order(
        count in 1usize..40,
        loss in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Burst { to: NodeId, count: usize }
        impl NodeBehavior for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..self.count {
                    ctx.send(self.to, Bytes::from(vec![i as u8])).unwrap();
                }
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        #[derive(Default)]
        struct Collect { seen: Rc<RefCell<Vec<u8>>> }
        impl NodeBehavior for Collect {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Message { payload, .. } = event {
                    self.seen.borrow_mut().push(payload[0]);
                }
            }
        }

        let spec = LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(15), loss);
        let star = star(&[spec; 2]);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(star.network, seed);
        sim.add_node(Box::new(NullBehavior));
        sim.add_node(Box::new(Burst { to: star.leaves[1], count }));
        sim.add_node(Box::new(Collect { seen: seen.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(600.0));
        let expected: Vec<u8> = (0..count as u8).collect();
        prop_assert_eq!(&*seen.borrow(), &expected);
    }
}
