//! The discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::id::{DirLinkId, NodeId};
use crate::node::NodeEvent;
use crate::time::SimTime;

/// Everything that can be scheduled on the simulator clock.
#[derive(Debug)]
pub(crate) enum Scheduled {
    /// Deliver an application-visible event to a node.
    Node { target: NodeId, event: NodeEvent },
    /// Advance one RTT round of a TCP flow.
    FlowRound { flow: u64 },
    /// Apply a scheduled link-capacity change (bandwidth modulation).
    Capacity { dir: DirLinkId, capacity_bps: f64 },
}

#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    what: Scheduled,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties in time break by insertion order, making runs deterministic.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: SimTime, what: Scheduled) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, what }));
    }

    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn pop(&mut self) -> Option<(SimTime, Scheduled)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.what))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Scheduled {
        Scheduled::Node { target: NodeId::from_index(0), event: NodeEvent::Timer { token } }
    }

    fn token_of(s: Scheduled) -> u64 {
        match s {
            Scheduled::Node { event: NodeEvent::Timer { token }, .. } => token,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer(3));
        q.push(SimTime::from_micros(10), timer(1));
        q.push(SimTime::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, s)| token_of(s)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime::from_micros(5), timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, s)| token_of(s)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_micros(42), timer(0));
        assert_eq!(q.next_time(), Some(SimTime::from_micros(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
