//! The discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::id::{DirLinkId, NodeId};
use crate::node::NodeEvent;
use crate::time::SimTime;

/// Everything that can be scheduled on the simulator clock.
#[derive(Debug)]
pub(crate) enum Scheduled {
    /// Deliver an application-visible event to a node.
    Node { target: NodeId, event: NodeEvent },
    /// Advance one RTT round of a TCP flow (round model), or activate a
    /// freshly-handshaken flow (fluid model).
    FlowRound { flow: u64 },
    /// Complete a fluid-model flow, if its rate epoch is still current (a
    /// rebalance that changed the flow's rate bumps the epoch, leaving the
    /// previously-scheduled completion stale).
    FlowDone { flow: u64, epoch: u32 },
    /// Apply a scheduled link-capacity change (bandwidth modulation).
    Capacity { dir: DirLinkId, capacity_bps: f64 },
    /// Flip a node's online flag at a scheduled time (fault-injected outage
    /// windows). Going offline fails the node's flows exactly like
    /// [`crate::Ctx::go_offline`]; coming back online only restores the flag.
    SetOnline { node: NodeId, online: bool },
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// The heap holds only small `(time, seq, slot)` keys — ties in time break
/// by insertion order (`seq`), making runs deterministic — while the
/// payloads sit in a slab indexed by `slot`. Sift operations on a binary
/// heap move entries around `log n` times each, so keeping the moved value
/// at three words instead of a full [`Scheduled`] makes the queue largely
/// disappear from simulation profiles.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload per slot; `None` marks a free slot.
    payloads: Vec<Option<Scheduled>>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: SimTime, what: Scheduled) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.payloads.push(None);
                (self.payloads.len() - 1) as u32
            }
        };
        self.payloads[slot as usize] = Some(what);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, seq, slot)));
    }

    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((time, _, _))| time)
    }

    pub fn pop(&mut self) -> Option<(SimTime, Scheduled)> {
        let Reverse((time, _, slot)) = self.heap.pop()?;
        let what = self.payloads[slot as usize]
            .take()
            .expect("heap key without payload");
        self.free.push(slot);
        Some((time, what))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Scheduled {
        Scheduled::Node {
            target: NodeId::from_index(0),
            event: NodeEvent::Timer { token },
        }
    }

    fn token_of(s: Scheduled) -> u64 {
        match s {
            Scheduled::Node {
                event: NodeEvent::Timer { token },
                ..
            } => token,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer(3));
        q.push(SimTime::from_micros(10), timer(1));
        q.push(SimTime::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, s)| token_of(s))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime::from_micros(5), timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, s)| token_of(s))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_micros(42), timer(0));
        assert_eq!(q.next_time(), Some(SimTime::from_micros(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
