//! A tiny deterministic hasher for simulator-internal maps.
//!
//! The standard library's SipHash shows up on the per-message send path
//! (route-cache and FIFO-ordering lookups happen on every control
//! message). The keys are small node-id pairs entirely under the
//! simulator's control, so hash-flooding resistance buys nothing; a
//! multiply-rotate hash is a fraction of the cost and just as
//! deterministic.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FastHasher`].
pub(crate) type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate hasher in the FxHash family: fold each word into the
/// state with a rotate, xor, and multiply by a large odd constant.
#[derive(Debug, Default)]
pub(crate) struct FastHasher(u64);

const MULTIPLIER: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(MULTIPLIER);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_differ() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<(u32, u32), u64> = FastHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i + 1), u64::from(i));
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&(i, i + 1)), Some(&u64::from(i)));
        }
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
