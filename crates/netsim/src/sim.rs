//! The simulator: event loop, node contexts, and the world state.

use crate::fasthash::FastHashMap;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::NetError;
use crate::event::{EventQueue, Scheduled};
use crate::fault::{FaultPlane, InjectedFaults, MessageFate, MessageFaults};
use crate::fluid::FillProblem;
use crate::id::{DirLinkId, FlowId, NodeId};
use crate::node::{NodeBehavior, NodeEvent};
use crate::rng::geometric_failures;
use crate::tcp::{Flow, FlowModel, FlowTable, LinkUsage, RoundOutcome, TcpConfig};
use crate::time::{SimDuration, SimTime};
use crate::topology::Network;
use crate::trace::{Trace, TraceRecord};

/// Per-message framing overhead added to control messages (Ethernet + IP +
/// TCP headers).
const MESSAGE_OVERHEAD_BYTES: u64 = 66;

/// Loopback delay for a node messaging itself.
const LOOPBACK_DELAY: SimDuration = SimDuration::from_micros(1);

/// Aggregate counters of everything the simulator moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    /// Control-plane messages sent.
    pub messages_sent: u64,
    /// Bulk transfers started.
    pub flows_started: u64,
    /// Bulk transfers that delivered all bytes.
    pub flows_completed: u64,
    /// Bulk transfers that failed or were cancelled.
    pub flows_failed: u64,
    /// Payload bytes delivered to receivers (completed flows only).
    pub payload_bytes_delivered: u64,
    /// Wire bytes put on links by the TCP model (including loss and
    /// retransmission waste), summed over flows, not hops.
    pub wire_bytes_sent: u64,
}

pub(crate) struct World {
    now: SimTime,
    queue: EventQueue,
    net: Network,
    flows: FlowTable,
    usage: Vec<LinkUsage>,
    rng: StdRng,
    online: Vec<bool>,
    tcp: TcpConfig,
    trace: Option<Trace>,
    stats: SimStats,
    /// Wire bytes sent over each directed link.
    link_bytes: Vec<u64>,
    /// Last scheduled delivery per (src, dst), to keep the control channel
    /// in order like a TCP connection would.
    msg_order: FastHashMap<(NodeId, NodeId), SimTime>,
    /// Scratch for `step_flow`: per-link decayed rates, computed once per
    /// round and reused for both the utilization read and the usage update.
    scratch_rates: Vec<f64>,
    /// Fluid model: the rate solver and its reusable buffers. Its
    /// `link_rate` output doubles as the utilization source for
    /// [`Ctx::path_utilization`] under the fluid model.
    fluid: FillProblem,
    /// Fluid model: active-flow ids of the last rebalance (scratch).
    fluid_ids: Vec<FlowId>,
    /// Fluid model: per-flow effective loss of the last rebalance (scratch).
    fluid_eff: Vec<f64>,
    /// Injected message-fault plane, if any; `None` means `send_faulty`
    /// degenerates to `send` with no extra RNG draws.
    faults: Option<FaultPlane>,
    /// Counters of injected faults (drops, delays, outage windows).
    fault_stats: InjectedFaults,
}

/// The fluid model's per-flow rate ceiling: the Mathis loss-limited rate
/// under the same shaped/overload effective loss the round model applies,
/// bounded by the receive-window limit. Returns `(ceiling_bps, eff_loss)`.
fn fluid_ceiling(
    tcp: &TcpConfig,
    rtt_secs: f64,
    loss: f64,
    utilization: f64,
    pressure: f64,
) -> (f64, f64) {
    let floor = tcp.loss_utilization_floor;
    let shaped = loss * (floor + (1.0 - floor) * utilization);
    let overload = (tcp.overload_loss_coeff
        * (pressure - tcp.overload_pressure_threshold).max(0.0))
    .min(tcp.overload_loss_max);
    let eff = 1.0 - (1.0 - shaped) * (1.0 - overload);
    let mss_bps = tcp.mss as f64 * 8.0 / rtt_secs;
    let window_bps = tcp.max_cwnd * mss_bps;
    let mathis_bps = if eff > 1e-12 {
        mss_bps * (1.5 / eff).sqrt()
    } else {
        f64::INFINITY
    };
    (mathis_bps.min(window_bps), eff)
}

impl World {
    fn fail_flow(&mut self, id: FlowId, notify: &[NodeId]) {
        let fluid = self.tcp.flow_model == FlowModel::Fluid;
        if fluid {
            // Fold progress to now so the failure notice reports accurate
            // delivered bytes, then (after removal) re-solve rates.
            self.fluid_fold(id);
        }
        let Some(flow) = self.flows.remove(id) else {
            return;
        };
        if fluid {
            self.fluid_rebalance();
        }
        self.stats.flows_failed += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRecord::FlowFailed {
                at: self.now,
                flow: id,
                delivered: flow.delivered,
            });
        }
        let notice_at = self.now + flow.rtt;
        for &node in notify {
            if self.online[node.index()] {
                let peer = if node == flow.src { flow.dst } else { flow.src };
                self.queue.push(
                    notice_at,
                    Scheduled::Node {
                        target: node,
                        event: NodeEvent::TransferFailed {
                            flow: id,
                            peer,
                            tag: flow.tag,
                            delivered: flow.delivered,
                        },
                    },
                );
            }
        }
    }

    /// Takes a node offline: fails all its flows (counterparts notified)
    /// and stops event delivery to it. Shared by [`Ctx::go_offline`] and
    /// scheduled outage windows.
    fn force_offline(&mut self, node: NodeId) {
        if !self.online[node.index()] {
            return;
        }
        self.online[node.index()] = false;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRecord::NodeOffline { at: self.now, node });
        }
        // fail_flow removes each flow from the per-node index, so taking
        // the first id each time walks the list in insertion order.
        while let Some(&id) = self.flows.flows_touching(node).first() {
            let Some(f) = self.flows.get(id) else {
                debug_assert!(false, "per-node flow index held a stale id");
                break;
            };
            let counterpart = if f.src == node { f.dst } else { f.src };
            self.fail_flow(id, &[counterpart]);
        }
    }

    /// Applies a scheduled online-flag flip (fault-injected outage edges).
    fn set_online(&mut self, node: NodeId, online: bool) {
        if node.index() >= self.online.len() || self.online[node.index()] == online {
            return;
        }
        if online {
            self.online[node.index()] = true;
            self.fault_stats.outages_ended += 1;
        } else {
            self.fault_stats.outages_started += 1;
            self.force_offline(node);
        }
    }

    /// The highest recent utilization (estimated send rate over capacity)
    /// along a path.
    fn path_utilization(&self, path: &[crate::id::DirLinkId]) -> f64 {
        if self.tcp.flow_model == FlowModel::Fluid {
            // Fluid mode keeps exact per-link allocated rates, so the
            // utilization is instantaneous rather than decay-averaged.
            let mut util: f64 = 0.0;
            for dir in path {
                let cap = self.net.dir_spec(*dir).capacity_bps;
                let rate = self
                    .fluid
                    .link_rate
                    .get(dir.index())
                    .copied()
                    .unwrap_or(0.0);
                util = util.max(rate / cap);
            }
            return util;
        }
        let now = self.now;
        let tau = self.tcp.utilization_tau_secs;
        let mut util: f64 = 0.0;
        for dir in path {
            let cap = self.net.dir_spec(*dir).capacity_bps;
            let rate = self.usage[dir.index()].rate_bps_at(now, tau);
            util = util.max(rate / cap);
        }
        util
    }

    fn step_flow(&mut self, raw: u64) {
        if self.tcp.flow_model == FlowModel::Fluid {
            // Under the fluid model the first (and only) FlowRound event
            // marks the end of the handshake: the flow joins the solver.
            self.fluid_activate(raw);
            return;
        }
        let id = FlowId(raw);
        // A stale round event for a flow that was cancelled or failed.
        let Some(flow) = self.flows.get(id) else {
            return;
        };

        let tcp = self.tcp;
        let now = self.now;
        let rtt_secs = flow.rtt.as_secs_f64();

        // One pass over the path computes everything the round needs:
        //
        // - Max–min fair share: the narrowest per-flow slice.
        // - Utilization, for the shaped-queue loss model (the configured
        //   loss applies in full only when the path is busy, see
        //   [`TcpConfig::loss_utilization_floor`]).
        // - Overload pressure: when the *competing* flows on a link cannot
        //   shrink their windows below `min_cwnd` without exceeding its
        //   BDP, the excess turns into timeouts, modelled as extra loss. A
        //   lone flow never overloads itself (its send budget already
        //   paces it), hence `load - 1`.
        //
        // The decayed per-link rates are kept so the usage update after the
        // round reuses them instead of re-evaluating the decay.
        let mut share_bps = f64::INFINITY;
        let mut utilization: f64 = 0.0;
        let mut pressure: f64 = 0.0;
        let mut rates = std::mem::take(&mut self.scratch_rates);
        rates.clear();
        for dir in &flow.path {
            let cap = self.net.dir_spec(*dir).capacity_bps;
            let load = self.flows.load(*dir);
            share_bps = share_bps.min(cap / load.max(1) as f64);
            let rate = self.usage[dir.index()].rate_bps_at(now, tcp.utilization_tau_secs);
            rates.push(rate);
            utilization = utilization.max(rate / cap);
            let competing = load.saturating_sub(1) as f64;
            let bdp_bytes = cap / 8.0 * rtt_secs;
            pressure = pressure.max(competing * tcp.min_cwnd * tcp.mss as f64 / bdp_bytes);
        }
        let utilization = utilization.min(1.0);
        let floor = tcp.loss_utilization_floor;
        let shaped_loss = flow.loss * (floor + (1.0 - floor) * utilization);
        let overload_loss = (tcp.overload_loss_coeff
            * (pressure - tcp.overload_pressure_threshold).max(0.0))
        .min(tcp.overload_loss_max);
        let effective_loss = 1.0 - (1.0 - shaped_loss) * (1.0 - overload_loss);

        let flow = self.flows.get_mut(id).expect("flow vanished");
        let rtt = flow.rtt;
        let (outcome, sent_bytes) =
            flow.advance_round(&tcp, share_bps, effective_loss, &mut self.rng);
        self.stats.wire_bytes_sent += sent_bytes;
        // `flow` borrows only the flow table; usage and link_bytes are
        // disjoint fields, so the path needs no defensive clone.
        let added_bps = sent_bytes as f64 * 8.0 / tcp.utilization_tau_secs;
        for (dir, &rate) in flow.path.iter().zip(&rates) {
            self.usage[dir.index()].set_rate(now, rate + added_bps);
            self.link_bytes[dir.index()] += sent_bytes;
        }
        self.scratch_rates = rates;
        match outcome {
            RoundOutcome::InProgress => {
                self.queue
                    .push(self.now + rtt, Scheduled::FlowRound { flow: raw });
            }
            RoundOutcome::Completed => {
                let (src, dst, tag, total, started) =
                    (flow.src, flow.dst, flow.tag, flow.total, flow.started);
                self.flows.remove(id);
                self.stats.flows_completed += 1;
                self.stats.payload_bytes_delivered += total;
                // Last data packets reach the receiver half an RTT after the
                // round starts; the sender sees the final ack a full RTT in.
                let recv_at = self.now + rtt / 2;
                let ack_at = self.now + rtt;
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceRecord::FlowCompleted {
                        at: recv_at,
                        flow: id,
                    });
                }
                self.queue.push(
                    recv_at,
                    Scheduled::Node {
                        target: dst,
                        event: NodeEvent::TransferComplete {
                            flow: id,
                            from: src,
                            tag,
                            bytes: total,
                            started,
                        },
                    },
                );
                self.queue.push(
                    ack_at,
                    Scheduled::Node {
                        target: src,
                        event: NodeEvent::UploadComplete {
                            flow: id,
                            to: dst,
                            tag,
                        },
                    },
                );
            }
        }
    }

    /// Fluid model: a flow's handshake finished — join the rate solver.
    fn fluid_activate(&mut self, raw: u64) {
        let id = FlowId(raw);
        let now = self.now;
        // The flow may have been cancelled before the handshake completed.
        let Some(f) = self.flows.get_mut(id) else {
            return;
        };
        debug_assert!(!f.fluid.active, "flow activated twice");
        f.fluid.active = true;
        f.fluid.rate_since = now;
        self.fluid_rebalance();
    }

    /// Fluid model: integrates an active flow's progress up to now and
    /// brings the wire/link byte counters in line (goodput scaled by the
    /// epoch's effective loss, modelling retransmission waste).
    fn fluid_fold(&mut self, id: FlowId) {
        let now = self.now;
        let Some(f) = self.flows.get_mut(id) else {
            return;
        };
        if !f.fluid.active {
            return;
        }
        let dt = now.saturating_since(f.fluid.rate_since).as_secs_f64();
        if dt > 0.0 && f.fluid.rate_bps > 0.0 {
            f.fluid.delivered =
                (f.fluid.delivered + f.fluid.rate_bps * dt / 8.0).min(f.total as f64);
        }
        f.delivered = f.fluid.delivered as u64;
        f.fluid.rate_since = now;
        let eff = f.fluid.eff_loss.min(0.95);
        let wire_total = (f.fluid.delivered / (1.0 - eff)) as u64;
        let delta = wire_total.saturating_sub(f.fluid.wire_emitted);
        if delta > 0 {
            f.fluid.wire_emitted = wire_total;
            self.stats.wire_bytes_sent += delta;
            for dir in &f.path {
                self.link_bytes[dir.index()] += delta;
            }
        }
    }

    /// Fluid model: a flow's scheduled completion instant arrived. Ignored
    /// when stale (the flow is gone, still handshaking, or its rate changed
    /// since the event was scheduled).
    fn fluid_done(&mut self, raw: u64, epoch: u32) {
        let id = FlowId(raw);
        let Some(f) = self.flows.get(id) else {
            return;
        };
        if !f.fluid.active || f.fluid.epoch != epoch {
            return;
        }
        // The event time is the analytic completion instant; snap the
        // integrated progress to exactly done before the final fold so the
        // last few bits of float error cannot leave the flow short.
        let f = self.flows.get_mut(id).expect("flow just resolved");
        f.fluid.delivered = f.total as f64;
        self.fluid_fold(id);
        let f = self.flows.get(id).expect("flow just resolved");
        let (src, dst, tag, total, started, rtt) = (f.src, f.dst, f.tag, f.total, f.started, f.rtt);
        self.flows.remove(id);
        self.stats.flows_completed += 1;
        self.stats.payload_bytes_delivered += total;
        // As in the round model: the receiver sees the last data half an
        // RTT after the sender finishes; the sender sees the final ack a
        // full RTT after.
        let recv_at = self.now + rtt / 2;
        let ack_at = self.now + rtt;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRecord::FlowCompleted {
                at: recv_at,
                flow: id,
            });
        }
        self.queue.push(
            recv_at,
            Scheduled::Node {
                target: dst,
                event: NodeEvent::TransferComplete {
                    flow: id,
                    from: src,
                    tag,
                    bytes: total,
                    started,
                },
            },
        );
        self.queue.push(
            ack_at,
            Scheduled::Node {
                target: src,
                event: NodeEvent::UploadComplete {
                    flow: id,
                    to: dst,
                    tag,
                },
            },
        );
        self.fluid_rebalance();
    }

    /// Fluid model: re-solves max–min fair rates for every active flow.
    ///
    /// Called on every flow-set change (activation, completion, failure,
    /// churn) and on capacity changes. Two solver passes: the first assumes
    /// saturated links when shaping loss (utilization 1), the second
    /// refines the ceilings with the utilization the first pass implies —
    /// mirroring the round model's utilization-shaped loss without its
    /// per-round feedback loop. Flows whose rate actually changed get a
    /// bumped epoch and a freshly scheduled [`Scheduled::FlowDone`]; the
    /// rest keep their existing completion event.
    fn fluid_rebalance(&mut self) {
        let tcp = self.tcp;
        let now = self.now;
        let mut ids = std::mem::take(&mut self.fluid_ids);
        self.flows.collect_fluid_active(&mut ids);
        let dir_links = self.link_bytes.len();
        self.fluid.reset(dir_links);
        for l in 0..dir_links {
            self.fluid.link_capacity[l] = self.net.dir_spec(DirLinkId(l as u32)).capacity_bps;
        }
        self.fluid_eff.clear();
        for &id in &ids {
            let f = self.flows.get(id).expect("active flow id");
            let rtt_secs = f.rtt.as_secs_f64();
            let mut pressure = 0.0_f64;
            for dir in &f.path {
                let cap = self.net.dir_spec(*dir).capacity_bps;
                let competing = self.flows.load(*dir).saturating_sub(1) as f64;
                let bdp_bytes = cap / 8.0 * rtt_secs;
                pressure = pressure.max(competing * tcp.min_cwnd * tcp.mss as f64 / bdp_bytes);
            }
            let (cap, eff) = fluid_ceiling(&tcp, rtt_secs, f.loss, 1.0, pressure);
            self.fluid
                .push_flow(f.path.iter().map(|d| d.index() as u32), cap);
            self.fluid_eff.push(eff);
        }
        self.fluid.progressive_fill();
        // Second pass: refine ceilings with the implied utilization.
        for (i, &id) in ids.iter().enumerate() {
            let f = self.flows.get(id).expect("active flow id");
            let rtt_secs = f.rtt.as_secs_f64();
            let mut utilization = 0.0_f64;
            let mut pressure = 0.0_f64;
            for dir in &f.path {
                let cap = self.net.dir_spec(*dir).capacity_bps;
                utilization = utilization.max(self.fluid.link_rate[dir.index()] / cap);
                let competing = self.flows.load(*dir).saturating_sub(1) as f64;
                let bdp_bytes = cap / 8.0 * rtt_secs;
                pressure = pressure.max(competing * tcp.min_cwnd * tcp.mss as f64 / bdp_bytes);
            }
            let (cap, eff) = fluid_ceiling(&tcp, rtt_secs, f.loss, utilization.min(1.0), pressure);
            self.fluid.flows[i].cap_bps = cap;
            self.fluid_eff[i] = eff;
        }
        self.fluid.progressive_fill();
        for (i, &id) in ids.iter().enumerate() {
            self.fluid_fold(id);
            let eff = self.fluid_eff[i];
            let f = self.flows.get_mut(id).expect("active flow id");
            // Like the round model's one-packet-per-RTT minimum budget, a
            // flow never stalls entirely, even on an oversubscribed link.
            let rate_floor = tcp.mss as f64 * 8.0 / f.rtt.as_secs_f64();
            let rate = self.fluid.rates[i].max(rate_floor);
            f.fluid.eff_loss = eff;
            // Reschedule only on a material rate change. Utilization-shaped
            // ceilings wobble a little on every rebalance; rescheduling a
            // FlowDone for each wobble would push O(flows) fresh events per
            // flow-set change and drown the queue in stale ones. A flow that
            // keeps its rate keeps its already-scheduled completion, so the
            // bound on the completion-time error is the epsilon itself.
            const FLUID_RATE_EPS: f64 = 1e-3;
            let changed =
                (rate - f.fluid.rate_bps).abs() > rate.max(f.fluid.rate_bps) * FLUID_RATE_EPS;
            if changed {
                f.fluid.rate_bps = rate;
                f.fluid.epoch += 1;
                let remaining = (f.total as f64 - f.fluid.delivered).max(0.0);
                let done_at = now + SimDuration::from_secs_f64(remaining * 8.0 / rate);
                self.queue.push(
                    done_at,
                    Scheduled::FlowDone {
                        flow: id.raw(),
                        epoch: f.fluid.epoch,
                    },
                );
            }
        }
        self.fluid_ids = ids;
    }
}

/// The handle through which a [`NodeBehavior`] acts on the world.
///
/// A context is only valid for the duration of one callback.
pub struct Ctx<'a> {
    pub(crate) world: &'a mut World,
    pub(crate) me: NodeId,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("me", &self.me)
            .field("now", &self.world.now)
            .finish()
    }
}

impl Ctx<'_> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node this context belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Total number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.world.online.len()
    }

    /// Whether a node is currently online.
    pub fn is_online(&self, node: NodeId) -> bool {
        node.index() < self.world.online.len() && self.world.online[node.index()]
    }

    /// The simulator's seeded random source. All randomness in a behaviour
    /// should come from here to keep runs reproducible.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.world.rng
    }

    /// Sends a small control-plane message to `to`.
    ///
    /// Delivery is reliable (loss is modelled as retransmission delay) and
    /// per-destination FIFO, like messages on a persistent TCP connection.
    /// The delay is path latency plus serialisation plus a geometric
    /// retransmission penalty drawn from the path loss rate.
    ///
    /// # Errors
    ///
    /// [`NetError::NodeOffline`] when the destination has gone offline
    /// (models a connection reset) and [`NetError::NoRoute`] /
    /// [`NetError::UnknownNode`] for unroutable destinations.
    pub fn send(&mut self, to: NodeId, payload: Bytes) -> Result<(), NetError> {
        self.send_inner(to, payload, false)
    }

    /// Like [`Ctx::send`], but subject to the injected message-fault plane
    /// (see [`Simulator::set_message_faults`]): the message may be silently
    /// dropped (the sender still sees `Ok`, modelling loss the application
    /// cannot observe) or delivered with extra delay. With no plane
    /// installed this is exactly `send` — same code path, same RNG draws.
    ///
    /// Applications route their *droppable* traffic classes (periodic
    /// announcements, requests that have their own timeout) through here and
    /// keep connection-shaping messages (handshakes, goodbyes) on `send`.
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::send`]; destination validation happens before the
    /// fault roll, so an offline destination is still reported.
    pub fn send_faulty(&mut self, to: NodeId, payload: Bytes) -> Result<(), NetError> {
        self.send_inner(to, payload, true)
    }

    fn send_inner(&mut self, to: NodeId, payload: Bytes, faulty: bool) -> Result<(), NetError> {
        let w = &mut *self.world;
        if to.index() >= w.online.len() {
            return Err(NetError::UnknownNode);
        }
        if !w.online[to.index()] {
            return Err(NetError::NodeOffline(to));
        }
        let mut extra = SimDuration::ZERO;
        if faulty {
            if let Some(plane) = &mut w.faults {
                match plane.roll() {
                    MessageFate::Deliver => {}
                    MessageFate::Drop => {
                        // The wire ate it; the sender never knows.
                        w.stats.messages_sent += 1;
                        w.fault_stats.messages_dropped += 1;
                        return Ok(());
                    }
                    MessageFate::Delay(d) => {
                        w.fault_stats.messages_delayed += 1;
                        extra = d;
                    }
                }
            }
        }
        let delay = if to == self.me {
            LOOPBACK_DELAY
        } else {
            // prime + borrow instead of `path()` so the steady path does
            // not clone the cached route Vec on every message.
            w.net.prime_route(self.me, to)?;
            let path = w.net.cached_route(self.me, to);
            let props = w.net.path_properties(path);
            let wire_bytes = payload.len() as u64 + MESSAGE_OVERHEAD_BYTES;
            let tx = SimDuration::from_secs_f64(wire_bytes as f64 * 8.0 / props.min_capacity_bps);
            // Each retransmission costs a full round trip (timeout + resend).
            let retx = geometric_failures(&mut w.rng, props.loss);
            props.latency + tx + (props.latency * 2) * retx
        };
        // Injected extra delay lands before the FIFO clamp: a delayed
        // message still cannot overtake or be overtaken on its connection.
        let mut deliver_at = w.now + delay + extra;
        // FIFO per (src, dst) pair, like an ordered byte stream.
        let slot = w.msg_order.entry((self.me, to)).or_insert(SimTime::ZERO);
        if deliver_at <= *slot {
            deliver_at = *slot + SimDuration::from_micros(1);
        }
        *slot = deliver_at;
        w.stats.messages_sent += 1;
        if let Some(trace) = &mut w.trace {
            trace.push(TraceRecord::MessageSent {
                at: w.now,
                from: self.me,
                to,
                len: payload.len(),
                deliver_at,
            });
        }
        w.queue.push(
            deliver_at,
            Scheduled::Node {
                target: to,
                event: NodeEvent::Message {
                    from: self.me,
                    payload,
                },
            },
        );
        Ok(())
    }

    /// Starts a bulk TCP transfer of `bytes` payload bytes from this node to
    /// `to`. The receiver gets [`NodeEvent::TransferComplete`] when all bytes
    /// have arrived; this node gets [`NodeEvent::UploadComplete`].
    ///
    /// `tag` is an opaque application value echoed in the completion events
    /// (the swarm uses it for segment indices).
    ///
    /// # Errors
    ///
    /// [`NetError::EmptyTransfer`] for zero-byte transfers,
    /// [`NetError::NodeOffline`] when the destination is offline, and
    /// routing errors for unreachable destinations.
    pub fn start_transfer(&mut self, to: NodeId, bytes: u64, tag: u64) -> Result<FlowId, NetError> {
        self.transfer_inner(to, bytes, tag, false)
    }

    /// Like [`Ctx::start_transfer`], but over an already-established
    /// (kept-alive) connection: the three-way handshake is skipped and data
    /// starts flowing after half an RTT. The congestion window still starts
    /// fresh (slow-start restart after idle).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::start_transfer`].
    pub fn start_transfer_warm(
        &mut self,
        to: NodeId,
        bytes: u64,
        tag: u64,
    ) -> Result<FlowId, NetError> {
        self.transfer_inner(to, bytes, tag, true)
    }

    fn transfer_inner(
        &mut self,
        to: NodeId,
        bytes: u64,
        tag: u64,
        warm: bool,
    ) -> Result<FlowId, NetError> {
        let w = &mut *self.world;
        if bytes == 0 {
            return Err(NetError::EmptyTransfer);
        }
        if to.index() >= w.online.len() {
            return Err(NetError::UnknownNode);
        }
        if !w.online[to.index()] {
            return Err(NetError::NodeOffline(to));
        }
        if to == self.me {
            return Err(NetError::NoRoute {
                src: self.me,
                dst: to,
            });
        }
        let path = w.net.path(self.me, to)?;
        let props = w.net.path_properties(&path);
        let rtt = props.latency * 2;
        let flow = Flow {
            id: FlowId(0), // assigned by the table
            src: self.me,
            dst: to,
            path,
            rtt,
            loss: props.loss,
            total: bytes,
            delivered: 0,
            cwnd: w.tcp.initial_cwnd,
            ssthresh: w.tcp.initial_ssthresh,
            tag,
            started: w.now,
            fluid: Default::default(),
        };
        let id = w.flows.insert(flow);
        w.stats.flows_started += 1;
        if let Some(trace) = &mut w.trace {
            trace.push(TraceRecord::FlowStarted {
                at: w.now,
                flow: id,
                src: self.me,
                dst: to,
                bytes,
            });
        }
        // First data round: after the three-way handshake for a fresh
        // connection, after half an RTT (send → first data back) when the
        // connection is kept alive.
        let setup = if warm { 0.5 } else { w.tcp.handshake_rtts };
        let first_round = w.now + rtt.mul_f64(setup);
        w.queue
            .push(first_round, Scheduled::FlowRound { flow: id.raw() });
        Ok(id)
    }

    /// Cancels an in-flight transfer. The *other* endpoint is notified with
    /// [`NodeEvent::TransferFailed`]; the caller is not. Cancelling an
    /// already-finished flow is a no-op.
    pub fn cancel_transfer(&mut self, flow: FlowId) {
        let Some(f) = self.world.flows.get(flow) else {
            return;
        };
        let counterpart = if f.src == self.me { f.dst } else { f.src };
        self.world.fail_flow(flow, &[counterpart]);
    }

    /// Arranges for [`NodeEvent::Timer`] with `token` to be delivered to this
    /// node after `after`.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        let at = self.world.now + after;
        self.world.queue.push(
            at,
            Scheduled::Node {
                target: self.me,
                event: NodeEvent::Timer { token },
            },
        );
    }

    /// Takes this node offline: all its flows fail (counterparts are
    /// notified), and no further events are delivered to it. Models a peer
    /// leaving the swarm.
    pub fn go_offline(&mut self) {
        let me = self.me;
        self.world.force_offline(me);
    }

    /// Recent utilization of the path from this node to `to`: the busiest
    /// link's estimated send rate over its capacity, in `[0, ~1]`. Returns
    /// 0 when no route exists. Lets applications make load-aware choices
    /// (e.g. only push a duplicate upload when the uplink has spare
    /// capacity).
    pub fn path_utilization(&mut self, to: NodeId) -> f64 {
        if to == self.me || to.index() >= self.world.online.len() {
            return 0.0;
        }
        let w = &mut *self.world;
        if w.net.prime_route(self.me, to).is_err() {
            return 0.0;
        }
        let path = w.net.cached_route(self.me, to);
        if path.is_empty() {
            return 0.0;
        }
        w.path_utilization(path)
    }

    /// Bytes already delivered for an in-flight transfer, if it is still
    /// active. Useful for progress-aware policies.
    pub fn transfer_progress(&self, flow: FlowId) -> Option<(u64, u64)> {
        self.world.flows.get(flow).map(|f| {
            if f.fluid.active && f.fluid.rate_bps > 0.0 {
                // Fluid flows advance analytically between rebalances;
                // integrate virtually without mutating the flow.
                let dt = self
                    .world
                    .now
                    .saturating_since(f.fluid.rate_since)
                    .as_secs_f64();
                let delivered =
                    (f.fluid.delivered + f.fluid.rate_bps * dt / 8.0).min(f.total as f64);
                (delivered as u64, f.total)
            } else {
                (f.delivered, f.total)
            }
        })
    }

    /// Number of transfers this node is currently sending or receiving.
    pub fn active_transfer_count(&self) -> usize {
        self.world.flows.flows_touching(self.me).len()
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use splicecast_netsim::{
///     star, Ctx, LinkSpec, NodeBehavior, NodeEvent, NullBehavior, SimDuration, SimTime, Simulator,
/// };
///
/// struct Pinger { to: splicecast_netsim::NodeId }
/// struct Ponger { got: u32 }
///
/// impl NodeBehavior for Pinger {
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         ctx.send(self.to, Bytes::from_static(b"ping")).unwrap();
///     }
///     fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
/// }
/// impl NodeBehavior for Ponger {
///     fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
///         if let NodeEvent::Message { .. } = event {
///             self.got += 1;
///         }
///     }
/// }
///
/// let star = star(&[LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(25), 0.0); 2]);
/// let mut sim = Simulator::new(star.network, 42);
/// sim.add_node(Box::new(NullBehavior)); // the hub
/// sim.add_node(Box::new(Pinger { to: star.leaves[1] }));
/// sim.add_node(Box::new(Ponger { got: 0 }));
/// sim.run_until_idle(SimTime::from_secs_f64(10.0));
/// ```
pub struct Simulator {
    world: World,
    nodes: Vec<Option<Box<dyn NodeBehavior>>>,
    started: bool,
}

impl Simulator {
    /// Creates a simulator over `network`, with all randomness derived from
    /// `seed`.
    pub fn new(network: Network, seed: u64) -> Self {
        let node_count = network.node_count();
        let dir_links = network.link_count() * 2;
        Simulator {
            world: World {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                net: network,
                flows: FlowTable::new(dir_links),
                usage: vec![LinkUsage::default(); dir_links],
                rng: StdRng::seed_from_u64(seed),
                online: vec![true; node_count],
                tcp: TcpConfig::default(),
                trace: None,
                stats: SimStats::default(),
                link_bytes: vec![0; dir_links],
                msg_order: FastHashMap::default(),
                scratch_rates: Vec::new(),
                fluid: FillProblem::default(),
                fluid_ids: Vec::new(),
                fluid_eff: Vec::new(),
                faults: None,
                fault_stats: InjectedFaults::default(),
            },
            nodes: Vec::new(),
            started: false,
        }
    }

    /// Overrides the TCP model parameters. Must be called before `run`.
    pub fn set_tcp_config(&mut self, cfg: TcpConfig) {
        self.world.tcp = cfg;
    }

    /// Starts recording a [`Trace`] of notable events.
    pub fn enable_trace(&mut self) {
        self.world.trace = Some(Trace::new());
    }

    /// Takes the recorded trace, leaving tracing enabled with a fresh log.
    pub fn take_trace(&mut self) -> Trace {
        match &mut self.world.trace {
            Some(t) => std::mem::take(t),
            None => Trace::new(),
        }
    }

    /// Registers the behaviour for the next node id, in network creation
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if more behaviours are added than the network has nodes.
    pub fn add_node(&mut self, behavior: Box<dyn NodeBehavior>) -> NodeId {
        assert!(
            self.nodes.len() < self.world.net.node_count(),
            "more behaviors than network nodes"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Some(behavior));
        id
    }

    /// Schedules a capacity change of one link direction at an absolute time
    /// (bandwidth modulation, for variable-bandwidth experiments).
    pub fn schedule_capacity(&mut self, at: SimTime, dir: DirLinkId, capacity_bps: f64) {
        self.world
            .queue
            .push(at, Scheduled::Capacity { dir, capacity_bps });
    }

    /// Installs the injected message-fault plane (see [`Ctx::send_faulty`]).
    /// A config with every knob at zero installs nothing, so zero-fault runs
    /// stay bit-identical to fault-free ones. Must be called before `run`.
    pub fn set_message_faults(&mut self, cfg: MessageFaults) {
        self.world.faults = cfg.is_active().then(|| FaultPlane::new(cfg));
    }

    /// Schedules `node` to be offline for the window `[from, until)`: at
    /// `from` its flows fail and event delivery stops (exactly like
    /// [`Ctx::go_offline`]); at `until` it starts receiving events again.
    /// Models infrastructure outages (e.g. the CDN blinking).
    ///
    /// # Panics
    ///
    /// Panics when the window is empty.
    pub fn schedule_offline_window(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        assert!(from < until, "offline window must have positive length");
        self.world.queue.push(
            from,
            Scheduled::SetOnline {
                node,
                online: false,
            },
        );
        self.world
            .queue
            .push(until, Scheduled::SetOnline { node, online: true });
    }

    /// Counters of injected faults so far (message drops/delays, outage
    /// window edges).
    pub fn fault_stats(&self) -> InjectedFaults {
        self.world.fault_stats
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Number of currently active flows.
    pub fn active_flow_count(&self) -> usize {
        self.world.flows.active_count()
    }

    /// Aggregate traffic counters for the whole run so far.
    pub fn stats(&self) -> SimStats {
        self.world.stats
    }

    /// Wire bytes sent over one direction of a link so far.
    pub fn link_bytes_sent(&self, dir: DirLinkId) -> u64 {
        self.world.link_bytes.get(dir.index()).copied().unwrap_or(0)
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        assert_eq!(
            self.nodes.len(),
            self.world.net.node_count(),
            "every network node needs a behavior before running"
        );
        self.started = true;
        for index in 0..self.nodes.len() {
            let target = NodeId::from_index(index);
            let mut node = self.nodes[index].take().expect("node missing");
            node.on_start(&mut Ctx {
                world: &mut self.world,
                me: target,
            });
            self.nodes[index] = Some(node);
        }
    }

    fn dispatch(&mut self, target: NodeId, event: NodeEvent) {
        if !self.world.online[target.index()] {
            return;
        }
        let mut node = self.nodes[target.index()].take().expect("node missing");
        node.on_event(
            &mut Ctx {
                world: &mut self.world,
                me: target,
            },
            event,
        );
        self.nodes[target.index()] = Some(node);
    }

    /// Runs the simulation until the event queue drains or the next event
    /// lies beyond `deadline`, then performs end-of-run accounting
    /// ([`NodeBehavior::on_sim_end`]). Returns the final simulated time.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while let Some(next) = self.world.queue.next_time() {
            if next > deadline {
                self.world.now = deadline;
                break;
            }
            let (time, what) = self.world.queue.pop().expect("queue peeked non-empty");
            debug_assert!(time >= self.world.now, "time ran backwards");
            self.world.now = time;
            match what {
                Scheduled::Node { target, event } => self.dispatch(target, event),
                Scheduled::FlowRound { flow } => self.world.step_flow(flow),
                Scheduled::FlowDone { flow, epoch } => self.world.fluid_done(flow, epoch),
                Scheduled::Capacity { dir, capacity_bps } => {
                    self.world.net.set_capacity(dir, capacity_bps);
                    if self.world.tcp.flow_model == FlowModel::Fluid {
                        self.world.fluid_rebalance();
                    }
                }
                Scheduled::SetOnline { node, online } => self.world.set_online(node, online),
            }
        }
        if self.world.queue.is_empty() && self.world.now < deadline {
            // Queue drained early: the run ends at the last processed event.
        }
        self.finish();
        self.world.now
    }

    fn finish(&mut self) {
        for index in 0..self.nodes.len() {
            let target = NodeId::from_index(index);
            if !self.world.online[index] {
                continue;
            }
            let mut node = self.nodes[index].take().expect("node missing");
            node.on_sim_end(&mut Ctx {
                world: &mut self.world,
                me: target,
            });
            self.nodes[index] = Some(node);
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.world.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.world.queue.len())
            .field("active_flows", &self.world.flows.active_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::topology::star;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared log the test behaviours write into.
    type Log = Rc<RefCell<Vec<String>>>;

    struct Echo {
        log: Log,
    }
    impl NodeBehavior for Echo {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Message { from, payload } = event {
                self.log.borrow_mut().push(format!(
                    "{} echo {} bytes at {}",
                    ctx.me(),
                    payload.len(),
                    ctx.now()
                ));
                let _ = ctx.send(from, payload);
            }
        }
    }

    struct Client {
        log: Log,
        peer: NodeId,
    }
    impl NodeBehavior for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, Bytes::from_static(b"hello")).unwrap();
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Message { .. } = event {
                self.log
                    .borrow_mut()
                    .push(format!("reply at {}", ctx.now()));
            }
        }
    }

    fn two_leaf_star(loss: f64) -> crate::topology::Star {
        star(&[LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(25), loss); 2])
    }

    #[test]
    fn request_reply_round_trip() {
        let log: Log = Rc::default();
        let s = two_leaf_star(0.0);
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Client {
            log: log.clone(),
            peer: s.leaves[1],
        }));
        sim.add_node(Box::new(Echo { log: log.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(5.0));
        let entries = log.borrow();
        assert_eq!(entries.len(), 2, "{entries:?}");
        assert!(entries[0].contains("echo 5 bytes"));
        // One-way latency 50ms + small serialisation; reply doubles it.
        assert!(entries[1].starts_with("reply at 0.10"), "{}", entries[1]);
    }

    struct Sender {
        to: NodeId,
        bytes: u64,
    }
    impl NodeBehavior for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.start_transfer(self.to, self.bytes, 7).unwrap();
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
    }

    #[derive(Default)]
    struct Receiver {
        done: Rc<RefCell<Option<(u64, f64)>>>,
    }
    impl NodeBehavior for Receiver {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::TransferComplete { bytes, tag, .. } = event {
                assert_eq!(tag, 7);
                *self.done.borrow_mut() = Some((bytes, ctx.now().as_secs_f64()));
            }
        }
    }

    #[test]
    fn bulk_transfer_delivers_all_bytes() {
        let s = two_leaf_star(0.0);
        let done = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Sender {
            to: s.leaves[1],
            bytes: 500_000,
        }));
        sim.add_node(Box::new(Receiver { done: done.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let (bytes, at) = done.borrow().expect("transfer should complete");
        assert_eq!(bytes, 500_000);
        // 500 kB at a 125 kB/s bottleneck is at least 4 seconds.
        assert!(at >= 4.0, "completed suspiciously fast at {at}");
        assert!(at < 20.0, "completed suspiciously slow at {at}");
        assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn transfer_to_offline_node_errors() {
        struct Quitter;
        impl NodeBehavior for Quitter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.go_offline();
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        struct LateSender {
            to: NodeId,
            saw_err: Rc<RefCell<bool>>,
        }
        impl NodeBehavior for LateSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { .. } = event {
                    let err = ctx.start_transfer(self.to, 100, 0).unwrap_err();
                    assert!(matches!(err, NetError::NodeOffline(_)));
                    *self.saw_err.borrow_mut() = true;
                }
            }
        }
        let s = two_leaf_star(0.0);
        let saw = Rc::new(RefCell::new(false));
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(LateSender {
            to: s.leaves[1],
            saw_err: saw.clone(),
        }));
        sim.add_node(Box::new(Quitter));
        sim.run_until_idle(SimTime::from_secs_f64(5.0));
        assert!(*saw.borrow());
    }

    #[test]
    fn going_offline_fails_inflight_transfers() {
        struct FlakySender {
            to: NodeId,
        }
        impl NodeBehavior for FlakySender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.start_transfer(self.to, 10_000_000, 0).unwrap();
                ctx.set_timer(SimDuration::from_secs(2), 0);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { .. } = event {
                    ctx.go_offline();
                }
            }
        }
        #[derive(Default)]
        struct FailWatcher {
            failed: Rc<RefCell<Option<u64>>>,
        }
        impl NodeBehavior for FailWatcher {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::TransferFailed { delivered, .. } = event {
                    *self.failed.borrow_mut() = Some(delivered);
                }
            }
        }
        let s = two_leaf_star(0.0);
        let failed = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(FlakySender { to: s.leaves[1] }));
        sim.add_node(Box::new(FailWatcher {
            failed: failed.clone(),
        }));
        sim.run_until_idle(SimTime::from_secs_f64(30.0));
        let delivered = failed.borrow().expect("receiver should see the failure");
        assert!(
            delivered > 0,
            "some bytes should have flowed before the failure"
        );
        assert!(delivered < 10_000_000);
        assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn messages_between_a_pair_arrive_in_order() {
        struct Burst {
            to: NodeId,
        }
        impl NodeBehavior for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..20u8 {
                    ctx.send(self.to, Bytes::copy_from_slice(&[i])).unwrap();
                }
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        #[derive(Default)]
        struct Order {
            seen: Rc<RefCell<Vec<u8>>>,
        }
        impl NodeBehavior for Order {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Message { payload, .. } = event {
                    self.seen.borrow_mut().push(payload[0]);
                }
            }
        }
        // Heavy loss to force retransmission delays.
        let s = two_leaf_star(0.3);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 99);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Burst { to: s.leaves[1] }));
        sim.add_node(Box::new(Order { seen: seen.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let seen = seen.borrow();
        assert_eq!(*seen, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> Trace {
            let s = two_leaf_star(0.05);
            let mut sim = Simulator::new(s.network, seed);
            sim.enable_trace();
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Sender {
                to: s.leaves[1],
                bytes: 300_000,
            }));
            sim.add_node(Box::new(Receiver::default()));
            sim.run_until_idle(SimTime::from_secs_f64(120.0));
            sim.take_trace()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn capacity_modulation_slows_a_flow() {
        fn completion_time(modulate: bool) -> f64 {
            let s = two_leaf_star(0.0);
            let done = Rc::new(RefCell::new(None));
            let mut net = s.network;
            let dir = net.path(s.leaves[0], s.leaves[1]).unwrap();
            let mut sim = Simulator::new(net, 3);
            if modulate {
                // Throttle the second hop to 1/10 capacity after 1 second.
                sim.schedule_capacity(SimTime::from_secs_f64(1.0), dir[1], 100_000.0);
            }
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Sender {
                to: s.leaves[1],
                bytes: 1_000_000,
            }));
            sim.add_node(Box::new(Receiver { done: done.clone() }));
            sim.run_until_idle(SimTime::from_secs_f64(300.0));
            let (_, at) = done.borrow().expect("transfer should complete");
            at
        }
        assert!(completion_time(true) > completion_time(false) * 2.0);
    }

    #[test]
    #[should_panic(expected = "every network node needs a behavior")]
    fn missing_behaviors_panic() {
        let s = two_leaf_star(0.0);
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.run_until_idle(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn bigger_messages_take_longer() {
        struct TwoSends {
            to: NodeId,
        }
        impl NodeBehavior for TwoSends {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(self.to, Bytes::from(vec![0u8; 10])).unwrap();
                ctx.send(self.to, Bytes::from(vec![1u8; 60_000])).unwrap();
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        #[derive(Default)]
        struct Stamps {
            at: Rc<RefCell<Vec<(u8, f64)>>>,
        }
        impl NodeBehavior for Stamps {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Message { payload, .. } = event {
                    self.at
                        .borrow_mut()
                        .push((payload[0], ctx.now().as_secs_f64()));
                }
            }
        }
        let s = two_leaf_star(0.0);
        let at = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(TwoSends { to: s.leaves[1] }));
        sim.add_node(Box::new(Stamps { at: at.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(10.0));
        let at = at.borrow();
        assert_eq!(at.len(), 2);
        // 60 kB over a 125 kB/s bottleneck adds ~0.5 s of serialisation
        // beyond the small message's latency-dominated delay.
        assert!(at[1].1 - at[0].1 > 0.3, "{at:?}");
    }

    #[test]
    fn path_utilization_rises_under_load() {
        struct Probe {
            to: NodeId,
            seen: Rc<RefCell<Vec<f64>>>,
        }
        impl NodeBehavior for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.seen.borrow_mut().push(ctx.path_utilization(self.to));
                ctx.start_transfer(self.to, 400_000, 0).unwrap();
                ctx.set_timer(SimDuration::from_secs(2), 1);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { .. } = event {
                    self.seen.borrow_mut().push(ctx.path_utilization(self.to));
                }
            }
        }
        let s = two_leaf_star(0.0);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Probe {
            to: s.leaves[1],
            seen: seen.clone(),
        }));
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.run_until_idle(SimTime::from_secs_f64(30.0));
        let seen = seen.borrow();
        assert_eq!(seen[0], 0.0, "idle link reads zero");
        assert!(seen[1] > 0.5, "busy link utilization {seen:?}");
    }

    #[test]
    fn stats_account_for_traffic() {
        let s = two_leaf_star(0.05);
        let done = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 4);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Sender {
            to: s.leaves[1],
            bytes: 300_000,
        }));
        sim.add_node(Box::new(Receiver { done: done.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(120.0));
        assert!(done.borrow().is_some());
        let stats = sim.stats();
        assert_eq!(stats.flows_started, 1);
        assert_eq!(stats.flows_completed, 1);
        assert_eq!(stats.flows_failed, 0);
        assert_eq!(stats.payload_bytes_delivered, 300_000);
        // Loss means retransmission waste: wire ≥ payload, but bounded.
        assert!(stats.wire_bytes_sent >= 300_000, "{stats:?}");
        assert!(stats.wire_bytes_sent < 600_000, "{stats:?}");
    }

    #[test]
    fn link_bytes_match_wire_totals_per_hop() {
        let s = two_leaf_star(0.0);
        let done = Rc::new(RefCell::new(None));
        let mut net = s.network;
        let path = net.path(s.leaves[0], s.leaves[1]).unwrap();
        let mut sim = Simulator::new(net, 4);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Sender {
            to: s.leaves[1],
            bytes: 200_000,
        }));
        sim.add_node(Box::new(Receiver { done: done.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let wire = sim.stats().wire_bytes_sent;
        for dir in path {
            assert_eq!(sim.link_bytes_sent(dir), wire);
        }
    }

    #[test]
    fn zero_byte_transfer_is_rejected() {
        struct Z {
            to: NodeId,
        }
        impl NodeBehavior for Z {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                assert!(matches!(
                    ctx.start_transfer(self.to, 0, 0),
                    Err(NetError::EmptyTransfer)
                ));
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        let s = two_leaf_star(0.0);
        let mut sim = Simulator::new(s.network, 1);
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Z { to: s.leaves[1] }));
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.run_until_idle(SimTime::from_secs_f64(1.0));
    }

    fn fluid_tcp() -> TcpConfig {
        TcpConfig {
            flow_model: FlowModel::Fluid,
            ..TcpConfig::default()
        }
    }

    #[test]
    fn fluid_bulk_transfer_delivers_all_bytes() {
        let s = two_leaf_star(0.0);
        let done = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 1);
        sim.set_tcp_config(fluid_tcp());
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Sender {
            to: s.leaves[1],
            bytes: 500_000,
        }));
        sim.add_node(Box::new(Receiver { done: done.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let (bytes, at) = done.borrow().expect("transfer should complete");
        assert_eq!(bytes, 500_000);
        // 500 kB at a 125 kB/s bottleneck is 4 s of serialisation plus the
        // handshake — the fluid model should land in the same ballpark as
        // the round model.
        assert!(at >= 4.0, "completed suspiciously fast at {at}");
        assert!(at < 10.0, "completed suspiciously slow at {at}");
        assert_eq!(sim.active_flow_count(), 0);
        let stats = sim.stats();
        assert_eq!(stats.flows_completed, 1);
        assert_eq!(stats.payload_bytes_delivered, 500_000);
        assert!(stats.wire_bytes_sent >= 500_000, "{stats:?}");
    }

    #[test]
    fn fluid_matches_round_model_on_lossy_link() {
        // Same transfer under both models: completion times must agree
        // within a modest tolerance (the fluid model folds the round
        // model's window dynamics into a steady Mathis rate).
        let run = |model: FlowModel| -> f64 {
            let s = two_leaf_star(0.02);
            let done = Rc::new(RefCell::new(None));
            let mut sim = Simulator::new(s.network, 9);
            sim.set_tcp_config(TcpConfig {
                flow_model: model,
                ..TcpConfig::default()
            });
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Sender {
                to: s.leaves[1],
                bytes: 2_000_000,
            }));
            sim.add_node(Box::new(Receiver { done: done.clone() }));
            sim.run_until_idle(SimTime::from_secs_f64(600.0));
            let (bytes, at) = done.borrow().expect("transfer should complete");
            assert_eq!(bytes, 2_000_000);
            at
        };
        let rounds = run(FlowModel::Rounds);
        let fluid = run(FlowModel::Fluid);
        let ratio = fluid / rounds;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "fluid {fluid:.1}s vs rounds {rounds:.1}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn fluid_two_flows_share_the_uplink() {
        // Two simultaneous downloads from the same sender: each should see
        // roughly half the uplink, so they finish close together and take
        // about twice the solo time.
        struct DoubleSender {
            to: [NodeId; 2],
        }
        impl NodeBehavior for DoubleSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.start_transfer(self.to[0], 250_000, 7).unwrap();
                ctx.start_transfer(self.to[1], 250_000, 7).unwrap();
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        let spec = LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(25), 0.0);
        let s = star(&[spec; 3]);
        let d1 = Rc::new(RefCell::new(None));
        let d2 = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 1);
        sim.set_tcp_config(fluid_tcp());
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(DoubleSender {
            to: [s.leaves[1], s.leaves[2]],
        }));
        sim.add_node(Box::new(Receiver { done: d1.clone() }));
        sim.add_node(Box::new(Receiver { done: d2.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let (_, t1) = d1.borrow().expect("first transfer completes");
        let (_, t2) = d2.borrow().expect("second transfer completes");
        // 500 kB total through a 125 kB/s uplink: at least 4 s.
        assert!(t1 >= 3.9 && t2 >= 3.9, "{t1} {t2}");
        assert!(
            (t1 - t2).abs() < 0.5,
            "fair shares finish together: {t1} {t2}"
        );
    }

    #[test]
    fn fluid_cancel_invalidates_scheduled_completion() {
        // Cancel a fluid transfer before its FlowDone fires: the stale
        // event must be ignored and the receiver must see a failure, not a
        // completion.
        struct CancellingSender {
            to: NodeId,
        }
        impl NodeBehavior for CancellingSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let flow = ctx.start_transfer(self.to, 1_000_000, 0).unwrap();
                ctx.set_timer(SimDuration::from_secs(2), flow.raw());
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { token } = event {
                    ctx.cancel_transfer(FlowId(token));
                }
            }
        }
        #[derive(Default)]
        struct FailWatcher {
            failed: Rc<RefCell<bool>>,
            completed: Rc<RefCell<bool>>,
        }
        impl NodeBehavior for FailWatcher {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
                match event {
                    NodeEvent::TransferFailed { .. } => *self.failed.borrow_mut() = true,
                    NodeEvent::TransferComplete { .. } => *self.completed.borrow_mut() = true,
                    _ => {}
                }
            }
        }
        let s = two_leaf_star(0.0);
        let failed = Rc::new(RefCell::new(false));
        let completed = Rc::new(RefCell::new(false));
        let mut sim = Simulator::new(s.network, 1);
        sim.set_tcp_config(fluid_tcp());
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(CancellingSender { to: s.leaves[1] }));
        sim.add_node(Box::new(FailWatcher {
            failed: failed.clone(),
            completed: completed.clone(),
        }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        assert!(*failed.borrow(), "receiver should see the failure");
        assert!(!*completed.borrow(), "stale FlowDone must not complete");
        assert_eq!(sim.active_flow_count(), 0);
        // Partial progress still hit the wire.
        let stats = sim.stats();
        assert_eq!(stats.flows_failed, 1);
        assert!(stats.wire_bytes_sent > 0, "{stats:?}");
        assert!(stats.wire_bytes_sent < 1_000_000, "{stats:?}");
    }

    #[test]
    fn fluid_churn_rebalances_survivors() {
        // Three flows share the hub; one endpoint goes offline mid-run and
        // the survivors' rates must rise (they finish earlier than 3-way
        // sharing would allow).
        struct TriSender {
            to: [NodeId; 3],
        }
        impl NodeBehavior for TriSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for to in &self.to {
                    ctx.start_transfer(*to, 400_000, 7).unwrap();
                }
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
        }
        struct EarlyQuitter;
        impl NodeBehavior for EarlyQuitter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { .. } = event {
                    ctx.go_offline();
                }
            }
        }
        let spec = LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(25), 0.0);
        let s = star(&[spec; 4]);
        let d1 = Rc::new(RefCell::new(None));
        let d2 = Rc::new(RefCell::new(None));
        let mut sim = Simulator::new(s.network, 1);
        sim.set_tcp_config(fluid_tcp());
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(TriSender {
            to: [s.leaves[1], s.leaves[2], s.leaves[3]],
        }));
        sim.add_node(Box::new(Receiver { done: d1.clone() }));
        sim.add_node(Box::new(Receiver { done: d2.clone() }));
        sim.add_node(Box::new(EarlyQuitter));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let (_, t1) = d1.borrow().expect("first survivor completes");
        let (_, t2) = d2.borrow().expect("second survivor completes");
        // Full 3-way sharing would put each survivor past 9.6 s; dropping
        // the third flow at t=1 s must pull them clearly below that.
        assert!(t1 < 9.0 && t2 < 9.0, "{t1} {t2}");
        assert_eq!(sim.stats().flows_failed, 1);
        assert_eq!(sim.stats().flows_completed, 2);
    }

    #[test]
    fn fluid_runs_are_deterministic() {
        let run = || {
            let s = two_leaf_star(0.01);
            let done = Rc::new(RefCell::new(None));
            let mut sim = Simulator::new(s.network, 3);
            sim.set_tcp_config(fluid_tcp());
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Sender {
                to: s.leaves[1],
                bytes: 750_000,
            }));
            sim.add_node(Box::new(Receiver { done: done.clone() }));
            sim.run_until_idle(SimTime::from_secs_f64(120.0));
            let at = done.borrow().expect("completes").1;
            (at, sim.stats().wire_bytes_sent)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fluid_progress_tracks_between_rebalances() {
        struct ProgressProbe {
            to: NodeId,
            seen: Rc<RefCell<Vec<u64>>>,
        }
        impl NodeBehavior for ProgressProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let flow = ctx.start_transfer(self.to, 500_000, 0).unwrap();
                for i in 1..=3u64 {
                    ctx.set_timer(SimDuration::from_secs(i), flow.raw());
                }
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
                if let NodeEvent::Timer { token } = event {
                    if let Some((done, _)) = ctx.transfer_progress(FlowId(token)) {
                        self.seen.borrow_mut().push(done);
                    }
                }
            }
        }
        let s = two_leaf_star(0.0);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 1);
        sim.set_tcp_config(fluid_tcp());
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(ProgressProbe {
            to: s.leaves[1],
            seen: seen.clone(),
        }));
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 3, "{seen:?}");
        // Progress advances between probes even with no rebalance events.
        assert!(
            seen[0] > 0 && seen[0] < seen[1] && seen[1] < seen[2],
            "{seen:?}"
        );
    }

    /// Sends one tagged message per timer tick (1 Hz), recording send errors.
    struct Ticker {
        to: NodeId,
        faulty: bool,
        ticks: u64,
        errors: Rc<RefCell<Vec<f64>>>,
    }
    impl NodeBehavior for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(500), 0);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Timer { .. } = event {
                let result = if self.faulty {
                    ctx.send_faulty(self.to, Bytes::from_static(b"tick"))
                } else {
                    ctx.send(self.to, Bytes::from_static(b"tick"))
                };
                if result.is_err() {
                    self.errors.borrow_mut().push(ctx.now().as_secs_f64());
                }
                self.ticks -= 1;
                if self.ticks > 0 {
                    ctx.set_timer(SimDuration::from_secs(1), 0);
                }
            }
        }
    }

    /// Records arrival times of every message.
    #[derive(Default)]
    struct Arrivals {
        at: Rc<RefCell<Vec<f64>>>,
    }
    impl NodeBehavior for Arrivals {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent) {
            if let NodeEvent::Message { .. } = event {
                self.at.borrow_mut().push(ctx.now().as_secs_f64());
            }
        }
    }

    #[test]
    fn scheduled_offline_window_blocks_and_restores_delivery() {
        let s = two_leaf_star(0.0);
        let errors = Rc::new(RefCell::new(Vec::new()));
        let at = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 5);
        // Sends at 0.5, 1.5, 2.5, 3.5; the receiver is down for [1, 3).
        sim.schedule_offline_window(
            s.leaves[1],
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(3.0),
        );
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Ticker {
            to: s.leaves[1],
            faulty: false,
            ticks: 4,
            errors: errors.clone(),
        }));
        sim.add_node(Box::new(Arrivals { at: at.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(10.0));
        let errors = errors.borrow();
        let at = at.borrow();
        assert_eq!(errors.len(), 2, "sends during the outage error: {errors:?}");
        assert!(
            errors.iter().all(|&t| (1.0..3.0).contains(&t)),
            "{errors:?}"
        );
        assert_eq!(at.len(), 2, "sends outside the outage deliver: {at:?}");
        assert!(at[0] < 1.0 && at[1] > 3.0, "{at:?}");
        let faults = sim.fault_stats();
        assert_eq!(faults.outages_started, 1);
        assert_eq!(faults.outages_ended, 1);
    }

    #[test]
    fn send_faulty_without_plane_matches_send() {
        let run = |faulty: bool| -> (Vec<f64>, SimStats) {
            let s = two_leaf_star(0.05);
            let at = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulator::new(s.network, 21);
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Ticker {
                to: s.leaves[1],
                faulty,
                ticks: 10,
                errors: Rc::default(),
            }));
            sim.add_node(Box::new(Arrivals { at: at.clone() }));
            sim.run_until_idle(SimTime::from_secs_f64(60.0));
            let at = at.borrow().clone();
            (at, sim.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn send_faulty_with_certain_loss_drops_silently() {
        let s = two_leaf_star(0.0);
        let at = Rc::new(RefCell::new(Vec::new()));
        let errors = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(s.network, 21);
        sim.set_message_faults(MessageFaults {
            seed: 77,
            loss: 1.0,
            delay_prob: 0.0,
            delay_max: SimDuration::ZERO,
        });
        sim.add_node(Box::new(crate::node::NullBehavior));
        sim.add_node(Box::new(Ticker {
            to: s.leaves[1],
            faulty: true,
            ticks: 5,
            errors: errors.clone(),
        }));
        sim.add_node(Box::new(Arrivals { at: at.clone() }));
        sim.run_until_idle(SimTime::from_secs_f64(60.0));
        assert!(at.borrow().is_empty(), "all messages should be dropped");
        assert!(errors.borrow().is_empty(), "drops are silent to the sender");
        assert_eq!(sim.stats().messages_sent, 5);
        assert_eq!(sim.fault_stats().messages_dropped, 5);
    }

    #[test]
    fn injected_delay_defers_delivery_and_keeps_order() {
        let run = |delay_prob: f64| -> Vec<f64> {
            let s = two_leaf_star(0.0);
            let at = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulator::new(s.network, 13);
            sim.set_message_faults(MessageFaults {
                seed: 5,
                loss: 0.0,
                delay_prob,
                delay_max: SimDuration::from_secs(4),
            });
            sim.add_node(Box::new(crate::node::NullBehavior));
            sim.add_node(Box::new(Ticker {
                to: s.leaves[1],
                faulty: true,
                ticks: 8,
                errors: Rc::default(),
            }));
            sim.add_node(Box::new(Arrivals { at: at.clone() }));
            sim.run_until_idle(SimTime::from_secs_f64(120.0));
            let at = at.borrow().clone();
            at
        };
        let plain = run(0.0);
        let delayed = run(1.0);
        assert_eq!(plain.len(), 8);
        assert_eq!(delayed.len(), 8, "delayed messages still arrive");
        assert!(
            delayed.iter().sum::<f64>() > plain.iter().sum::<f64>(),
            "injected delay should defer deliveries"
        );
        // FIFO per connection survives the injected jitter.
        assert!(delayed.windows(2).all(|w| w[0] <= w[1]), "{delayed:?}");
    }
}
