//! The fluid flow model's rate solver.
//!
//! Instead of stepping every flow once per RTT ([`crate::tcp`]'s round
//! model), the fluid model treats each active flow as a constant-rate pipe
//! and recomputes rates only when the flow set changes (start, completion,
//! cancellation, churn, capacity change). Rates come from **progressive
//! filling**: the classic max–min fair water-filling over the directed
//! links of the network, extended with a per-flow rate ceiling that folds
//! loss and window limits in (Mathis-style), so the allocation stays close
//! to what the round model converges to.
//!
//! The solver is a plain function over flat arrays — no allocation on the
//! steady path (scratch buffers are reused between rebalances) and fully
//! deterministic: flows are processed in slot order and all floating-point
//! reductions are sequential.

/// Relative slack below which a link is considered saturated and a flow is
/// considered to have reached its ceiling.
const REL_EPS: f64 = 1e-9;

/// One flow as the solver sees it: the directed links it crosses (indices
/// into the capacity array) and its intrinsic rate ceiling in bits/sec.
#[derive(Debug, Clone)]
pub(crate) struct FillFlow {
    /// Offsets into [`FillProblem::path_links`].
    pub path_start: u32,
    pub path_len: u32,
    /// Per-flow ceiling (Mathis / window limit), bits per second.
    pub cap_bps: f64,
}

/// Scratch-buffer bundle for [`progressive_fill`]; reuse one instance
/// across rebalances to keep the steady path allocation-free.
#[derive(Debug, Default)]
pub(crate) struct FillProblem {
    /// Flows, in deterministic (slot) order.
    pub flows: Vec<FillFlow>,
    /// Concatenated directed-link indices of every flow's path.
    pub path_links: Vec<u32>,
    /// Capacity of each directed link, bits per second.
    pub link_capacity: Vec<f64>,
    /// Output: the max–min fair rate of each flow, bits per second.
    pub rates: Vec<f64>,
    /// Output: aggregate assigned rate per directed link, bits per second.
    pub link_rate: Vec<f64>,
    // Internal scratch.
    remaining: Vec<f64>,
    count: Vec<u32>,
    frozen: Vec<bool>,
    /// Directed links actually crossed by some flow (count > 0 at start);
    /// iteration sticks to these instead of every link in the network.
    active_links: Vec<u32>,
}

impl FillProblem {
    /// Clears the flow set, keeping buffers. Call before re-describing the
    /// problem for a new rebalance.
    pub fn reset(&mut self, dir_link_count: usize) {
        self.flows.clear();
        self.path_links.clear();
        self.link_capacity.clear();
        self.link_capacity.resize(dir_link_count, 0.0);
    }

    /// Registers one flow; `path` holds directed-link indices.
    pub fn push_flow(&mut self, path: impl IntoIterator<Item = u32>, cap_bps: f64) {
        let start = self.path_links.len() as u32;
        self.path_links.extend(path);
        self.flows.push(FillFlow {
            path_start: start,
            path_len: self.path_links.len() as u32 - start,
            cap_bps,
        });
    }

    /// Runs progressive filling, writing [`FillProblem::rates`] and
    /// [`FillProblem::link_rate`].
    ///
    /// Water level rises uniformly across all unfrozen flows; a flow
    /// freezes when it hits its own ceiling or when any link on its path
    /// saturates. Each iteration freezes at least one flow, so the loop
    /// runs at most `flows` times at `O(flows + links)` per pass.
    pub fn progressive_fill(&mut self) {
        let n = self.flows.len();
        let links = self.link_capacity.len();
        self.rates.clear();
        self.rates.resize(n, 0.0);
        self.link_rate.clear();
        self.link_rate.resize(links, 0.0);
        self.frozen.clear();
        self.frozen.resize(n, false);
        self.remaining.clear();
        self.remaining.extend_from_slice(&self.link_capacity);
        self.count.clear();
        self.count.resize(links, 0);
        self.active_links.clear();
        for i in 0..n {
            for l in 0..self.flows[i].path_len {
                let link = self.path_links[(self.flows[i].path_start + l) as usize];
                if self.count[link as usize] == 0 {
                    self.active_links.push(link);
                }
                self.count[link as usize] += 1;
            }
        }

        let mut unfrozen = n;
        let mut level = 0.0_f64;
        while unfrozen > 0 {
            // The next event: a link's fair share exhausts, or a flow's
            // ceiling is reached, whichever is nearer.
            let mut delta = f64::INFINITY;
            for &l in &self.active_links {
                if self.count[l as usize] > 0 {
                    delta = delta
                        .min(self.remaining[l as usize].max(0.0) / self.count[l as usize] as f64);
                }
            }
            for i in 0..n {
                if !self.frozen[i] {
                    delta = delta.min((self.flows[i].cap_bps - level).max(0.0));
                }
            }
            if !delta.is_finite() {
                // No unfrozen flow crosses any counted link (cannot happen
                // for well-formed paths); bail rather than spin.
                delta = 0.0;
            }
            level += delta;
            for &l in &self.active_links {
                if self.count[l as usize] > 0 {
                    self.remaining[l as usize] -= delta * self.count[l as usize] as f64;
                }
            }
            // Freeze flows at their ceiling or behind a saturated link.
            let mut froze_any = false;
            for i in 0..n {
                if self.frozen[i] {
                    continue;
                }
                let capped = level >= self.flows[i].cap_bps * (1.0 - REL_EPS);
                let blocked = {
                    let f = &self.flows[i];
                    let path = &self.path_links
                        [f.path_start as usize..(f.path_start + f.path_len) as usize];
                    path.iter().any(|&l| {
                        self.remaining[l as usize]
                            <= self.link_capacity[l as usize].max(1.0) * REL_EPS
                    })
                };
                if capped || blocked {
                    self.frozen[i] = true;
                    self.rates[i] = level;
                    unfrozen -= 1;
                    froze_any = true;
                    for off in 0..self.flows[i].path_len {
                        let link = self.path_links[(self.flows[i].path_start + off) as usize];
                        self.count[link as usize] -= 1;
                    }
                }
            }
            if !froze_any {
                // Numerical stall (all deltas rounded to zero without a
                // freeze): freeze everything at the current level.
                for i in 0..n {
                    if !self.frozen[i] {
                        self.frozen[i] = true;
                        self.rates[i] = level;
                        unfrozen -= 1;
                    }
                }
            }
        }

        for i in 0..n {
            let f = &self.flows[i];
            for off in 0..f.path_len {
                let l = self.path_links[(f.path_start + off) as usize];
                self.link_rate[l as usize] += self.rates[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(problem: &mut FillProblem) -> Vec<f64> {
        problem.progressive_fill();
        problem.rates.clone()
    }

    #[test]
    fn single_flow_takes_the_bottleneck() {
        let mut p = FillProblem::default();
        p.reset(2);
        p.link_capacity[0] = 1_000_000.0;
        p.link_capacity[1] = 250_000.0;
        p.push_flow([0u32, 1], f64::INFINITY);
        assert_eq!(rates(&mut p), vec![250_000.0]);
        assert_eq!(p.link_rate[1], 250_000.0);
    }

    #[test]
    fn two_flows_split_a_shared_link_evenly() {
        let mut p = FillProblem::default();
        p.reset(1);
        p.link_capacity[0] = 1_000_000.0;
        p.push_flow([0u32], f64::INFINITY);
        p.push_flow([0u32], f64::INFINITY);
        let r = rates(&mut p);
        assert!((r[0] - 500_000.0).abs() < 1.0, "{r:?}");
        assert!((r[1] - 500_000.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn capped_flow_leaves_headroom_to_the_other() {
        let mut p = FillProblem::default();
        p.reset(1);
        p.link_capacity[0] = 1_000_000.0;
        p.push_flow([0u32], 200_000.0); // loss-limited flow
        p.push_flow([0u32], f64::INFINITY);
        let r = rates(&mut p);
        assert!((r[0] - 200_000.0).abs() < 1.0, "{r:?}");
        assert!((r[1] - 800_000.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn max_min_is_bottleneck_local() {
        // Flow A crosses a thin link; flow B shares only the fat link with
        // A and should soak up what A cannot use.
        let mut p = FillProblem::default();
        p.reset(2);
        p.link_capacity[0] = 100_000.0; // thin
        p.link_capacity[1] = 1_000_000.0; // fat, shared
        p.push_flow([0u32, 1], f64::INFINITY);
        p.push_flow([1u32], f64::INFINITY);
        let r = rates(&mut p);
        assert!((r[0] - 100_000.0).abs() < 1.0, "{r:?}");
        assert!((r[1] - 900_000.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn empty_problem_is_fine() {
        let mut p = FillProblem::default();
        p.reset(3);
        p.progressive_fill();
        assert!(p.rates.is_empty());
        assert_eq!(p.link_rate, vec![0.0; 3]);
    }

    #[test]
    fn fill_is_deterministic() {
        let build = || {
            let mut p = FillProblem::default();
            p.reset(4);
            for l in 0..4 {
                p.link_capacity[l] = 1_000_000.0 / (l + 1) as f64;
            }
            for i in 0..16u32 {
                p.push_flow([i % 4, (i + 1) % 4], 300_000.0 + 10_000.0 * i as f64);
            }
            p.progressive_fill();
            p.rates
        };
        assert_eq!(build(), build());
    }
}
