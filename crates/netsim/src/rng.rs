//! Deterministic random sampling helpers.
//!
//! The simulator owns a single seeded [`rand::rngs::StdRng`]; everything
//! random in a run is derived from it, which is what makes runs
//! reproducible. The helpers here implement the distributions the simulator
//! needs without pulling in extra dependencies.

use rand::Rng;

/// Draws from a binomial distribution `Bin(n, p)`.
///
/// For small `n` the exact distribution is sampled by inversion — one
/// uniform draw walked down the CDF via the pmf recurrence — which costs
/// `O(np)` arithmetic instead of the `n` uniform draws of per-trial
/// sampling. For large `n` a normal approximation is used (with clamping to
/// `[0, n]`), which is accurate to well under a packet for the window sizes
/// the TCP model produces.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let k = splicecast_netsim::rng::binomial(&mut rng, 100, 0.05);
/// assert!(k <= 100);
/// ```
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 128 {
        // Keep the walked tail short and the starting pmf well away from
        // underflow by sampling the complement when p > 1/2.
        if p > 0.5 {
            n - binomial_inversion(rng, n, 1.0 - p)
        } else {
            binomial_inversion(rng, n, p)
        }
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        let draw = (mean + sd * z).round();
        draw.clamp(0.0, n as f64) as u64
    }
}

/// Exact binomial sampling by CDF inversion, for `p <= 0.5` and small `n`.
fn binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let ratio = p / q;
    let mut pmf = q.powi(n as i32);
    let mut cdf = pmf;
    let u: f64 = rng.gen();
    let mut k = 0u64;
    while u > cdf && k < n {
        k += 1;
        pmf *= ratio * (n - k + 1) as f64 / k as f64;
        cdf += pmf;
    }
    k
}

/// Draws from an exponential distribution with the given rate (events per
/// unit). Returns `f64::INFINITY` when `rate <= 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let dt = splicecast_netsim::rng::exponential(&mut rng, 2.0);
/// assert!(dt >= 0.0);
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a log-normal variate with the given parameters of the underlying
/// normal distribution.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = splicecast_netsim::rng::log_normal(&mut rng, 0.0, 0.25);
/// assert!(x > 0.0);
/// ```
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Draws from a geometric distribution: the number of failures before the
/// first success when each trial succeeds with probability `1 - p`.
///
/// Used to model how many times a reliable control message must be
/// retransmitted when the path loses packets with probability `p`.
pub fn geometric_failures<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    let p = p.min(0.999_999);
    let mut failures = 0;
    while rng.gen::<f64>() < p {
        failures += 1;
        if failures >= 64 {
            break; // pathological loss rates: cap so the sim always advances
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        assert_eq!(binomial(&mut r, 10, -1.0), 0);
        assert_eq!(binomial(&mut r, 10, 2.0), 10);
    }

    #[test]
    fn binomial_small_n_mean_is_close() {
        let mut r = rng();
        let trials = 4_000;
        let total: u64 = (0..trials).map(|_| binomial(&mut r, 20, 0.25)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_mean_is_close() {
        let mut r = rng();
        let trials = 4_000;
        let total: u64 = (0..trials).map(|_| binomial(&mut r, 10_000, 0.05)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_stays_in_range() {
        let mut r = rng();
        for _ in 0..1_000 {
            let k = binomial(&mut r, 1_000, 0.999);
            assert!(k <= 1_000);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let trials = 20_000;
        let total: f64 = (0..trials).map(|_| exponential(&mut r, 4.0)).sum();
        let mean = total / trials as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut r = rng();
        assert!(exponential(&mut r, 0.0).is_infinite());
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn geometric_zero_loss_never_retransmits() {
        let mut r = rng();
        assert_eq!(geometric_failures(&mut r, 0.0), 0);
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = rng();
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| geometric_failures(&mut r, 0.2)).sum();
        let mean = total as f64 / trials as f64;
        // E[failures] = p / (1 - p) = 0.25
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_caps_at_64() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(geometric_failures(&mut r, 1.0) <= 64);
        }
    }
}
