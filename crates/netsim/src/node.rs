//! Application nodes: the behaviour trait and the events delivered to it.

use bytes::Bytes;

use crate::id::{FlowId, NodeId};
use crate::sim::Ctx;
use crate::time::SimTime;

/// Events delivered to a [`NodeBehavior`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum NodeEvent {
    /// A control-plane message arrived.
    Message {
        /// Sender of the message.
        from: NodeId,
        /// Opaque payload (the application defines the encoding).
        payload: Bytes,
    },
    /// A bulk transfer *to this node* finished; all bytes arrived.
    TransferComplete {
        /// The finished flow.
        flow: FlowId,
        /// The node that was sending.
        from: NodeId,
        /// Application tag supplied when the transfer was started.
        tag: u64,
        /// Total bytes delivered.
        bytes: u64,
        /// When the transfer was started (useful for goodput estimation).
        started: SimTime,
    },
    /// A bulk transfer *from this node* finished sending.
    UploadComplete {
        /// The finished flow.
        flow: FlowId,
        /// The node that was receiving.
        to: NodeId,
        /// Application tag supplied when the transfer was started.
        tag: u64,
    },
    /// A bulk transfer involving this node failed (peer went offline or the
    /// transfer was cancelled).
    TransferFailed {
        /// The failed flow.
        flow: FlowId,
        /// The other endpoint.
        peer: NodeId,
        /// Application tag supplied when the transfer was started.
        tag: u64,
        /// Bytes that had been delivered before the failure.
        delivered: u64,
    },
    /// A timer set via [`Ctx::set_timer`] fired.
    Timer {
        /// The token passed when the timer was set.
        token: u64,
    },
}

/// The behaviour of one simulated host.
///
/// Implementations are single-threaded state machines: the simulator calls
/// [`NodeBehavior::on_event`] with each event in simulated-time order, and
/// the behaviour reacts through the [`Ctx`] handle (sending messages,
/// starting transfers, setting timers).
///
/// # Examples
///
/// ```
/// use splicecast_netsim::{Ctx, NodeBehavior, NodeEvent};
///
/// /// Counts how many messages it receives.
/// struct Counter(u64);
///
/// impl NodeBehavior for Counter {
///     fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: NodeEvent) {
///         if let NodeEvent::Message { .. } = event {
///             self.0 += 1;
///         }
///     }
/// }
/// ```
pub trait NodeBehavior {
    /// Called once, before any event, when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called for every event addressed to this node while it is online.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: NodeEvent);

    /// Called once when the simulation run ends (deadline reached or queue
    /// drained), for final accounting.
    fn on_sim_end(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// A node that ignores every event. Useful for switch/hub nodes that only
/// exist to join links.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBehavior;

impl NodeBehavior for NullBehavior {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: NodeEvent) {}
}
