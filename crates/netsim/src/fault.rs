//! Deterministic fault injection: control-message loss/delay and scheduled
//! offline windows.
//!
//! The fault plane draws from its **own** seeded RNG stream, so installing it
//! (or changing its knobs) never perturbs the simulator's main RNG: a run
//! with every knob at zero takes exactly the code paths — and produces
//! exactly the output — of a run with no fault plane at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Injected control-message fault knobs, applied only to messages sent via
/// [`crate::Ctx::send_faulty`] (applications choose which traffic classes are
/// droppable; e.g. handshakes and goodbyes stay reliable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFaults {
    /// Seed of the fault plane's dedicated RNG stream.
    pub seed: u64,
    /// Probability that a droppable message silently vanishes. The sender
    /// still sees `Ok` — that is the point.
    pub loss: f64,
    /// Probability that a surviving droppable message is delayed by an extra
    /// uniform `[0, delay_max)` on top of its normal path delay.
    pub delay_prob: f64,
    /// Upper bound of the injected extra delay.
    pub delay_max: SimDuration,
}

impl MessageFaults {
    /// Whether any knob is nonzero. An inactive config installs no plane, so
    /// zero-fault scenarios stay bit-identical to fault-free ones.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || (self.delay_prob > 0.0 && !self.delay_max.is_zero())
    }
}

/// Counters of faults the simulator actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InjectedFaults {
    /// Droppable messages silently discarded.
    pub messages_dropped: u64,
    /// Droppable messages delivered with injected extra delay.
    pub messages_delayed: u64,
    /// Scheduled offline windows that began (node was up and went down).
    pub outages_started: u64,
    /// Scheduled offline windows that ended (node came back up).
    pub outages_ended: u64,
}

impl InjectedFaults {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &InjectedFaults) {
        self.messages_dropped += other.messages_dropped;
        self.messages_delayed += other.messages_delayed;
        self.outages_started += other.outages_started;
        self.outages_ended += other.outages_ended;
    }
}

/// The fate the fault plane assigns one droppable message.
pub(crate) enum MessageFate {
    Deliver,
    Drop,
    Delay(SimDuration),
}

/// Installed fault plane: the knobs plus the dedicated RNG stream.
pub(crate) struct FaultPlane {
    cfg: MessageFaults,
    rng: StdRng,
}

impl FaultPlane {
    pub(crate) fn new(cfg: MessageFaults) -> Self {
        FaultPlane {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Rolls the dice for one droppable message. Loss is checked first: a
    /// dropped message consumes only the loss draw, keeping the stream
    /// deterministic regardless of the delay knobs.
    pub(crate) fn roll(&mut self) -> MessageFate {
        if self.cfg.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.loss {
            return MessageFate::Drop;
        }
        if self.cfg.delay_prob > 0.0
            && !self.cfg.delay_max.is_zero()
            && self.rng.gen::<f64>() < self.cfg.delay_prob
        {
            let frac = self.rng.gen::<f64>();
            return MessageFate::Delay(self.cfg.delay_max.mul_f64(frac));
        }
        MessageFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_knobs_are_inactive() {
        let cfg = MessageFaults {
            seed: 7,
            loss: 0.0,
            delay_prob: 0.0,
            delay_max: SimDuration::from_secs(1),
        };
        assert!(!cfg.is_active());
        // Delay probability without a window is equally inert.
        let cfg = MessageFaults {
            delay_prob: 0.5,
            delay_max: SimDuration::ZERO,
            ..cfg
        };
        assert!(!cfg.is_active());
        let cfg = MessageFaults { loss: 0.01, ..cfg };
        assert!(cfg.is_active());
    }

    #[test]
    fn certain_loss_drops_everything() {
        let mut plane = FaultPlane::new(MessageFaults {
            seed: 3,
            loss: 1.0,
            delay_prob: 1.0,
            delay_max: SimDuration::from_secs(1),
        });
        for _ in 0..100 {
            assert!(matches!(plane.roll(), MessageFate::Drop));
        }
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let cfg = MessageFaults {
            seed: 99,
            loss: 0.3,
            delay_prob: 0.5,
            delay_max: SimDuration::from_secs(2),
        };
        let fate_key = |fate: MessageFate| match fate {
            MessageFate::Deliver => 0,
            MessageFate::Drop => u64::MAX,
            MessageFate::Delay(d) => d.as_micros(),
        };
        let a: Vec<u64> = {
            let mut p = FaultPlane::new(cfg);
            (0..1000).map(|_| fate_key(p.roll())).collect()
        };
        let b: Vec<u64> = {
            let mut p = FaultPlane::new(cfg);
            (0..1000).map(|_| fate_key(p.roll())).collect()
        };
        assert_eq!(a, b);
        assert!(a.contains(&u64::MAX), "no drops at loss 0.3");
        assert!(
            a.iter().any(|&k| k != 0 && k != u64::MAX),
            "no delays at delay_prob 0.5"
        );
    }
}
