//! The network graph: nodes, links, routing, and topology builders.

use std::collections::VecDeque;

use crate::fasthash::FastHashMap;

use crate::error::NetError;
use crate::id::{DirLinkId, LinkId, NodeId};
use crate::link::{Link, LinkSpec};
use crate::time::SimDuration;

/// The static network graph over which the simulator runs.
///
/// Routing is shortest-path (hop count) with deterministic tie-breaking,
/// computed lazily and cached. Link *capacities* may change during a run
/// (see [`crate::Simulator::schedule_capacity`]); the graph itself may not.
///
/// # Examples
///
/// ```
/// use splicecast_netsim::{LinkSpec, Network, SimDuration};
///
/// let mut net = Network::new();
/// let a = net.add_node();
/// let b = net.add_node();
/// net.connect_symmetric(a, b, LinkSpec::from_bytes_per_sec(125_000.0, SimDuration::from_millis(10), 0.0));
/// let path = net.path(a, b).unwrap();
/// assert_eq!(path.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Network {
    links: Vec<Link>,
    adj: Vec<Vec<(NodeId, LinkId)>>,
    route_cache: FastHashMap<(NodeId, NodeId), Vec<DirLinkId>>,
}

/// Aggregate path properties used by the TCP and message models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProperties {
    /// Sum of one-way link latencies along the path.
    pub latency: SimDuration,
    /// Probability that a packet is lost somewhere along the path.
    pub loss: f64,
    /// Capacity of the narrowest link, in bits per second.
    pub min_capacity_bps: f64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Connects `a` and `b` with independent per-direction specs.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist or `a == b`.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        forward: LinkSpec,
        backward: LinkSpec,
    ) -> LinkId {
        assert!(a.index() < self.adj.len(), "unknown node {a}");
        assert!(b.index() < self.adj.len(), "unknown node {b}");
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            forward,
            backward,
        });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        self.route_cache.clear();
        id
    }

    /// Connects `a` and `b` with the same spec in both directions.
    pub fn connect_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        self.connect(a, b, spec, spec)
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The spec of one direction of a link.
    pub fn dir_spec(&self, dir: DirLinkId) -> &LinkSpec {
        self.links[dir.link().index()].spec(dir.is_forward())
    }

    /// Replaces the capacity of one direction of a link. Takes effect for
    /// all traffic from the moment it is applied (flows adapt at their next
    /// round).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` is not positive/finite.
    pub fn set_capacity(&mut self, dir: DirLinkId, capacity_bps: f64) {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive, got {capacity_bps}"
        );
        self.links[dir.link().index()]
            .spec_mut(dir.is_forward())
            .capacity_bps = capacity_bps;
    }

    /// Sets the capacity of both directions of a link.
    pub fn set_capacity_both(&mut self, link: LinkId, capacity_bps: f64) {
        self.set_capacity(DirLinkId::new(link, true), capacity_bps);
        self.set_capacity(DirLinkId::new(link, false), capacity_bps);
    }

    /// Shortest path from `src` to `dst` as a sequence of directed links.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] when the nodes are disconnected and
    /// [`NetError::UnknownNode`] for out-of-range ids.
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Result<Vec<DirLinkId>, NetError> {
        if src.index() >= self.adj.len() || dst.index() >= self.adj.len() {
            return Err(NetError::UnknownNode);
        }
        if src == dst {
            return Ok(Vec::new());
        }
        if let Some(cached) = self.route_cache.get(&(src, dst)) {
            return Ok(cached.clone());
        }
        let path = self.bfs(src, dst).ok_or(NetError::NoRoute { src, dst })?;
        self.route_cache.insert((src, dst), path.clone());
        Ok(path)
    }

    /// Ensures the route from `src` to `dst` is cached, computing it if
    /// needed, without cloning it. Pair with [`Network::cached_route`] on
    /// hot paths that only need to *look at* the path.
    ///
    /// # Errors
    ///
    /// Same as [`Network::path`].
    pub fn prime_route(&mut self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        if src.index() >= self.adj.len() || dst.index() >= self.adj.len() {
            return Err(NetError::UnknownNode);
        }
        if src == dst || self.route_cache.contains_key(&(src, dst)) {
            return Ok(());
        }
        let path = self.bfs(src, dst).ok_or(NetError::NoRoute { src, dst })?;
        self.route_cache.insert((src, dst), path);
        Ok(())
    }

    /// The cached route from `src` to `dst`, empty unless a prior
    /// [`Network::path`] or [`Network::prime_route`] computed it (or
    /// `src == dst`, whose route is genuinely empty).
    pub fn cached_route(&self, src: NodeId, dst: NodeId) -> &[DirLinkId] {
        self.route_cache
            .get(&(src, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn bfs(&self, src: NodeId, dst: NodeId) -> Option<Vec<DirLinkId>> {
        let n = self.adj.len();
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            if cur == dst {
                break;
            }
            // Adjacency lists are in insertion order, so ties break
            // deterministically by link creation order.
            for &(next, link) in &self.adj[cur.index()] {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    prev[next.index()] = Some((cur, link));
                    queue.push_back(next);
                }
            }
        }
        if !seen[dst.index()] {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (from, link) = prev[cur.index()].expect("bfs backtrack");
            path.push(self.links[link.index()].direction_from(link, from));
            cur = from;
        }
        path.reverse();
        Some(path)
    }

    /// Aggregate latency/loss/capacity along a path.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn path_properties(&self, path: &[DirLinkId]) -> PathProperties {
        assert!(!path.is_empty(), "empty path has no properties");
        let mut latency = SimDuration::ZERO;
        let mut pass = 1.0f64;
        let mut min_cap = f64::INFINITY;
        for &dir in path {
            let spec = self.dir_spec(dir);
            latency += spec.latency;
            pass *= 1.0 - spec.loss;
            min_cap = min_cap.min(spec.capacity_bps);
        }
        PathProperties {
            latency,
            loss: 1.0 - pass,
            min_capacity_bps: min_cap,
        }
    }
}

/// A star topology: every leaf connects to a central hub.
///
/// This is the paper's GENI setup: "the nodes are connected in a star
/// topology using another virtual node".
#[derive(Debug)]
pub struct Star {
    /// The built network.
    pub network: Network,
    /// The central switch node (no application runs on it).
    pub hub: NodeId,
    /// The leaf nodes, in the order their specs were given.
    pub leaves: Vec<NodeId>,
    /// The access link of each leaf, in the same order.
    pub links: Vec<crate::id::LinkId>,
}

/// Builds a star with one access link per leaf, each with its own spec.
///
/// The path between any two leaves is two hops (leaf → hub → leaf), so the
/// leaf-to-leaf one-way latency is the sum of the two access-link latencies
/// and the end-to-end loss compounds across both links.
///
/// # Panics
///
/// Panics if `leaf_specs` is empty.
///
/// # Examples
///
/// ```
/// use splicecast_netsim::{star, LinkSpec, SimDuration};
///
/// let spec = LinkSpec::from_bytes_per_sec(128_000.0, SimDuration::from_millis(25), 0.0253);
/// let star = star(&vec![spec; 20]);
/// assert_eq!(star.leaves.len(), 20);
/// ```
pub fn star(leaf_specs: &[LinkSpec]) -> Star {
    assert!(!leaf_specs.is_empty(), "star needs at least one leaf");
    let mut network = Network::new();
    let hub = network.add_node();
    let mut links = Vec::with_capacity(leaf_specs.len());
    let leaves = leaf_specs
        .iter()
        .map(|spec| {
            let leaf = network.add_node();
            links.push(network.connect_symmetric(leaf, hub, *spec));
            leaf
        })
        .collect();
    Star {
        network,
        hub,
        leaves,
        links,
    }
}

/// Builds a full mesh of `n` nodes where every pair shares a direct link.
pub fn full_mesh(n: usize, spec: LinkSpec) -> (Network, Vec<NodeId>) {
    assert!(n >= 2, "full mesh needs at least two nodes");
    let mut network = Network::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| network.add_node()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            network.connect_symmetric(nodes[i], nodes[j], spec);
        }
    }
    (network, nodes)
}

/// Builds a dumbbell: `left` and `right` groups of hosts on access links,
/// joined by a single shared bottleneck link.
pub fn dumbbell(
    left: usize,
    right: usize,
    access: LinkSpec,
    bottleneck: LinkSpec,
) -> (Network, Vec<NodeId>, Vec<NodeId>) {
    assert!(
        left >= 1 && right >= 1,
        "dumbbell needs hosts on both sides"
    );
    let mut network = Network::new();
    let left_router = network.add_node();
    let right_router = network.add_node();
    network.connect_symmetric(left_router, right_router, bottleneck);
    let lefts = (0..left)
        .map(|_| {
            let n = network.add_node();
            network.connect_symmetric(n, left_router, access);
            n
        })
        .collect();
    let rights = (0..right)
        .map(|_| {
            let n = network.add_node();
            network.connect_symmetric(n, right_router, access);
            n
        })
        .collect();
    (network, lefts, rights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bytes_per_sec: f64, ms: u64, loss: f64) -> LinkSpec {
        LinkSpec::from_bytes_per_sec(bytes_per_sec, SimDuration::from_millis(ms), loss)
    }

    #[test]
    fn star_routes_through_hub() {
        let s = star(&[spec(1000.0, 25, 0.0); 3]);
        let mut net = s.network;
        let path = net.path(s.leaves[0], s.leaves[2]).unwrap();
        assert_eq!(path.len(), 2);
        let props = net.path_properties(&path);
        assert_eq!(props.latency, SimDuration::from_millis(50));
    }

    #[test]
    fn path_to_self_is_empty() {
        let s = star(&[spec(1000.0, 25, 0.0); 2]);
        let mut net = s.network;
        assert!(net.path(s.leaves[0], s.leaves[0]).unwrap().is_empty());
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        assert!(matches!(net.path(a, b), Err(NetError::NoRoute { .. })));
    }

    #[test]
    fn unknown_node_is_an_error() {
        let mut net = Network::new();
        let a = net.add_node();
        assert!(matches!(
            net.path(a, NodeId::from_index(9)),
            Err(NetError::UnknownNode)
        ));
    }

    #[test]
    fn loss_compounds_along_path() {
        let s = star(&[spec(1000.0, 0, 0.1); 2]);
        let mut net = s.network;
        let path = net.path(s.leaves[0], s.leaves[1]).unwrap();
        let props = net.path_properties(&path);
        assert!((props.loss - (1.0 - 0.9 * 0.9)).abs() < 1e-12);
    }

    #[test]
    fn min_capacity_is_bottleneck() {
        let (mut net, lefts, rights) = dumbbell(1, 1, spec(1000.0, 1, 0.0), spec(100.0, 1, 0.0));
        let path = net.path(lefts[0], rights[0]).unwrap();
        assert_eq!(path.len(), 3);
        let props = net.path_properties(&path);
        assert_eq!(props.min_capacity_bps, 800.0);
    }

    #[test]
    fn full_mesh_is_single_hop() {
        let (mut net, nodes) = full_mesh(4, spec(1000.0, 5, 0.0));
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(net.path(nodes[i], nodes[j]).unwrap().len(), 1);
                }
            }
        }
    }

    #[test]
    fn capacity_can_be_modulated() {
        let s = star(&[spec(1000.0, 25, 0.0); 2]);
        let mut net = s.network;
        let path = net.path(s.leaves[0], s.leaves[1]).unwrap();
        net.set_capacity(path[0], 400.0);
        assert_eq!(net.dir_spec(path[0]).capacity_bps, 400.0);
        // The reverse direction is untouched.
        let rev = net.path(s.leaves[1], s.leaves[0]).unwrap();
        assert_eq!(net.dir_spec(rev[1]).capacity_bps, 8000.0);
    }

    #[test]
    fn routes_are_deterministic() {
        let (mut net, nodes) = full_mesh(6, spec(1000.0, 5, 0.0));
        let p1 = net.path(nodes[0], nodes[5]).unwrap();
        let p2 = net.path(nodes[0], nodes[5]).unwrap();
        assert_eq!(p1, p2);
    }
}
