//! # splicecast-netsim
//!
//! A deterministic discrete-event **network simulator** purpose-built to
//! stand in for the GENI testbed used in *"Video Splicing Techniques for P2P
//! Video Streaming"* (ICDCS 2015): a handful of hosts joined by rate-limited,
//! lossy, high-latency links, exchanging control messages and bulk TCP
//! transfers.
//!
//! The simulator is organised as:
//!
//! - a [`Network`] graph of nodes and [`LinkSpec`]-described links with
//!   shortest-path routing ([`star`], [`full_mesh`], [`dumbbell`] builders);
//! - application [`NodeBehavior`]s that react to [`NodeEvent`]s through a
//!   [`Ctx`] handle (messages, transfers, timers, churn);
//! - a TCP flow model ([`TcpConfig`]) advanced in RTT rounds with slow
//!   start, AIMD, Bernoulli loss, and max–min fair capacity sharing;
//! - the [`Simulator`] event loop, seeded for bit-exact reproducibility.
//!
//! ## Example
//!
//! ```
//! use splicecast_netsim::{star, LinkSpec, NullBehavior, SimDuration, SimTime, Simulator};
//!
//! // Two peers behind 128 kB/s access links with 25 ms latency, via a hub.
//! let spec = LinkSpec::from_bytes_per_sec(128_000.0, SimDuration::from_millis(25), 0.0);
//! let star = star(&[spec, spec]);
//! let mut sim = Simulator::new(star.network, 42);
//! sim.add_node(Box::new(NullBehavior)); // hub
//! sim.add_node(Box::new(NullBehavior));
//! sim.add_node(Box::new(NullBehavior));
//! let end = sim.run_until_idle(SimTime::from_secs_f64(1.0));
//! assert_eq!(end, SimTime::ZERO); // nothing scheduled anything
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod event;
mod fasthash;
mod fault;
mod fluid;
mod id;
mod link;
mod node;
mod sim;
mod tcp;
mod time;
mod topology;

pub mod rng;
pub mod trace;

pub use error::NetError;
pub use fault::{InjectedFaults, MessageFaults};
pub use id::{DirLinkId, FlowId, LinkId, NodeId};
pub use link::{Link, LinkSpec};
pub use node::{NodeBehavior, NodeEvent, NullBehavior};
pub use sim::{Ctx, SimStats, Simulator};
pub use tcp::{FlowModel, TcpConfig};
pub use time::{SimDuration, SimTime};
pub use topology::{dumbbell, full_mesh, star, Network, PathProperties, Star};
pub use trace::{Trace, TraceRecord, TraceSummary};
