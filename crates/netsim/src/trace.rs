//! Optional event tracing for debugging and determinism tests.

use crate::id::{FlowId, NodeId};
use crate::time::SimTime;

/// One record in the simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceRecord {
    /// A control message was sent.
    MessageSent {
        /// Time of the send call.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload length in bytes.
        len: usize,
        /// Scheduled delivery time.
        deliver_at: SimTime,
    },
    /// A bulk transfer was started.
    FlowStarted {
        /// Time of the start call.
        at: SimTime,
        /// The new flow.
        flow: FlowId,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A bulk transfer delivered all its bytes.
    FlowCompleted {
        /// Completion time (receiver side).
        at: SimTime,
        /// The flow.
        flow: FlowId,
    },
    /// A bulk transfer was aborted.
    FlowFailed {
        /// Failure time.
        at: SimTime,
        /// The flow.
        flow: FlowId,
        /// Bytes delivered before the failure.
        delivered: u64,
    },
    /// A node went offline.
    NodeOffline {
        /// When it left.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
}

/// An append-only log of trace records.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The recorded events, in simulation order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Aggregate counts over a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `MessageSent` records.
    pub messages: usize,
    /// `FlowStarted` records.
    pub flows_started: usize,
    /// `FlowCompleted` records.
    pub flows_completed: usize,
    /// `FlowFailed` records.
    pub flows_failed: usize,
    /// `NodeOffline` records.
    pub nodes_offline: usize,
    /// Payload bytes across started flows.
    pub flow_bytes_started: u64,
}

impl Trace {
    /// Counts the records by kind.
    pub fn summary(&self) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for record in &self.records {
            match record {
                TraceRecord::MessageSent { .. } => summary.messages += 1,
                TraceRecord::FlowStarted { bytes, .. } => {
                    summary.flows_started += 1;
                    summary.flow_bytes_started += bytes;
                }
                TraceRecord::FlowCompleted { .. } => summary.flows_completed += 1,
                TraceRecord::FlowFailed { .. } => summary.flows_failed += 1,
                TraceRecord::NodeOffline { .. } => summary.nodes_offline += 1,
            }
        }
        summary
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_by_kind() {
        let mut t = Trace::new();
        t.push(TraceRecord::MessageSent {
            at: SimTime::ZERO,
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            len: 10,
            deliver_at: SimTime::from_micros(5),
        });
        t.push(TraceRecord::FlowStarted {
            at: SimTime::ZERO,
            flow: FlowId(0),
            src: NodeId::from_index(0),
            dst: NodeId::from_index(1),
            bytes: 1_000,
        });
        t.push(TraceRecord::FlowStarted {
            at: SimTime::ZERO,
            flow: FlowId(1),
            src: NodeId::from_index(1),
            dst: NodeId::from_index(0),
            bytes: 500,
        });
        t.push(TraceRecord::FlowCompleted {
            at: SimTime::from_micros(9),
            flow: FlowId(0),
        });
        t.push(TraceRecord::FlowFailed {
            at: SimTime::from_micros(9),
            flow: FlowId(1),
            delivered: 20,
        });
        t.push(TraceRecord::NodeOffline {
            at: SimTime::from_micros(10),
            node: NodeId::from_index(1),
        });
        let s = t.summary();
        assert_eq!(s.messages, 1);
        assert_eq!(s.flows_started, 2);
        assert_eq!(s.flows_completed, 1);
        assert_eq!(s.flows_failed, 1);
        assert_eq!(s.nodes_offline, 1);
        assert_eq!(s.flow_bytes_started, 1_500);
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceRecord::NodeOffline {
            at: SimTime::from_micros(1),
            node: NodeId::from_index(0),
        });
        t.push(TraceRecord::FlowCompleted {
            at: SimTime::from_micros(2),
            flow: FlowId(0),
        });
        assert_eq!(t.len(), 2);
        assert!(matches!(t.records()[0], TraceRecord::NodeOffline { .. }));
    }
}
